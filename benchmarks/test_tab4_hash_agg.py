"""Tab. 4: key-value aggregation — Pangea hashmap vs STL map vs Redis.

Aggregate 50-300 million random <string,int> pairs (the incise.org
benchmark the paper follows) on the m3.xlarge box.

Paper shape: roughly comparable while everything fits in memory; the STL
unordered_map starts swapping at 200M keys (its allocator wastes more
memory than Pangea's slab pages) and becomes 40-50x slower; Redis pays a
client/server round trip per op, thrashes past memory, and fails at
300M; the Pangea hashmap only starts spilling at 300M and still
completes.
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.baselines.host import BaselineHost
from repro.baselines.redis_kv import RedisOutOfMemoryError, RedisServer
from repro.baselines.stl_map import StlUnorderedMap
from repro.services.hashsvc import VirtualHashBuffer
from repro.sim.devices import GB, MB

COUNTS = [50, 100, 150, 200, 250, 300]  # millions of keys
ACTUAL_KEYS = 40_000
WORKERS = 4
POOL = 14 * GB
#: Logical payload bytes per entry (short string key + int); the hash
#: service adds ENTRY_OVERHEAD = 32 on top, giving ~48 bytes/entry —
#: the slab-allocator footprint that lets Pangea reach 300M keys.
ENTRY_BYTES = 20
PANGEA_SECONDS_PER_OP = 2.64e-6  # calibrated: 50M keys in ~33 s


def run_pangea(millions: int) -> float:
    logical = millions * 1_000_000
    represent = logical / ACTUAL_KEYS
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.m3_xlarge(num_disks=2, pool_bytes=POOL)
    )
    node = cluster.nodes[0]
    data = cluster.create_set("agg", durability="write-back", page_size=64 * MB)
    buffer = VirtualHashBuffer(
        data, num_root_partitions=200, combiner=lambda a, b: a + b
    )
    start = node.now
    for i in range(ACTUAL_KEYS):
        buffer.insert(("key", i), 1, nbytes=int(ENTRY_BYTES * represent))
    node.cpu.parallel(logical * PANGEA_SECONDS_PER_OP, WORKERS)
    for _pair in buffer.items():
        pass
    return node.now - start


def run_stl(millions: int) -> float:
    logical = millions * 1_000_000
    host = BaselineHost(MachineProfile.m3_xlarge(num_disks=2))
    table = StlUnorderedMap(host, memory_bytes=POOL)
    start = host.now
    table.insert_ops(logical, new_keys=logical, workers=1)
    return host.now - start


def run_redis(millions: int) -> "float | None":
    logical = millions * 1_000_000
    host = BaselineHost(MachineProfile.m3_xlarge(num_disks=2))
    redis = RedisServer(host, memory_bytes=POOL)
    start = host.now
    try:
        redis.execute_ops(logical, new_keys=logical, workers=1)
    except RedisOutOfMemoryError:
        return None
    return host.now - start


def _run_all():
    return {
        millions: {
            "stl": run_stl(millions),
            "pangea": run_pangea(millions),
            "redis": run_redis(millions),
        }
        for millions in COUNTS
    }


def test_tab4_hash_aggregation(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'Mkeys':>6s} {'STL map':>10s} {'Pangea':>10s} {'Redis':>10s}"]
    for millions in COUNTS:
        row = table[millions]
        redis = "failed" if row["redis"] is None else f"{row['redis']:.0f}s"
        lines.append(
            f"{millions:6d} {row['stl']:9.0f}s {row['pangea']:9.0f}s {redis:>10s}"
        )
    lines.append("")
    lines.append("paper: STL swaps at 200M (7657s), Pangea spills only at 300M,")
    lines.append("Redis fails at 300M; Pangea up to 50x vs STL, 30x vs Redis")
    record_report("Tab. 4: key-value aggregation latency", lines)

    # In-memory region: same order of magnitude.
    assert table[100]["pangea"] < 3 * table[100]["stl"]
    # STL collapses at 200M keys; Pangea does not.
    assert table[200]["stl"] > 3 * table[150]["stl"]
    assert table[200]["stl"] > 5 * table[200]["pangea"]
    assert table[300]["stl"] > 20 * table[300]["pangea"]
    # Redis thrashes at >= 150M and fails at 300M.
    assert table[150]["redis"] > 3 * table[100]["redis"]
    assert table[300]["redis"] is None
    # Pangea completes everything, degrading only when spilling starts.
    assert all(table[m]["pangea"] is not None for m in COUNTS)
    assert table[300]["pangea"] > table[250]["pangea"]
