"""Ablations of Pangea's design choices (DESIGN.md Sec. 5).

Not figures from the paper — these quantify the knobs the paper fixes:

* the 10% read-batch eviction size (vs 1-page and 30% batches);
* the reuse-probability horizon ``t`` in ``preuse = 1 - exp(-lambda t)``;
* the random-reread penalty ``wr`` that protects hash data;
* TLSF vs a slab allocator as the pool allocator.
"""

import pytest
from conftest import record_report

import repro.core.policies as policies
from repro import MachineProfile, PangeaCluster
from repro.core.policies import DataAwarePolicy
from repro.services.hashsvc import VirtualHashBuffer
from repro.sim.devices import GB, KB, MB

POOL = 2 * GB
OBJECT_BYTES = 256 * KB


def scan_workload(cluster, pages_worth=3.0, scans=3):
    """A loop-sequential read-after-write working set > pool."""
    node = cluster.nodes[0]
    data = cluster.create_set(
        "scan", durability="write-back", page_size=16 * MB,
        object_bytes=OBJECT_BYTES,
    )
    count = int(pages_worth * cluster.profile.pool_bytes / OBJECT_BYTES)
    data.add_data(list(range(count)))
    for _ in range(scans):
        for _record in data.scan_records(workers=4):
            pass
    return node.now


def spilling_hash_workload(cluster):
    """A hash aggregation that overflows the pool and re-aggregates.

    The ``wr`` penalty prices the reconstruction cost of re-reading
    spilled random-access data; it is charged on every spilled-page
    reload during the final aggregation stage.
    """
    node = cluster.nodes[0]
    agg = cluster.create_set("agg", durability="write-back", page_size=16 * MB)
    buffer = VirtualHashBuffer(agg, num_root_partitions=4,
                               combiner=lambda a, b: a + b)
    count = int(1.5 * cluster.profile.pool_bytes / (64 * KB))
    for i in range(count):
        buffer.insert(("k", i), 1, nbytes=64 * KB)
    assert buffer.stats.spills > 0
    assert len(dict(buffer.items())) == count
    return node.now


def test_ablation_eviction_batch(benchmark):
    def run():
        results = {}
        for fraction in (0.02, 0.10, 0.30):
            original = policies.READ_BATCH_FRACTION
            policies.READ_BATCH_FRACTION = fraction
            try:
                cluster = PangeaCluster(
                    num_nodes=1, profile=MachineProfile.m3_xlarge(pool_bytes=POOL)
                )
                results[fraction] = scan_workload(cluster)
            finally:
                policies.READ_BATCH_FRACTION = original
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'batch':>7s} {'seconds':>9s}"]
    for fraction, seconds in sorted(results.items()):
        lines.append(f"{100 * fraction:6.0f}% {seconds:8.1f}s")
    record_report("Ablation: read-eviction batch size", lines)
    # All finish; the default is within 20% of the best choice.
    best = min(results.values())
    assert results[0.10] <= best * 1.2


def test_ablation_reuse_horizon(benchmark):
    def run():
        results = {}
        for horizon in (0.1, 1.0, 10.0):
            cluster = PangeaCluster(
                num_nodes=1, profile=MachineProfile.m3_xlarge(pool_bytes=POOL)
            )
            cluster.nodes[0].paging.policy = DataAwarePolicy(horizon=horizon)
            results[horizon] = scan_workload(cluster)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'horizon':>8s} {'seconds':>9s}"]
    for horizon, seconds in sorted(results.items()):
        lines.append(f"{horizon:8.1f} {seconds:8.1f}s")
    record_report("Ablation: reuse-probability horizon t", lines)
    best = min(results.values())
    assert results[1.0] <= best * 1.2  # the paper's t=1 default holds up


def test_ablation_random_reread_penalty(benchmark):
    def run():
        results = {}
        for penalty in (1.0, 3.0, 6.0):
            cluster = PangeaCluster(
                num_nodes=1, profile=MachineProfile.m3_xlarge(pool_bytes=POOL)
            )
            original = None
            results[penalty] = _mixed_with_penalty(cluster, penalty)
            del original
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'wr':>5s} {'seconds':>9s}"]
    for penalty, seconds in sorted(results.items()):
        lines.append(f"{penalty:5.1f} {seconds:8.1f}s")
    lines.append("")
    lines.append("wr prices hash-map reconstruction on spilled-page reloads")
    record_report("Ablation: random-reread penalty wr", lines)
    # A higher wr makes re-reading spilled hash data strictly costlier.
    assert results[1.0] <= results[3.0] <= results[6.0]
    assert results[6.0] > results[1.0]


def _mixed_with_penalty(cluster, penalty):
    seconds = None
    # Apply the penalty to every set created in this cluster.
    original_create = cluster.create_set

    def create_with_penalty(name, **kwargs):
        kwargs.setdefault("random_reread_penalty", penalty)
        return original_create(name, **kwargs)

    cluster.create_set = create_with_penalty
    try:
        seconds = spilling_hash_workload(cluster)
    finally:
        cluster.create_set = original_create
    return seconds


def test_ablation_pool_allocator(benchmark):
    from repro.buffer.pool import BufferPoolFullError

    def run():
        results = {}
        for allocator in ("tlsf", "slab"):
            cluster = PangeaCluster(
                num_nodes=1,
                profile=MachineProfile.m3_xlarge(pool_bytes=POOL),
                pool_allocator=allocator,
            )
            node = cluster.nodes[0]
            try:
                # Variable page sizes stress placement: three sets with
                # different page sizes write and re-read under pressure.
                for index, page_size in enumerate((4 * MB, 16 * MB, 64 * MB)):
                    data = cluster.create_set(
                        f"set{index}", durability="write-back",
                        page_size=page_size, object_bytes=64 * KB,
                    )
                    data.add_data(list(range(int(POOL / 2 / (64 * KB)))))
                    for _r in data.scan_records():
                        pass
                results[allocator] = (node.now, node.pool.stats.evictions)
            except BufferPoolFullError:
                # Slab calcification: freed chunks stay with their size
                # class, so memory for new page sizes can strand — the
                # space-efficiency reason the paper defaults to TLSF.
                results[allocator] = None
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'allocator':>10s} {'seconds':>9s} {'evictions':>10s}"]
    for allocator, outcome in sorted(results.items()):
        if outcome is None:
            lines.append(f"{allocator:>10s} {'FAILED (slab calcification)':>30s}")
        else:
            seconds, evictions = outcome
            lines.append(f"{allocator:>10s} {seconds:8.1f}s {evictions:10d}")
    lines.append("")
    lines.append("TLSF is the default: space-efficient for variable page sizes;")
    lines.append("a slab pool allocator strands freed memory in size classes")
    record_report("Ablation: TLSF vs slab pool allocator", lines)
    assert results["tlsf"] is not None
    # Slab either fails outright (calcification) or costs at least as much.
    if results["slab"] is not None:
        assert results["tlsf"][0] <= results["slab"][0] * 1.05
