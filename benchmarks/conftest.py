"""Benchmark harness plumbing.

Every benchmark reproduces one table or figure from the paper's evaluation
section.  The measured quantity is *simulated seconds* on the calibrated
hardware models (see DESIGN.md), not wall time — pytest-benchmark's wall
numbers only show how fast the simulation itself runs.

Each benchmark registers its regenerated table with :func:`record_report`;
a terminal-summary hook prints every table at the end of the run, and the
raw text is also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

_REPORTS: list[tuple[str, list[str]]] = []
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_report(title: str, lines: list[str]) -> None:
    """Register a regenerated table/figure for the end-of-run summary."""
    _REPORTS.append((title, lines))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = (
        title.lower()
        .replace(":", "")
        .replace(".", "")
        .replace(",", "")
        .replace("(", "")
        .replace(")", "")
        .replace("/", "-")
        .replace(" ", "_")[:60]
    )
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w") as fh:
        fh.write(title + "\n")
        fh.write("\n".join(lines) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced tables and figures (simulated seconds)")
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in lines:
            terminalreporter.write_line(line)
