"""Fig. 7: sequential access for transient data (m3.xlarge micro-bench).

Write 50-300 million 80-byte objects, scan them five times (summing the
bytes of each object), then delete everything.  Compared systems: Pangea
write-back locality sets on 1 and 2 disks, OS virtual memory
(malloc/free + kernel paging), and Alluxio.

Paper shape: in memory (<= 150M objects) Pangea tracks OS VM closely and
both beat Alluxio clearly; past memory Pangea wins 5.4-7x over OS VM
(MRU vs LRU-with-page-stealing, 64MB vs 4KB pages); Alluxio cannot write
more than its configured memory; deletion is near-free for Pangea
(bulk page drop) but costs per-object for the OS VM.
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.baselines.alluxio import AlluxioOutOfMemoryError, AlluxioWorker
from repro.baselines.host import BaselineHost
from repro.baselines.os_vm import OsVirtualMemory
from repro.sim.devices import GB, MB

OBJECT_BYTES = 80
COUNTS = [50, 100, 150, 200, 250, 300]  # millions of objects
ACTUAL_OBJECTS = 4096
SCANS = 5
WORKERS = 4
POOL = 14 * GB

#: Application-level per-object costs (calibrated to the paper's Fig. 7).
WRITE_SECONDS_PER_OBJECT = 1.2e-6
READ_SECONDS_PER_OBJECT = 0.25e-6
VM_MALLOC_SECONDS = 1.5e-6
VM_FREE_SECONDS = 0.8e-6
ALLUXIO_PER_OBJECT = 2.0e-6


def run_pangea(millions: int, num_disks: int) -> dict:
    logical = millions * 1_000_000
    total_bytes = logical * OBJECT_BYTES
    represent = logical / ACTUAL_OBJECTS
    cluster = PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.m3_xlarge(num_disks=num_disks, pool_bytes=POOL),
    )
    node = cluster.nodes[0]
    data = cluster.create_set(
        "objects", durability="write-back", page_size=64 * MB,
        object_bytes=int(OBJECT_BYTES * represent),
    )
    start = node.now
    data.add_data(list(range(ACTUAL_OBJECTS)))
    node.cpu.parallel(logical * WRITE_SECONDS_PER_OBJECT, WORKERS)
    write_seconds = node.now - start

    start = node.now
    for _ in range(SCANS):
        for _record in data.scan_records(workers=WORKERS):
            pass
        node.cpu.parallel(logical * READ_SECONDS_PER_OBJECT, WORKERS)
    read_seconds = node.now - start

    start = node.now
    data.end_lifetime()
    cluster.drop_set("objects")
    delete_seconds = node.now - start
    return {
        "write": write_seconds,
        "read": read_seconds,
        "delete": delete_seconds,
        "paged_out": node.pool.stats.bytes_paged_out,
        "bytes": total_bytes,
    }


def run_os_vm(millions: int) -> dict:
    logical = millions * 1_000_000
    host = BaselineHost(MachineProfile.m3_xlarge())
    vm = OsVirtualMemory(
        host, memory_bytes=POOL,
        malloc_seconds=VM_MALLOC_SECONDS, free_seconds=VM_FREE_SECONDS,
    )
    start = host.now
    vm.malloc_objects(logical, OBJECT_BYTES, workers=WORKERS)
    write_seconds = host.now - start
    start = host.now
    for _ in range(SCANS):
        vm.sequential_scan(workers=WORKERS)
        host.cpu.parallel(logical * READ_SECONDS_PER_OBJECT, WORKERS)
    read_seconds = host.now - start
    start = host.now
    vm.free_all(logical, OBJECT_BYTES, workers=WORKERS)
    delete_seconds = host.now - start
    return {
        "write": write_seconds,
        "read": read_seconds,
        "delete": delete_seconds,
        "paged_out": vm.stats.bytes_paged_out,
    }


def run_alluxio(millions: int) -> "dict | None":
    logical = millions * 1_000_000
    host = BaselineHost(MachineProfile.m3_xlarge())
    worker = AlluxioWorker(host, memory_bytes=POOL,
                           per_object_seconds=ALLUXIO_PER_OBJECT)
    start = host.now
    try:
        worker.write("objects", logical * OBJECT_BYTES,
                     num_objects=logical, workers=WORKERS)
    except AlluxioOutOfMemoryError:
        return None
    write_seconds = host.now - start
    start = host.now
    for _ in range(SCANS):
        worker.read("objects", logical * OBJECT_BYTES,
                    num_objects=logical, workers=WORKERS)
        host.cpu.parallel(logical * READ_SECONDS_PER_OBJECT, WORKERS)
    read_seconds = host.now - start
    start = host.now
    worker.delete("objects")
    delete_seconds = host.now - start
    return {"write": write_seconds, "read": read_seconds, "delete": delete_seconds}


def _run_all():
    table = {}
    for millions in COUNTS:
        table[millions] = {
            "pangea-2disk": run_pangea(millions, num_disks=2),
            "pangea-1disk": run_pangea(millions, num_disks=1),
            "os-vm": run_os_vm(millions),
            "alluxio": run_alluxio(millions),
        }
    return table


def test_fig7_sequential_transient(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        f"{'Mobj':>5s} "
        f"{'pangea2 w/r':>16s} {'pangea1 w/r':>16s} "
        f"{'os-vm w/r':>16s} {'os-vm free':>11s} {'alluxio w/r':>16s}"
    ]
    for millions in COUNTS:
        row = table[millions]
        p2, p1, vm, al = (
            row["pangea-2disk"], row["pangea-1disk"], row["os-vm"], row["alluxio"]
        )
        alluxio = "FAILED" if al is None else f"{al['write']:.0f}/{al['read']:.0f}s"
        lines.append(
            f"{millions:5d} "
            f"{p2['write']:7.0f}/{p2['read']:<7.0f}s "
            f"{p1['write']:7.0f}/{p1['read']:<7.0f}s "
            f"{vm['write']:7.0f}/{vm['read']:<7.0f}s {vm['delete']:10.0f}s "
            f"{alluxio:>16s}"
        )
    lines.append("")
    lines.append("paper: Pangea ~= OS VM in memory, 5.4-7x faster past memory;")
    lines.append("Alluxio slowest and capped at its configured memory size;")
    lines.append("Pangea page-out volume ~2.5x smaller than the OS VM's.")
    record_report("Fig. 7: sequential access for transient data", lines)

    # --- shape assertions ------------------------------------------------
    in_memory = table[100]
    assert in_memory["alluxio"] is not None
    assert in_memory["alluxio"]["write"] > 1.5 * in_memory["pangea-2disk"]["write"]
    ratio_in_memory = (
        in_memory["pangea-2disk"]["write"] / in_memory["os-vm"]["write"]
    )
    assert 0.5 <= ratio_in_memory <= 1.5  # comparable in memory

    beyond = table[300]
    assert beyond["alluxio"] is None  # cannot exceed configured memory
    pangea_total = beyond["pangea-2disk"]["write"] + beyond["pangea-2disk"]["read"]
    vm_total = beyond["os-vm"]["write"] + beyond["os-vm"]["read"]
    assert vm_total > 3.0 * pangea_total
    # Pangea pages out far less than the stealing kernel.
    assert beyond["pangea-2disk"]["paged_out"] < beyond["os-vm"]["paged_out"]
    # Two disks beat one once spilling starts.
    assert beyond["pangea-2disk"]["read"] < beyond["pangea-1disk"]["read"]
    # Bulk deletion is near-free for Pangea, per-object for the OS VM.
    assert beyond["pangea-2disk"]["delete"] < beyond["os-vm"]["delete"] / 10
