"""Extension: the full policy zoo on the paging-heavy k-means workload.

Beyond the paper's Fig. 3 lineup, this also runs GreedyDual and LRU-2
(both discussed in the paper's related work) at the 3-billion-point scale
where paging decisions dominate.
"""

from conftest import record_report
from kmeans_common import run_pangea

POLICIES = [
    "data-aware",
    "dbmin-tuned",
    "mru",
    "lru",
    "greedy-dual",
    "lru-2",
]
POINTS = 3_000_000_000


def _run_all():
    return {policy: run_pangea(policy, POINTS) for policy in POLICIES}


def test_ext_policy_zoo(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'policy':>14s} {'total':>9s}"]
    aware = results["data-aware"].total_seconds
    for policy in POLICIES:
        r = results[policy]
        if r.failed:
            lines.append(f"{policy:>14s}    FAILED")
        else:
            lines.append(
                f"{policy:>14s} {r.total_seconds:8.0f}s "
                f"({r.total_seconds / aware:.2f}x data-aware)"
            )
    lines.append("")
    lines.append("3B points (360GB) against 500GB of cluster pool: paging-bound")
    record_report("Extension: full policy zoo on k-means (3B points)", lines)

    assert not results["data-aware"].failed
    for policy in POLICIES:
        r = results[policy]
        if not r.failed:
            # The data-aware policy is the best or tied-best choice.
            assert aware <= r.total_seconds * 1.02, policy
