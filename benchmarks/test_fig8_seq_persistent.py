"""Fig. 8: sequential access for persistent data (m3.xlarge micro-bench).

Write-through Pangea locality sets (1 and 2 disks) vs the OS file system
vs HDFS (1 and 2 disks, native client).  Write a varying number of
80-byte objects, then scan with a per-byte summation.

Paper shape: after tuning, *writing* is similar across all three systems
(disk-bound); *reading* favors Pangea by 1.9-2.7x over the OS file system
(no kernel/user copy, no per-call syscall cost) and 1.5-3.5x over HDFS
(which adds client/server copies on top).
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.baselines.hdfs import HdfsCluster
from repro.baselines.host import BaselineHost
from repro.baselines.os_fs import OsFileSystem
from repro.sim.devices import GB, MB

OBJECT_BYTES = 80
COUNTS = [50, 100, 150, 200, 250, 300]  # millions of objects
ACTUAL_OBJECTS = 4096
WORKERS = 4
POOL = 14 * GB
OS_CACHE = 10 * GB

WRITE_SECONDS_PER_OBJECT = 1.2e-6     # shared producer-side work
READ_SECONDS_PER_OBJECT = 0.25e-6     # shared byte-summing work
OSFS_READ_EXTRA = 0.35e-6             # per-object syscall + kernel copy path
HDFS_READ_EXTRA = 0.50e-6             # client protocol + packet handling


def run_pangea(millions: int, num_disks: int) -> dict:
    logical = millions * 1_000_000
    represent = logical / ACTUAL_OBJECTS
    cluster = PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.m3_xlarge(num_disks=num_disks, pool_bytes=POOL),
    )
    node = cluster.nodes[0]
    data = cluster.create_set(
        "persist", durability="write-through", page_size=64 * MB,
        object_bytes=int(OBJECT_BYTES * represent),
    )
    start = node.now
    data.add_data(list(range(ACTUAL_OBJECTS)))
    node.cpu.parallel(logical * WRITE_SECONDS_PER_OBJECT, WORKERS)
    write_seconds = node.now - start

    start = node.now
    for _record in data.scan_records(workers=WORKERS):
        pass
    node.cpu.parallel(logical * READ_SECONDS_PER_OBJECT, WORKERS)
    read_seconds = node.now - start
    return {"write": write_seconds, "read": read_seconds}


def run_os_fs(millions: int, num_disks: int = 1) -> dict:
    logical = millions * 1_000_000
    nbytes = logical * OBJECT_BYTES
    host = BaselineHost(MachineProfile.m3_xlarge(num_disks=num_disks))
    fs = OsFileSystem(host, cache_bytes=OS_CACHE)
    start = host.now
    fs.write("f", nbytes, workers=WORKERS)
    fs.flush("f")
    host.cpu.parallel(logical * WRITE_SECONDS_PER_OBJECT, WORKERS)
    write_seconds = host.now - start
    start = host.now
    fs.read("f", nbytes, workers=WORKERS)
    host.cpu.parallel(
        logical * (READ_SECONDS_PER_OBJECT + OSFS_READ_EXTRA), WORKERS
    )
    read_seconds = host.now - start
    return {"write": write_seconds, "read": read_seconds}


def run_hdfs(millions: int, num_disks: int) -> dict:
    logical = millions * 1_000_000
    nbytes = logical * OBJECT_BYTES
    host = BaselineHost(MachineProfile.m3_xlarge(num_disks=num_disks))
    hdfs = HdfsCluster([host], replication=1, datanode_cache_bytes=OS_CACHE)
    start = host.now
    hdfs.write("f", nbytes, client=host, workers=WORKERS)
    host.cpu.parallel(logical * WRITE_SECONDS_PER_OBJECT, WORKERS)
    write_seconds = host.now - start
    start = host.now
    hdfs.read("f", nbytes, client=host, workers=WORKERS)
    host.cpu.parallel(
        logical * (READ_SECONDS_PER_OBJECT + HDFS_READ_EXTRA), WORKERS
    )
    read_seconds = host.now - start
    return {"write": write_seconds, "read": read_seconds}


def _run_all():
    table = {}
    for millions in COUNTS:
        table[millions] = {
            "pangea-1disk": run_pangea(millions, 1),
            "pangea-2disk": run_pangea(millions, 2),
            "os-fs": run_os_fs(millions),
            "hdfs-1disk": run_hdfs(millions, 1),
            "hdfs-2disk": run_hdfs(millions, 2),
        }
    return table


def test_fig8_sequential_persistent(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    systems = ["pangea-1disk", "pangea-2disk", "os-fs", "hdfs-1disk", "hdfs-2disk"]
    lines = [f"{'Mobj':>5s} " + "".join(f"{s + ' w/r':>20s}" for s in systems)]
    for millions in COUNTS:
        row = table[millions]
        cells = "".join(
            f"{row[s]['write']:9.0f}/{row[s]['read']:<9.0f}s" for s in systems
        )
        lines.append(f"{millions:5d} {cells}")
    lines.append("")
    lines.append("paper: writes similar; Pangea reads 1.9-2.7x faster than the")
    lines.append("OS file system and 1.5-3.5x faster than HDFS")
    record_report("Fig. 8: sequential access for persistent data", lines)

    for millions in COUNTS:
        row = table[millions]
        # Writes are within 2x of each other (all disk/producer bound).
        writes = [row[s]["write"] for s in systems]
        assert max(writes) < 2.5 * min(writes), millions
        # Pangea reads beat the OS FS and HDFS within the paper's bands.
        osfs_ratio = row["os-fs"]["read"] / row["pangea-1disk"]["read"]
        hdfs_ratio = row["hdfs-1disk"]["read"] / row["pangea-1disk"]["read"]
        assert 1.3 <= osfs_ratio <= 4.0, (millions, osfs_ratio)
        assert 1.2 <= hdfs_ratio <= 5.0, (millions, hdfs_ratio)
