"""Shared k-means scenario runner for the Fig. 3 / Fig. 4 benchmarks.

Scenarios run once and are memoized: Fig. 3 reports latency, Fig. 4 reports
memory from the same runs, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import DbminBlockedError, MachineProfile, PangeaCluster
from repro.baselines.spark import SparkKMeans
from repro.ml.kmeans import PangeaKMeans, generate_points
from repro.sim.devices import GB

#: Each actual point represents this many paper-scale points.
REPRESENT = 250_000
NUM_NODES = 10
ITERATIONS = 5

POINT_COUNTS = {
    "1 billion points (120GB)": 1_000_000_000,
    "2 billion points (240GB)": 2_000_000_000,
    "3 billion points (360GB)": 3_000_000_000,
}

PANGEA_POLICIES = [
    "data-aware",
    "lru",
    "mru",
    "dbmin-1",
    "dbmin-1000",
    "dbmin-adaptive",
]

SPARK_BACKENDS = ["hdfs", "alluxio", "ignite"]


@dataclass
class ScenarioResult:
    system: str
    points: int
    init_seconds: float = 0.0
    total_seconds: float = 0.0
    memory_bytes: int = 0
    failed: bool = False
    failure: str = ""


_CACHE: dict = {}


def run_pangea(policy: str, num_points: int) -> ScenarioResult:
    key = (f"pangea-{policy}", num_points)
    if key in _CACHE:
        return _CACHE[key]
    cluster = PangeaCluster(
        num_nodes=NUM_NODES,
        profile=MachineProfile.r4_2xlarge(pool_bytes=50 * GB),
        policy=policy,
    )
    km = PangeaKMeans(cluster, k=10, dims=10, workers=8)
    actual = num_points // REPRESENT
    points = generate_points(actual)
    result = ScenarioResult(system=f"pangea-{policy}", points=num_points)
    try:
        data = km.load_points(points, represent=REPRESENT)
        run = km.run(data, represent=REPRESENT, iterations=ITERATIONS)
        result.init_seconds = run.init_seconds
        result.total_seconds = cluster.simulated_seconds()
        result.memory_bytes = run.peak_pool_bytes
    except DbminBlockedError as exc:
        result.failed = True
        result.failure = str(exc)[:80]
    _CACHE[key] = result
    return result


def run_spark(backend: str, num_points: int) -> ScenarioResult:
    key = (f"spark-{backend}", num_points)
    if key in _CACHE:
        return _CACHE[key]
    report = SparkKMeans(num_nodes=NUM_NODES, backend=backend).run(
        num_points, iterations=ITERATIONS
    )
    result = ScenarioResult(
        system=f"spark-{backend}",
        points=num_points,
        init_seconds=report.init_seconds,
        total_seconds=report.total_seconds,
        memory_bytes=report.memory_bytes,
        failed=report.failed,
        failure=report.failure[:80],
    )
    _CACHE[key] = result
    return result


def all_scenarios() -> list[ScenarioResult]:
    results = []
    for num_points in POINT_COUNTS.values():
        for policy in PANGEA_POLICIES:
            results.append(run_pangea(policy, num_points))
        for backend in SPARK_BACKENDS:
            results.append(run_spark(backend, num_points))
    return results
