"""Fig. 4: memory usage for the k-means runs of Fig. 3.

Paper shape: Pangea uses the least memory (no redundant copies across
layers); Spark-over-HDFS double-holds blocks in the OS buffer cache;
Alluxio and Ignite add their own memory regions on top of the executor;
failed runs appear as gaps.
"""

from conftest import record_report
from kmeans_common import POINT_COUNTS, run_pangea, run_spark
from repro.sim.devices import GB

SYSTEMS = [
    ("pangea", lambda n: run_pangea("data-aware", n)),
    ("spark-hdfs", lambda n: run_spark("hdfs", n)),
    ("spark-alluxio", lambda n: run_spark("alluxio", n)),
    ("spark-ignite", lambda n: run_spark("ignite", n)),
]


def _collect():
    return {
        (name, points): runner(points)
        for name, runner in SYSTEMS
        for points in POINT_COUNTS.values()
    }


def test_fig4_memory_usage(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lines = [f"{'system':16s} " + "".join(f"{label:>28s}" for label in POINT_COUNTS)]
    for name, _runner in SYSTEMS:
        cells = []
        for points in POINT_COUNTS.values():
            r = results[(name, points)]
            cells.append("FAILED" if r.failed else f"{r.memory_bytes / GB:.0f}GB")
        lines.append(f"{name:16s} " + "".join(f"{c:>28s}" for c in cells))
    record_report("Fig. 4: memory usage (k-means, 11-node cluster)", lines)

    # Shape assertions: before memory saturation (1B) Pangea needs strictly
    # less memory than every layered stack; beyond that everyone surviving
    # is pinned at roughly the full cluster budget.
    for name, _ in SYSTEMS[1:]:
        other = results[(name, 1_000_000_000)]
        pangea = results[("pangea", 1_000_000_000)]
        assert not other.failed
        assert pangea.memory_bytes < other.memory_bytes, name
    for points in POINT_COUNTS.values():
        pangea = results[("pangea", points)]
        assert not pangea.failed
        for name, _ in SYSTEMS[1:]:
            other = results[(name, points)]
            if not other.failed:
                assert pangea.memory_bytes <= other.memory_bytes * 1.1, (
                    f"{name} at {points}"
                )
