"""Tab. 3: shuffle read/write latency, 4 writers + 4 readers.

Pangea's shuffle service (all data of one partition in one locality set,
at most ``partitions`` spill files) vs the paper's C++-simulated Spark
shuffle (``cores x partitions`` files, one malloc + fwrite per object).

Paper shape: write 1.1-1.4x faster; read 2.2-27x faster (cached reads are
near-free for Pangea; past ~3500 MB/thread both degrade but Pangea's
fewer files and better paging keep it ahead).
"""

from conftest import record_report
from shuffle_common import POOL, run_pangea_shuffle

from repro.baselines.host import BaselineHost
from repro.baselines.spark import SparkShuffleSim
from repro.sim.devices import MB
from repro.sim.profiles import MachineProfile

MB_PER_THREAD = [500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000, 5500, 6000]


def run_spark_shuffle(mb_per_thread: int) -> dict:
    host = BaselineHost(MachineProfile.m3_xlarge(num_disks=1))
    sim = SparkShuffleSim(host, cache_bytes=POOL)
    write_seconds = sim.write(mb_per_thread * MB)
    read_seconds = sim.read(mb_per_thread * MB)
    return {"write": write_seconds, "read": read_seconds}


def _run_all():
    table = {}
    for mb in MB_PER_THREAD:
        table[mb] = {
            "spark": run_spark_shuffle(mb),
            "pangea-1disk": run_pangea_shuffle(mb, num_disks=1),
            "pangea-2disk": run_pangea_shuffle(mb, num_disks=2),
        }
    return table


def test_tab3_shuffle_latency(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        f"{'MB/thread':>10s} {'spark w':>9s} {'spark r':>9s} "
        f"{'pangea1 w':>10s} {'pangea1 r':>10s} {'pangea2 w':>10s} {'pangea2 r':>10s}"
    ]
    for mb in MB_PER_THREAD:
        row = table[mb]
        lines.append(
            f"{mb:10d} {row['spark']['write']:8.0f}s {row['spark']['read']:8.0f}s "
            f"{row['pangea-1disk']['write']:9.0f}s {row['pangea-1disk']['read']:9.0f}s "
            f"{row['pangea-2disk']['write']:9.0f}s {row['pangea-2disk']['read']:9.0f}s"
        )
    lines.append("")
    lines.append("paper: Pangea writes 1.1-1.4x faster, reads 2.2-27x faster")
    record_report("Tab. 3: shuffle read/write latency (4 workers)", lines)

    for mb in MB_PER_THREAD:
        row = table[mb]
        write_speedup = row["spark"]["write"] / row["pangea-1disk"]["write"]
        read_speedup = row["spark"]["read"] / row["pangea-1disk"]["read"]
        assert 1.0 <= write_speedup <= 2.0, (mb, write_speedup)
        assert read_speedup >= 1.5, (mb, read_speedup)
    # The read advantage is largest while Pangea still fits in memory.
    cached = table[2000]["spark"]["read"] / table[2000]["pangea-1disk"]["read"]
    spilled = table[6000]["spark"]["read"] / table[6000]["pangea-1disk"]["read"]
    assert cached > spilled
    assert cached >= 5
    # Two disks help once the shuffle spills.
    assert (
        table[6000]["pangea-2disk"]["read"] < table[6000]["pangea-1disk"]["read"]
    )
