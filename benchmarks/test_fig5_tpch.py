"""Fig. 5: TPC-H latency, Pangea vs Spark-over-HDFS (scale-100 shape).

Pangea registers heterogeneous replicas (lineitem by l_orderkey and
l_partkey, orders by o_orderkey and o_custkey, part/customer by their
keys); the scheduler picks co-partitioned replicas and pipelines joins
locally.  Spark reloads every input from HDFS, repartitions at query
time, and pays JVM serialization everywhere.

Paper shape: up to ~20x speedup on the replica-served join queries (Q04,
Q12, Q13, Q14, Q17, Q22); smaller but >1x wins elsewhere.

Scale-down: row counts shrink by ROW_SCALE while each record's logical
bytes inflate by the same factor, so byte-driven costs stay at scale-100
magnitude (DESIGN.md, substitutions).
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.baselines.spark import SparkTpchScheduler
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.tpch import QUERIES, load_tpch, register_tpch_replicas

SCALE = 0.004
ROW_SCALE = 100 / SCALE  # logical scale-100 over actual rows
NUM_NODES = 10
ROW_BYTES = int(144 * ROW_SCALE)

REPLICA_QUERIES = {"Q04", "Q12", "Q13", "Q14", "Q17", "Q22"}


def _build(with_replicas: bool) -> PangeaCluster:
    cluster = PangeaCluster(
        num_nodes=NUM_NODES, profile=MachineProfile.r4_2xlarge(pool_bytes=80 * GB)
    )
    # Record-driven CPU costs scale with the same factor as the byte
    # inflation, so each actual row carries its logical row-count's work.
    for node in cluster.nodes:
        node.cpu.per_object_overhead *= ROW_SCALE
    load_tpch(cluster, scale=SCALE, page_size=256 * MB, row_scale=ROW_SCALE)
    if with_replicas:
        register_tpch_replicas(cluster, row_scale=ROW_SCALE)
    return cluster


def _run_all():
    pangea_cluster = _build(with_replicas=True)
    spark_cluster = _build(with_replicas=False)
    rows = {}
    for name, run in sorted(QUERIES.items()):
        pangea = QueryScheduler(
            pangea_cluster, broadcast_threshold=512 * MB, object_bytes=ROW_BYTES
        )
        start = pangea_cluster.simulated_seconds()
        run(pangea)
        pangea_seconds = pangea_cluster.simulated_seconds() - start

        # Spark's autoBroadcastJoinThreshold default is 10MB; anything
        # larger becomes a sort-merge join that repartitions both sides.
        spark = SparkTpchScheduler(
            spark_cluster, broadcast_threshold=10 * MB, object_bytes=ROW_BYTES
        )
        start = spark_cluster.simulated_seconds()
        run(spark)
        spark_seconds = spark_cluster.simulated_seconds() - start
        rows[name] = (pangea_seconds, spark_seconds, pangea.metrics)
    return rows


def test_fig5_tpch_latency(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'query':6s} {'pangea':>10s} {'spark/hdfs':>12s} {'speedup':>9s}  strategy"]
    for name, (pangea_s, spark_s, metrics) in sorted(rows.items()):
        strategy = "co-partitioned" if metrics.copartitioned_joins else (
            "broadcast" if metrics.broadcast_joins else "scan/agg"
        )
        lines.append(
            f"{name:6s} {pangea_s:9.1f}s {spark_s:11.1f}s {spark_s / pangea_s:8.1f}x"
            f"  {strategy}"
        )
    record_report("Fig. 5: TPC-H latency, Pangea vs Spark over HDFS", lines)

    # Shape assertions.
    for name, (pangea_s, spark_s, _m) in rows.items():
        assert spark_s > pangea_s, name
    best = max(spark_s / pangea_s for pangea_s, spark_s, _ in rows.values())
    assert best >= 8, f"expected a large win on replica-served queries, got {best:.1f}x"
    for name in REPLICA_QUERIES:
        _p, _s, metrics = rows[name]
        assert metrics.copartitioned_joins >= 1, name
