"""Shared Pangea shuffle scenario for Tab. 3 and Fig. 10."""

from __future__ import annotations

from repro import MachineProfile, PangeaCluster
from repro.services.shuffle import ShuffleService
from repro.sim.devices import GB, MB

OBJECT_BYTES = 10
NUM_WORKERS = 4
NUM_PARTITIONS = 4
ACTUAL_OBJECTS_PER_WORKER = 2048
POOL = 14 * GB

#: Calibrated per-object costs (paper Tab. 3: Pangea writes 500MB/thread
#: in ~15 s with 4 workers; reads scan at memory speed).
WRITE_SECONDS_PER_OBJECT = 0.30e-6
READ_SECONDS_PER_BYTE = 0.5e-9


def run_pangea_shuffle(
    mb_per_thread: int, num_disks: int = 1, policy: str = "data-aware"
) -> dict:
    """Write 4 threads x 4 partitions of 10-byte strings, then read back."""
    bytes_per_thread = mb_per_thread * MB
    total_bytes = bytes_per_thread * NUM_WORKERS
    logical_objects = total_bytes // OBJECT_BYTES
    actual_total = ACTUAL_OBJECTS_PER_WORKER * NUM_WORKERS
    represent = logical_objects / actual_total

    cluster = PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.m3_xlarge(num_disks=num_disks, pool_bytes=POOL),
        policy=policy,
    )
    node = cluster.nodes[0]
    service = ShuffleService(
        cluster, "tab3", num_partitions=NUM_PARTITIONS,
        page_size=64 * MB, small_page_size=4 * MB,
        object_bytes=max(1, int(OBJECT_BYTES * represent)),
    )
    start = node.now
    for worker in range(NUM_WORKERS):
        for i in range(ACTUAL_OBJECTS_PER_WORKER):
            partition = (worker * ACTUAL_OBJECTS_PER_WORKER + i) % NUM_PARTITIONS
            service.buffer_for(worker, partition, worker_node=node).add_object(
                (worker, i)
            )
    service.finish_writing()
    node.cpu.parallel(logical_objects * WRITE_SECONDS_PER_OBJECT, NUM_WORKERS)
    write_seconds = node.now - start

    start = node.now
    for partition in range(NUM_PARTITIONS):
        for _record in service.partition_set(partition).scan_records(
            workers=1
        ):
            pass
    node.cpu.parallel(total_bytes * READ_SECONDS_PER_BYTE, NUM_WORKERS)
    read_seconds = node.now - start
    service.drop()
    return {"write": write_seconds, "read": read_seconds}
