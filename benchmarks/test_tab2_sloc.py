"""Tab. 2: source-code breakdown of the relational query processor.

The paper reports ~5,889 SLOC of C++ for eleven components built on
Pangea's services.  We report the same breakdown for this repository's
Python implementation — the point being that a complete distributed query
processor is a modest amount of code once the storage substrate provides
scan/shuffle/hash/broadcast services.
"""

import os

from conftest import record_report

import repro.query
import repro.services

COMPONENTS = [
    ("Scan + Pipeline", ["query/pipeline.py"]),
    ("Expressions + operators", ["query/expressions.py", "query/operators.py"]),
    ("Build broadcast hash map", ["services/broadcast.py"]),
    ("Build partitioned hash map", ["services/joinmap.py"]),
    ("Shuffle service", ["services/shuffle.py"]),
    ("Hash service", ["services/hashsvc.py"]),
    ("QueryScheduling", ["query/scheduler.py"]),
]


def _sloc(path: str) -> int:
    count = 0
    in_docstring = False
    with open(path) as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if in_docstring:
                if stripped.endswith('"""') or stripped.endswith("'''"):
                    in_docstring = False
                continue
            if stripped.startswith(('"""', "'''")):
                if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                    in_docstring = True
                continue
            if stripped.startswith("#"):
                continue
            count += 1
    return count


def _collect():
    src_root = os.path.dirname(os.path.dirname(repro.query.__file__))
    rows = []
    total = 0
    for name, files in COMPONENTS:
        sloc = sum(_sloc(os.path.join(src_root, f)) for f in files)
        rows.append((name, sloc))
        total += sloc
    return rows, total


def test_tab2_query_processor_sloc(benchmark):
    rows, total = benchmark.pedantic(_collect, rounds=1, iterations=1)
    lines = [f"{'component':32s} {'SLOC':>6s}"]
    for name, sloc in rows:
        lines.append(f"{name:32s} {sloc:6d}")
    lines.append(f"{'Total':32s} {total:6d}")
    lines.append("")
    lines.append("paper (C++): 5,889 SLOC across eleven components")
    record_report("Tab. 2: query processor source-code breakdown", lines)
    # Python is denser than C++, but the order of magnitude should match
    # the paper's claim of a "modest effort" query processor.
    assert 800 <= total <= 10_000
