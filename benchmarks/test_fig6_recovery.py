"""Fig. 6: recovery latency for TPC-H lineitem on 10/20/30 worker nodes.

Paper shape: recovering the 79GB lineitem table after a single-node
failure takes ~5 seconds on 10 nodes and *decreases* with more nodes;
the colliding-object ratio falls from ~9% (10 nodes) through ~3%
(20 nodes) toward zero (30 nodes).
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.recovery import recover_node
from repro.placement.replication import register_replica
from repro.sim.devices import GB, MB
from repro.tpch import load_tpch

SCALE = 0.002
#: lineitem at the paper's experiment is 5.98B rows / 79GB.
LOGICAL_ROWS = 5_980_000_000
NODE_COUNTS = [10, 20, 30]


def _run_one(num_nodes: int):
    cluster = PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.r4_2xlarge(pool_bytes=60 * GB)
    )
    tables = load_tpch(cluster, scale=SCALE, page_size=64 * MB)
    actual_rows = len(tables["lineitem"])
    row_scale = LOGICAL_ROWS / actual_rows
    lineitem = cluster.get_set("lineitem")
    lineitem.object_bytes = int(79 * GB / LOGICAL_ROWS * row_scale)
    for node in cluster.nodes:
        node.cpu.per_object_overhead *= row_scale

    def replica(key):
        target = cluster.create_set(
            f"lineitem_{key}", page_size=64 * MB,
            object_bytes=lineitem.object_bytes,
        )
        partition_set(
            lineitem, target,
            HashPartitioner(lambda r, k=key: r[k], num_nodes * 4, key_name=key),
        )
        return target

    rep_order = replica("l_orderkey")
    rep_part = replica("l_partkey")
    group = register_replica(
        rep_order, rep_part,
        object_id_fn=lambda r: (r["l_orderkey"], r["l_linenumber"]),
    )
    register_replica(lineitem, rep_part, object_id_fn=group.object_id_fn, group=group)
    colliding_ratio = group.num_colliding / actual_rows
    cluster.barrier()
    report = recover_node(cluster, group, failed_node=1)
    return report.seconds, colliding_ratio, report


def _run_all():
    return {n: _run_one(n) for n in NODE_COUNTS}


def test_fig6_recovery_latency(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'workers':>8s} {'recovery':>10s} {'colliding':>10s}"]
    for num_nodes, (seconds, ratio, _report) in sorted(results.items()):
        lines.append(f"{num_nodes:8d} {seconds:9.2f}s {100 * ratio:9.2f}%")
    lines.append("")
    lines.append("paper: ~5s on 10 workers; colliding 9% / 3% / ~0%")
    record_report("Fig. 6: recovery latency (TPC-H lineitem, 79GB)", lines)

    # Shape: single-digit seconds, and both series decline with node count.
    s10, r10, _ = results[10]
    s30, r30, _ = results[30]
    assert s10 < 60
    assert s30 < s10
    assert r30 < r10
    assert r10 < 0.25
