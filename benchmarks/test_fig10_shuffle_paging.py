"""Fig. 10: page replacement policies for shuffle (1 disk).

The shuffle at 4000-6000 MB/thread exceeds memory; the paging policy
decides which partition pages spill during the concurrent-write phase and
which survive to be read back.

Paper shape: the data-aware policy beats LRU on reads by up to ~3x (the
first pages written stay cached and are read first), edges out MRU/LRU on
writes by ~10%, and tracks tuned DBMIN within ~10%.
"""

from conftest import record_report
from shuffle_common import run_pangea_shuffle

MB_PER_THREAD = [4000, 4500, 5000, 5500, 6000]
POLICIES = ["data-aware", "dbmin-tuned", "mru", "lru"]


def _run_all():
    return {
        (mb, policy): run_pangea_shuffle(mb, num_disks=1, policy=policy)
        for mb in MB_PER_THREAD
        for policy in POLICIES
    }


def test_fig10_shuffle_paging(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [
        f"{'MB/thread':>10s} " + "".join(f"{p + ' w/r':>22s}" for p in POLICIES)
    ]
    for mb in MB_PER_THREAD:
        cells = "".join(
            f"{table[(mb, p)]['write']:10.0f}/{table[(mb, p)]['read']:<10.0f}s"
            for p in POLICIES
        )
        lines.append(f"{mb:10d} {cells}")
    lines.append("")
    lines.append("paper: data-aware reads up to 3x faster than LRU; ~10% over")
    lines.append("MRU/LRU on writes; within ~10% of tuned DBMIN")
    record_report("Fig. 10: page replacement for shuffle", lines)

    for mb in MB_PER_THREAD:
        aware = table[(mb, "data-aware")]
        lru = table[(mb, "lru")]
        mru = table[(mb, "mru")]
        dbmin = table[(mb, "dbmin-tuned")]
        assert aware["read"] <= lru["read"], mb
        assert aware["read"] <= mru["read"] * 1.05, mb
        assert aware["read"] <= dbmin["read"] * 1.15, mb
        assert aware["write"] <= lru["write"] * 1.05, mb
    # At the largest size the LRU gap is pronounced.
    assert (
        table[(6000, "lru")]["read"]
        >= 1.5 * table[(6000, "data-aware")]["read"]
    )
