"""Fig. 3: k-means latency, 10 workers, 1-3 billion 10-d points.

Paper shape: Pangea (data-aware) beats every Spark stack by up to ~6x;
DBMIN-adaptive and DBMIN-1000 fail at larger inputs (gaps); Alluxio and
Ignite fail beyond 1B points; the data-aware policy beats LRU/MRU/DBMIN
once paging starts (>= 2B points).
"""

from conftest import record_report
from kmeans_common import POINT_COUNTS, all_scenarios, run_pangea, run_spark


def test_fig3_kmeans_latency(benchmark):
    results = benchmark.pedantic(all_scenarios, rounds=1, iterations=1)
    lines = [f"{'system':22s} " + "".join(f"{label:>28s}" for label in POINT_COUNTS)]
    systems = sorted({r.system for r in results})
    by_key = {(r.system, r.points): r for r in results}
    for system in systems:
        cells = []
        for num_points in POINT_COUNTS.values():
            r = by_key[(system, num_points)]
            cells.append("FAILED" if r.failed else f"{r.total_seconds:.0f}s")
        lines.append(f"{system:22s} " + "".join(f"{c:>28s}" for c in cells))
    # Phase breakdown the paper reports in Sec. 9.1.1 for 1B points.
    lines.append("")
    lines.append("1B-point phase breakdown (paper: Pangea 43s init / 11s iter;")
    lines.append("Spark-HDFS 146s / 14s; Spark-Alluxio 96s / 37s):")
    for system, run in (
        ("pangea-data-aware", run_pangea("data-aware", 1_000_000_000)),
        ("spark-hdfs", run_spark("hdfs", 1_000_000_000)),
        ("spark-alluxio", run_spark("alluxio", 1_000_000_000)),
    ):
        per_iter = (run.total_seconds - run.init_seconds) / 5
        lines.append(
            f"  {system:20s} init={run.init_seconds:6.1f}s iter={per_iter:6.1f}s"
        )
    record_report("Fig. 3: k-means latency (11-node cluster)", lines)

    # Shape assertions from the paper.
    pangea_1b = run_pangea("data-aware", 1_000_000_000)
    spark_best_1b = min(
        (run_spark(b, 1_000_000_000) for b in ("hdfs", "alluxio", "ignite")),
        key=lambda r: float("inf") if r.failed else r.total_seconds,
    )
    spark_worst_1b = max(
        (run_spark(b, 1_000_000_000) for b in ("hdfs", "alluxio", "ignite")),
        key=lambda r: 0 if r.failed else r.total_seconds,
    )
    assert pangea_1b.total_seconds < spark_best_1b.total_seconds
    assert spark_worst_1b.total_seconds > 4 * pangea_1b.total_seconds
    assert run_spark("alluxio", 2_000_000_000).failed
    assert run_spark("ignite", 2_000_000_000).failed
    assert run_pangea("dbmin-adaptive", 3_000_000_000).failed
    assert run_pangea("dbmin-1000", 3_000_000_000).failed
    # Once paging starts, data-aware beats LRU (paper: 1.8-5x band).
    da_3b = run_pangea("data-aware", 3_000_000_000)
    lru_3b = run_pangea("lru", 3_000_000_000)
    assert not da_3b.failed
    assert da_3b.total_seconds < lru_3b.total_seconds
