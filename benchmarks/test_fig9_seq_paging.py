"""Fig. 9: page replacement policies for sequential access.

Loop-sequential read-after-write over data exceeding memory (200-300M
80-byte objects against a 14GB pool), under the data-aware policy, tuned
DBMIN, MRU, and LRU — for both write-through (persistent) and write-back
(transient) locality sets.

Paper shape: for reading, data-aware / tuned-DBMIN / MRU beat LRU by
1.6-2.5x (LRU evicts exactly what a loop re-reads next); data-aware gains
up to ~50% over plain MRU/LRU and up to ~20% over tuned DBMIN; reading
write-back data is slower than write-through data (spills happen during
the read phase instead of the write phase).
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.sim.devices import GB, MB

OBJECT_BYTES = 80
COUNTS = [200, 250, 300]  # millions of objects
ACTUAL_OBJECTS = 4096
SCANS = 3
WORKERS = 4
POOL = 14 * GB
POLICIES = ["data-aware", "dbmin-tuned", "mru", "lru"]

WRITE_SECONDS_PER_OBJECT = 1.2e-6
READ_SECONDS_PER_OBJECT = 0.25e-6


def run_one(policy: str, millions: int, durability: str) -> dict:
    logical = millions * 1_000_000
    represent = logical / ACTUAL_OBJECTS
    cluster = PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.m3_xlarge(num_disks=1, pool_bytes=POOL),
        policy=policy,
    )
    node = cluster.nodes[0]
    data = cluster.create_set(
        "seq", durability=durability, page_size=64 * MB,
        object_bytes=int(OBJECT_BYTES * represent),
    )
    start = node.now
    data.add_data(list(range(ACTUAL_OBJECTS)))
    node.cpu.parallel(logical * WRITE_SECONDS_PER_OBJECT, WORKERS)
    write_seconds = node.now - start
    start = node.now
    for _ in range(SCANS):
        for _record in data.scan_records(workers=WORKERS):
            pass
        node.cpu.parallel(logical * READ_SECONDS_PER_OBJECT, WORKERS)
    read_seconds = node.now - start
    return {"write": write_seconds, "read": read_seconds}


def _run_all():
    table = {}
    for durability in ("write-through", "write-back"):
        for millions in COUNTS:
            for policy in POLICIES:
                table[(durability, millions, policy)] = run_one(
                    policy, millions, durability
                )
    return table


def test_fig9_sequential_paging(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = []
    for durability in ("write-through", "write-back"):
        lines.append(f"[{durability}]")
        lines.append(
            f"{'Mobj':>5s} " + "".join(f"{p + ' w/r':>20s}" for p in POLICIES)
        )
        for millions in COUNTS:
            cells = "".join(
                f"{table[(durability, millions, p)]['write']:9.0f}"
                f"/{table[(durability, millions, p)]['read']:<9.0f}s"
                for p in POLICIES
            )
            lines.append(f"{millions:5d} {cells}")
        lines.append("")
    lines.append("paper: data-aware/DBMIN/MRU read 1.6-2.5x faster than LRU;")
    lines.append("data-aware up to 50% over MRU/LRU and 20% over tuned DBMIN;")
    lines.append("write-back reads slower than write-through reads")
    record_report("Fig. 9: page replacement for sequential access", lines)

    for durability in ("write-through", "write-back"):
        for millions in COUNTS:
            aware = table[(durability, millions, "data-aware")]
            dbmin = table[(durability, millions, "dbmin-tuned")]
            mru = table[(durability, millions, "mru")]
            lru = table[(durability, millions, "lru")]
            # LRU loop-thrash: the others beat it clearly on reads.
            assert lru["read"] > 1.3 * aware["read"], (durability, millions)
            assert lru["read"] >= 0.95 * mru["read"], (durability, millions)
            # Data-aware tracks the best alternatives closely (the paper
            # itself notes that single-set micro-benchmarks show similar
            # performance for data-aware, MRU and tuned DBMIN; its ~20%
            # win over DBMIN comes from overlapping batched evictions
            # with computation, which the cost model does not capture —
            # see EXPERIMENTS.md, known deviations).
            assert aware["read"] <= dbmin["read"] * 1.30, (durability, millions)
            assert aware["read"] <= mru["read"] * 1.05, (durability, millions)
    # Reading spilled write-back data costs more than write-through data.
    wb = table[("write-back", 300, "data-aware")]
    wt = table[("write-through", 300, "data-aware")]
    assert wb["read"] >= wt["read"]
