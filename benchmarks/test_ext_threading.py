"""Extension: long-living workers vs waves of tasks (paper Sec. 5).

Not a numbered figure — the paper argues qualitatively that Pangea's
long-living workers (pulling page metadata from a circular buffer) avoid
the per-task scheduling cost and the PACMan-style all-or-nothing caching
concern of the waves-of-tasks model.  This benchmark quantifies the claim
on growing inputs: the waves model's driver overhead grows with the
number of blocks, while the worker pool's cost tracks only the data.
"""

import time

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.compute import WavesOfTasks, WorkerPool
from repro.sim.devices import GB, MB

PAGE = 64 * MB
SIZES_GB = [1, 4, 16, 64]


def run_one(total_gb: int) -> dict:
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.r4_2xlarge(pool_bytes=32 * GB)
    )
    data = cluster.create_set(
        "blocks", durability="write-back", page_size=PAGE,
        object_bytes=16 * MB,
    )
    data.add_data(list(range(total_gb * GB // (16 * MB))))
    workers = WorkerPool(cluster, workers_per_node=8).run_stage(
        data, page_fn=lambda p: None, seconds_per_object=1e-4
    )
    waves = WavesOfTasks(cluster, cores_per_node=8).run_stage(
        data, page_fn=lambda p: None, seconds_per_object=1e-4
    )
    return {
        "pages": data.num_pages,
        "workers": workers.seconds,
        "waves": waves.seconds,
        "tasks": waves.tasks_scheduled,
    }


def _run_all():
    return {gb: run_one(gb) for gb in SIZES_GB}


def test_ext_threading_models(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'GB':>4s} {'blocks':>7s} {'workers':>9s} {'waves':>9s} {'overhead':>9s}"]
    for gb in SIZES_GB:
        row = table[gb]
        overhead = (row["waves"] - row["workers"]) / max(row["workers"], 1e-9)
        lines.append(
            f"{gb:4d} {row['pages']:7d} {row['workers']:8.2f}s "
            f"{row['waves']:8.2f}s {100 * overhead:8.1f}%"
        )
    lines.append("")
    lines.append("waves-of-tasks pays driver scheduling per block; the long-")
    lines.append("living worker model pays one GetSetPages per stage")
    record_report("Extension: long-living workers vs waves of tasks", lines)

    for gb in SIZES_GB:
        assert table[gb]["waves"] > table[gb]["workers"]
    # The relative overhead does not vanish as data (and blocks) grow.
    small = table[SIZES_GB[0]]
    large = table[SIZES_GB[-1]]
    assert large["tasks"] > small["tasks"]


def run_threaded_comparison(worker_counts=(1, 2, 4, 8)) -> dict:
    """Simulated vs real-thread WorkerPool on one stage (ISSUE 1).

    The simulated mode computes the paper's analytic timings; the
    threaded mode runs the same stage on real OS threads through the
    now-thread-safe storage path.  Results must match exactly; the wall
    clock shows what the real concurrency costs/gains on this host.
    """
    rows = {}
    for workers in worker_counts:
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.r4_2xlarge(pool_bytes=32 * GB)
        )
        data = cluster.create_set(
            "blocks", durability="write-back", page_size=4 * MB,
            object_bytes=256 * 1024,
        )
        data.add_data(list(range(1024)))
        page_fn = lambda page: sum(page.records)  # noqa: E731

        wall = time.perf_counter()
        simulated = WorkerPool(cluster, workers_per_node=workers).run_stage(
            data, page_fn=page_fn, seconds_per_object=1e-5
        )
        sim_wall = time.perf_counter() - wall

        wall = time.perf_counter()
        threaded = WorkerPool(
            cluster, workers_per_node=workers, threaded=True
        ).run_stage(data, page_fn=page_fn, seconds_per_object=1e-5)
        thr_wall = time.perf_counter() - wall

        assert threaded.per_node == simulated.per_node
        rows[workers] = {
            "pages": threaded.pages_processed,
            "sim_seconds": simulated.seconds,
            "thr_seconds": threaded.seconds,
            "sim_wall": sim_wall,
            "thr_wall": thr_wall,
            "os_threads": len(threaded.os_threads_used),
        }
    return rows


def test_ext_threaded_worker_pool(benchmark):
    table = benchmark.pedantic(run_threaded_comparison, rounds=1, iterations=1)
    lines = [
        f"{'workers':>8s} {'pages':>6s} {'sim(model)':>11s} {'thr(model)':>11s} "
        f"{'sim wall':>9s} {'thr wall':>9s} {'threads':>8s}"
    ]
    for workers, row in sorted(table.items()):
        lines.append(
            f"{workers:8d} {row['pages']:6d} {row['sim_seconds']:10.3f}s "
            f"{row['thr_seconds']:10.3f}s {row['sim_wall']:8.3f}s "
            f"{row['thr_wall']:8.3f}s {row['os_threads']:8d}"
        )
    lines.append("")
    lines.append("identical per-node results in both modes; the threaded mode")
    lines.append("drives the same storage path through real OS threads")
    record_report(
        "Extension: simulated vs real-thread worker pool", lines
    )
    for row in table.values():
        assert row["pages"] == 64
        # The analytic cost model is mode-independent.
        assert abs(row["sim_seconds"] - row["thr_seconds"]) < 1e-6 + 1e-6 * row[
            "sim_seconds"
        ]
