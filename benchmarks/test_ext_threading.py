"""Extension: long-living workers vs waves of tasks (paper Sec. 5).

Not a numbered figure — the paper argues qualitatively that Pangea's
long-living workers (pulling page metadata from a circular buffer) avoid
the per-task scheduling cost and the PACMan-style all-or-nothing caching
concern of the waves-of-tasks model.  This benchmark quantifies the claim
on growing inputs: the waves model's driver overhead grows with the
number of blocks, while the worker pool's cost tracks only the data.
"""

from conftest import record_report

from repro import MachineProfile, PangeaCluster
from repro.compute import WavesOfTasks, WorkerPool
from repro.sim.devices import GB, MB

PAGE = 64 * MB
SIZES_GB = [1, 4, 16, 64]


def run_one(total_gb: int) -> dict:
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.r4_2xlarge(pool_bytes=32 * GB)
    )
    data = cluster.create_set(
        "blocks", durability="write-back", page_size=PAGE,
        object_bytes=16 * MB,
    )
    data.add_data(list(range(total_gb * GB // (16 * MB))))
    workers = WorkerPool(cluster, workers_per_node=8).run_stage(
        data, page_fn=lambda p: None, seconds_per_object=1e-4
    )
    waves = WavesOfTasks(cluster, cores_per_node=8).run_stage(
        data, page_fn=lambda p: None, seconds_per_object=1e-4
    )
    return {
        "pages": data.num_pages,
        "workers": workers.seconds,
        "waves": waves.seconds,
        "tasks": waves.tasks_scheduled,
    }


def _run_all():
    return {gb: run_one(gb) for gb in SIZES_GB}


def test_ext_threading_models(benchmark):
    table = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'GB':>4s} {'blocks':>7s} {'workers':>9s} {'waves':>9s} {'overhead':>9s}"]
    for gb in SIZES_GB:
        row = table[gb]
        overhead = (row["waves"] - row["workers"]) / max(row["workers"], 1e-9)
        lines.append(
            f"{gb:4d} {row['pages']:7d} {row['workers']:8.2f}s "
            f"{row['waves']:8.2f}s {100 * overhead:8.1f}%"
        )
    lines.append("")
    lines.append("waves-of-tasks pays driver scheduling per block; the long-")
    lines.append("living worker model pays one GetSetPages per stage")
    record_report("Extension: long-living workers vs waves of tasks", lines)

    for gb in SIZES_GB:
        assert table[gb]["waves"] > table[gb]["workers"]
    # The relative overhead does not vanish as data (and blocks) grow.
    small = table[SIZES_GB[0]]
    large = table[SIZES_GB[-1]]
    assert large["tasks"] > small["tasks"]
