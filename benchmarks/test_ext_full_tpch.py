"""Extension: all 22 TPC-H queries, Pangea vs Spark-over-HDFS.

The paper evaluates nine queries (Fig. 5); this repository implements the
full TPC-H suite.  The same scale-100 shape methodology as the Fig. 5
benchmark applies (see test_fig5_tpch.py).
"""

from conftest import record_report
from test_fig5_tpch import ROW_BYTES, _build

from repro.baselines.spark import SparkTpchScheduler
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import MB
from repro.tpch import EXTRA_QUERIES, QUERIES
from repro.tpch.full_queries import FULL_QUERIES

ALL_QUERIES = {**QUERIES, **EXTRA_QUERIES, **FULL_QUERIES}


def _run_all():
    pangea_cluster = _build(with_replicas=True)
    spark_cluster = _build(with_replicas=False)
    rows = {}
    for name, run in sorted(ALL_QUERIES.items()):
        pangea = QueryScheduler(
            pangea_cluster, broadcast_threshold=512 * MB, object_bytes=ROW_BYTES
        )
        start = pangea_cluster.simulated_seconds()
        run(pangea)
        pangea_seconds = pangea_cluster.simulated_seconds() - start
        spark = SparkTpchScheduler(
            spark_cluster, broadcast_threshold=10 * MB, object_bytes=ROW_BYTES
        )
        start = spark_cluster.simulated_seconds()
        run(spark)
        spark_seconds = spark_cluster.simulated_seconds() - start
        rows[name] = (pangea_seconds, spark_seconds)
    return rows


def test_ext_full_tpch(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    lines = [f"{'query':6s} {'pangea':>10s} {'spark/hdfs':>12s} {'speedup':>9s}"]
    for name, (pangea_s, spark_s) in sorted(rows.items()):
        lines.append(
            f"{name:6s} {pangea_s:9.1f}s {spark_s:11.1f}s "
            f"{spark_s / pangea_s:8.1f}x"
        )
    geo = 1.0
    for pangea_s, spark_s in rows.values():
        geo *= spark_s / pangea_s
    geo **= 1.0 / len(rows)
    lines.append(f"{'geomean':6s} {'':>10s} {'':>12s} {geo:8.1f}x")
    record_report("Extension: all 22 TPC-H queries, Pangea vs Spark", lines)

    # Pangea wins every query; overall advantage is substantial.
    for name, (pangea_s, spark_s) in rows.items():
        assert spark_s > pangea_s, name
    assert geo >= 2.0
