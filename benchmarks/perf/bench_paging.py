"""Wall-clock harness for the paging hot path and the pool allocators.

Times Fig. 9/10-shaped paging storms with the victim-index path
(``use_index=True``) against the legacy scan-and-sort path on the *same*
seeded workload, asserting along the way that both made bit-identical
eviction decisions.  Also microbenches the TLSF and slab allocators.

Results land in ``BENCH_paging.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_paging.py [--quick]
        [--out PATH] [--check]

``--check`` exits non-zero when the victim-index path is slower than the
legacy scan on any paging storm (the CI perf-smoke guard).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import MachineProfile, PangeaCluster  # noqa: E402
from repro.buffer.slab import SlabAllocator  # noqa: E402
from repro.buffer.tlsf import TlsfAllocator  # noqa: E402
from repro.core.attributes import ReadingPattern, WritingPattern  # noqa: E402
from repro.core.policies import make_policy  # noqa: E402
from repro.sim.devices import MB  # noqa: E402

PAGE = 8 * 1024  # small pages -> many resident victims per round


def _cluster(policy):
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
    )
    cluster.nodes[0].paging.set_policy(policy)
    cluster.nodes[0].paging.enable_trace(capacity=1_000_000)
    return cluster


def storm_fig9(policy, pages, rescans, seed=909):
    """Sequential-write spill storm plus looped rescans (Fig. 9 shape)."""
    cluster = _cluster(policy)
    rng = random.Random(seed)
    spill = cluster.create_set("spill", durability="write-back", page_size=PAGE)
    hot = cluster.create_set("hot", durability="write-back", page_size=PAGE)
    ss, hs = spill.shards[0], hot.shards[0]
    ss.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    hs.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    for i in range(pages):
        shard = ss if i % 4 else hs
        page = shard.new_page()
        page.append(i, 64)
        shard.unpin_page(page)
    ss.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    hs.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    for _ in range(rescans):
        for page in list(ss.pages):
            ss.pin_page(page)
            ss.unpin_page(page)
        for _ in range(pages // 8):
            page = rng.choice(hs.pages)
            hs.pin_page(page)
            hs.unpin_page(page)
    return cluster


def storm_fig10(policy, pages, accesses, seed=1010):
    """Shuffle storm: random-read source, random-mutable sink (Fig. 10)."""
    cluster = _cluster(policy)
    rng = random.Random(seed)
    source = cluster.create_set("source", durability="write-back", page_size=PAGE)
    sink = cluster.create_set("sink", durability="write-back", page_size=PAGE)
    ss, ks = source.shards[0], sink.shards[0]
    ss.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    for i in range(pages):
        page = ss.new_page()
        page.append(i, 64)
        ss.unpin_page(page)
    ss.attributes.note_read_service(ReadingPattern.RANDOM_READ)
    ks.attributes.note_write_service(WritingPattern.RANDOM_MUTABLE_WRITE)
    sink_pages = []
    for i in range(accesses):
        page = ss.pages[rng.randrange(len(ss.pages))]
        ss.pin_page(page)
        ss.unpin_page(page)
        if i % 3 == 0:
            out = ks.new_page()
            out.append(i, 64)
            ks.unpin_page(out)
            sink_pages.append(out)
        elif sink_pages:
            out = sink_pages[rng.randrange(len(sink_pages))]
            ks.pin_page(out)
            out.append(i, 64)
            ks.unpin_page(out)
    return cluster


def _trace(cluster):
    return [
        (e.set_name, e.page_id, e.was_dirty, e.flushed, e.tick)
        for e in cluster.nodes[0].paging.trace
    ]


def time_storm(name, runner, policy_name, **params):
    """Run one storm on both paths; wall-clock each and verify decisions."""
    out = {"workload": name, "policy": policy_name, "params": params}
    traces = {}
    for label, use_index in (("legacy", False), ("indexed", True)):
        policy = make_policy(policy_name, use_index=use_index)
        start = time.perf_counter()
        cluster = runner(policy, **params)
        out[f"{label}_seconds"] = time.perf_counter() - start
        traces[label] = _trace(cluster)
        out["evictions"] = cluster.nodes[0].pool.stats.evictions
        stats = cluster.nodes[0].paging.stats
        out[f"{label}_eviction_rounds"] = stats.eviction_rounds
        if use_index:
            out["index_rebuilds"] = stats.index_rebuilds
            out["cost_cache_hits"] = stats.cost_cache_hits
            out["cost_cache_misses"] = stats.cost_cache_misses
    out["identical_decisions"] = traces["legacy"] == traces["indexed"]
    out["speedup"] = (
        out["legacy_seconds"] / out["indexed_seconds"]
        if out["indexed_seconds"] > 0
        else float("inf")
    )
    return out


def bench_allocator(kind, ops, seed=7):
    """Steady-state malloc/free churn on one allocator, ops/second."""
    rng = random.Random(seed)
    capacity = 64 * MB
    if kind == "tlsf":
        alloc = TlsfAllocator(capacity)
        malloc = alloc.malloc
    else:
        alloc = SlabAllocator(capacity, slab_size=1 * MB, chunk_min=4096)

        def malloc(size):
            try:
                return alloc.alloc(size)
            except Exception:
                return None
    sizes_pool = [4 * 1024, 8 * 1024, 64 * 1024, 256 * 1024]
    live = []
    completed = 0
    start = time.perf_counter()
    while completed < ops:
        size = rng.choice(sizes_pool)
        offset = malloc(size)
        if offset is None or (live and rng.random() < 0.4):
            if live:
                victim_offset, victim_size = live.pop(rng.randrange(len(live)))
                if kind == "tlsf":
                    alloc.free(victim_offset)
                else:
                    alloc.free(victim_offset, victim_size)
                completed += 1
            if offset is None:
                continue
        live.append((offset, size))
        completed += 1
    elapsed = time.perf_counter() - start
    return {
        "allocator": kind,
        "ops": completed,
        "seconds": elapsed,
        "ops_per_second": completed / elapsed if elapsed > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced configuration for CI smoke runs",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_paging.json"),
        help="output JSON path (default: BENCH_paging.json at the repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the victim-index path is slower than the "
        "legacy scan on any paging storm, or if decisions diverged",
    )
    args = parser.parse_args(argv)

    # The 4MB pool holds 512 of the 8KB pages; page counts above that keep
    # the pool under constant eviction pressure, which is the hot path
    # being measured.
    if args.quick:
        fig9 = dict(pages=1200, rescans=1)
        fig10 = dict(pages=800, accesses=1200)
        alloc_ops = 20_000
    else:
        fig9 = dict(pages=4000, rescans=2)
        fig10 = dict(pages=2500, accesses=4000)
        alloc_ops = 100_000

    storms = [
        time_storm("fig9-seq-paging-storm", storm_fig9, "data-aware", **fig9),
        time_storm("fig10-shuffle-storm", storm_fig10, "data-aware", **fig10),
        time_storm("fig9-global-lru", storm_fig9, "lru", **fig9),
        time_storm("fig9-global-mru", storm_fig9, "mru", **fig9),
    ]
    allocators = [
        bench_allocator("tlsf", alloc_ops),
        bench_allocator("slab", alloc_ops),
    ]
    report = {
        "benchmark": "paging-hot-path",
        "quick": args.quick,
        "paging_storms": storms,
        "allocators": allocators,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    for storm in storms:
        print(
            f"{storm['workload']:>24} [{storm['policy']}]: "
            f"legacy {storm['legacy_seconds']:.3f}s, "
            f"indexed {storm['indexed_seconds']:.3f}s "
            f"-> {storm['speedup']:.2f}x "
            f"({'identical' if storm['identical_decisions'] else 'DIVERGED'}, "
            f"{storm['evictions']} evictions)"
        )
    for entry in allocators:
        print(
            f"{entry['allocator']:>24} allocator: "
            f"{entry['ops_per_second']:,.0f} ops/s"
        )
    print(f"wrote {out_path}")

    if args.check:
        failures = []
        for storm in storms:
            if not storm["identical_decisions"]:
                failures.append(f"{storm['workload']}: decisions diverged")
            # The speedup gate applies to the paging-storm microbench (the
            # data-aware hot path); the global LRU/MRU storms are dominated
            # by workload cost, not victim selection, so they only need to
            # stay decision-identical.
            if storm["policy"] == "data-aware" and storm["speedup"] < 1.0:
                failures.append(
                    f"{storm['workload']}: indexed path slower than legacy "
                    f"({storm['speedup']:.2f}x)"
                )
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
