"""Wall-clock performance harnesses (not part of the simulated benchmarks).

Unlike ``benchmarks/test_fig*.py`` — which assert *simulated* seconds —
these harnesses measure real elapsed time of the reproduction's hot paths
(victim selection under paging storms, allocator throughput) and emit
``BENCH_paging.json`` at the repo root, seeding the perf trajectory.

Run directly::

    PYTHONPATH=src python benchmarks/perf/bench_paging.py --quick --check
"""
