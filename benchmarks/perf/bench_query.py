"""Wall-clock harness for the vectorized query data plane.

Runs TPC-H-shaped query storms twice on identically built clusters —
once with the record-at-a-time oracle (``vectorized=False``) and once
with the batched + node-parallel engine — timing the host wall clock and
asserting along the way that both produced bit-identical result rows
(checksummed) and bit-identical simulated per-node clocks.  The batch
engine is purely a wall-clock optimization: any simulated-time delta is
a bug, not a tradeoff.

Results land in ``BENCH_query.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perf/bench_query.py [--quick]
        [--out PATH] [--check]

``--check`` exits non-zero when the vectorized engine is slower than the
oracle on any storm, or when checksums / simulated clocks diverge (the
CI perf-smoke guard).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import MachineProfile, PangeaCluster  # noqa: E402
from repro.query.operators import ScanNode  # noqa: E402
from repro.query.scheduler import QueryScheduler  # noqa: E402
from repro.sim.devices import GB, MB  # noqa: E402
from repro.util import stable_hash  # noqa: E402

NUM_NODES = 4
OBJECT_BYTES = 64


def checksum(rows) -> int:
    """Order-insensitive 64-bit checksum over fully materialized rows."""
    total = 0
    for row in rows:
        total = (total + stable_hash(tuple(sorted(row.items())))) % (1 << 64)
    return total


def _cluster(orders_rows, items_rows):
    cluster = PangeaCluster(
        num_nodes=NUM_NODES, profile=MachineProfile.tiny(pool_bytes=1 * GB)
    )
    orders = cluster.create_set(
        "orders", page_size=1 * MB, object_bytes=OBJECT_BYTES
    )
    items = cluster.create_set("items", page_size=1 * MB, object_bytes=OBJECT_BYTES)
    orders.add_data(
        [{"o_id": i, "cust": i % 97, "prio": i % 5} for i in range(orders_rows)]
    )
    items.add_data(
        [
            {"i_id": i, "i_order": i % max(1, orders_rows), "qty": i % 7 + 1}
            for i in range(items_rows)
        ]
    )
    return cluster


def plan_scan_pipeline():
    return (
        ScanNode("items")
        .filter(lambda r: r["qty"] > 2)
        .map(lambda r: {"i_id": r["i_id"], "weight": r["qty"] * 3})
        .filter(lambda r: r["weight"] % 5 != 0)
    )


def plan_repartition_join():
    return ScanNode("items").join(
        ScanNode("orders"),
        left_key=lambda r: r["i_order"],
        right_key=lambda r: r["o_id"],
        merge=lambda l, r: {**l, "cust": r["cust"], "prio": r["prio"]},
    )


def plan_aggregation():
    return ScanNode("items").aggregate(
        key_fn=lambda r: r["i_id"] % 1024,
        seed_fn=lambda r: r["qty"],
        merge_fn=lambda a, b: a + b,
        final_fn=lambda k, acc: {"bucket": k, "qty": acc},
    )


STORMS = (
    # (name, plan factory, scheduler kwargs, quick scale divisor)
    ("scan-filter-pipeline", plan_scan_pipeline, {}, dict(orders=2_000, items=80_000)),
    (
        "repartition-join-storm",
        plan_repartition_join,
        {"broadcast_threshold": 0},
        dict(orders=50_000, items=50_000),
    ),
    ("aggregation-storm", plan_aggregation, {}, dict(orders=1_000, items=240_000)),
)


def time_storm(name, plan_fn, sched_kw, rows, quick):
    """Run one storm on both engines; wall-clock each and verify results."""
    divisor = 8 if quick else 1
    orders_rows = max(64, rows["orders"] // divisor)
    items_rows = max(256, rows["items"] // divisor)
    out = {
        "workload": name,
        "orders_rows": orders_rows,
        "items_rows": items_rows,
    }
    clocks = {}
    for label, vectorized in (("oracle", False), ("vectorized", True)):
        cluster = _cluster(orders_rows, items_rows)
        scheduler = QueryScheduler(
            cluster, object_bytes=OBJECT_BYTES, vectorized=vectorized, **sched_kw
        )
        start = time.perf_counter()
        result_rows = scheduler.execute(plan_fn())
        out[f"{label}_seconds"] = time.perf_counter() - start
        out[f"{label}_checksum"] = checksum(result_rows)
        out[f"{label}_rows"] = len(result_rows)
        clocks[label] = [node.clock.now for node in cluster.nodes]
        if vectorized:
            metrics = scheduler.metrics
            out["batches_processed"] = metrics.batches_processed
            out["mean_batch_fill"] = metrics.mean_batch_fill
            out["stages_run"] = metrics.stages_run
            out["parallel_stages"] = metrics.parallel_stages
            out["mean_stage_parallelism"] = metrics.mean_stage_parallelism
    out["simulated_seconds"] = max(clocks["oracle"])
    out["identical_checksums"] = out["oracle_checksum"] == out["vectorized_checksum"]
    out["identical_sim_clocks"] = clocks["oracle"] == clocks["vectorized"]
    out["speedup"] = (
        out["oracle_seconds"] / out["vectorized_seconds"]
        if out["vectorized_seconds"] > 0
        else float("inf")
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced row counts for CI smoke runs",
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_query.json"),
        help="output JSON path (default: BENCH_query.json at the repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the vectorized engine is slower than the "
        "oracle on any storm, or if checksums / simulated clocks diverge",
    )
    args = parser.parse_args(argv)

    storms = [
        time_storm(name, plan_fn, sched_kw, rows, args.quick)
        for name, plan_fn, sched_kw, rows in STORMS
    ]
    report = {
        "benchmark": "query-data-plane",
        "quick": args.quick,
        "num_nodes": NUM_NODES,
        "storms": storms,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(report, indent=2) + "\n")

    for storm in storms:
        status = (
            "identical"
            if storm["identical_checksums"] and storm["identical_sim_clocks"]
            else "DIVERGED"
        )
        print(
            f"{storm['workload']:>24}: "
            f"oracle {storm['oracle_seconds']:.3f}s, "
            f"vectorized {storm['vectorized_seconds']:.3f}s "
            f"-> {storm['speedup']:.2f}x "
            f"({status}, {storm['vectorized_rows']} rows, "
            f"{storm['batches_processed']} batches, "
            f"sim {storm['simulated_seconds']:.3f}s)"
        )
    print(f"wrote {out_path}")

    if args.check:
        failures = []
        for storm in storms:
            if not storm["identical_checksums"]:
                failures.append(f"{storm['workload']}: result checksums diverged")
            if not storm["identical_sim_clocks"]:
                failures.append(f"{storm['workload']}: simulated clocks diverged")
            if storm["speedup"] < 1.0:
                failures.append(
                    f"{storm['workload']}: vectorized engine slower than the "
                    f"oracle ({storm['speedup']:.2f}x)"
                )
        if failures:
            print("PERF CHECK FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 1
        print("perf check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
