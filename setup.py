"""Legacy setup shim: enables `pip install -e .` offline (no wheel package)."""

from setuptools import setup

setup()
