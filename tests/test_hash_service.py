"""Tests for the hash service: virtual hash buffers, splits, spills."""

import pytest

from repro import CurrentOperation, MachineProfile, PangeaCluster, ReadingPattern, WritingPattern
from repro.services.hashsvc import VirtualHashBuffer
from repro.sim.devices import MB


def make_cluster(pool=16 * MB):
    return PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=pool))


def make_buffer(cluster, roots=2, page_size=1 * MB, combiner=None, name="h"):
    data = cluster.create_set(name, durability="write-back", page_size=page_size)
    return VirtualHashBuffer(data, num_root_partitions=roots, combiner=combiner)


class TestBasicOperations:
    def test_insert_and_find(self):
        buffer = make_buffer(make_cluster())
        buffer.insert("k", 42, nbytes=50)
        assert buffer.find("k") == 42

    def test_find_missing_returns_none(self):
        buffer = make_buffer(make_cluster())
        assert buffer.find("nope") is None

    def test_set_overwrites(self):
        buffer = make_buffer(make_cluster())
        buffer.insert("k", 1, nbytes=50)
        buffer.set("k", 99, nbytes=50)
        assert buffer.find("k") == 99

    def test_insert_with_combiner_aggregates(self):
        buffer = make_buffer(make_cluster(), combiner=lambda a, b: a + b)
        for _ in range(10):
            buffer.insert("k", 1, nbytes=50)
        assert buffer.find("k") == 10

    def test_insert_without_combiner_keeps_newest(self):
        buffer = make_buffer(make_cluster())
        buffer.insert("k", 1, nbytes=50)
        buffer.insert("k", 2, nbytes=50)
        assert buffer.find("k") == 2

    def test_len_counts_keys(self):
        buffer = make_buffer(make_cluster())
        for i in range(25):
            buffer.insert(i, i, nbytes=50)
        assert len(buffer) == 25

    def test_attributes_inferred(self):
        cluster = make_cluster()
        data = cluster.create_set("h", durability="write-back", page_size=1 * MB)
        VirtualHashBuffer(data, num_root_partitions=2)
        assert data.attributes.writing_pattern is WritingPattern.RANDOM_MUTABLE_WRITE
        assert data.attributes.reading_pattern is ReadingPattern.RANDOM_READ
        assert data.attributes.current_operation is CurrentOperation.READ_AND_WRITE

    def test_items_match_plain_dict(self):
        buffer = make_buffer(make_cluster(), combiner=lambda a, b: a + b)
        expected: dict = {}
        for i in range(500):
            key = i % 37
            buffer.insert(key, 1, nbytes=60)
            expected[key] = expected.get(key, 0) + 1
        assert dict(buffer.items()) == expected

    def test_insert_after_finalize_rejected(self):
        buffer = make_buffer(make_cluster())
        buffer.insert("a", 1, nbytes=50)
        buffer.finalize()
        with pytest.raises(RuntimeError):
            buffer.insert("b", 2, nbytes=50)

    def test_zero_roots_rejected(self):
        cluster = make_cluster()
        data = cluster.create_set("h", durability="write-back", page_size=1 * MB)
        with pytest.raises(ValueError):
            VirtualHashBuffer(data, num_root_partitions=0)


class TestGrowthAndSpill:
    def test_partition_split_on_full_page(self):
        cluster = make_cluster(pool=16 * MB)
        buffer = make_buffer(cluster, roots=1, page_size=1 * MB)
        # ~1MB page fills after ~10000 x 100-byte entries; keep going.
        for i in range(15000):
            buffer.insert(("key", i), i, nbytes=68)
        assert buffer.stats.splits >= 1
        assert len(buffer) == 15000

    def test_split_preserves_lookups(self):
        cluster = make_cluster(pool=16 * MB)
        buffer = make_buffer(cluster, roots=1, page_size=1 * MB)
        for i in range(15000):
            buffer.insert(i, i * 2, nbytes=68)
        for probe in (0, 7777, 14999):
            assert buffer.find(probe) == probe * 2

    def test_spill_when_pool_exhausted(self):
        cluster = make_cluster(pool=4 * MB)
        buffer = make_buffer(cluster, roots=2, page_size=1 * MB)
        for i in range(60000):
            buffer.insert(i, i, nbytes=68)
        assert buffer.stats.spills >= 1
        assert cluster.total_bytes_on_disk() > 0

    def test_streaming_items_after_spill_are_complete(self):
        cluster = make_cluster(pool=4 * MB)
        buffer = make_buffer(cluster, roots=2, page_size=1 * MB,
                             combiner=lambda a, b: a + b)
        for i in range(60000):
            buffer.insert(i % 50000, 1, nbytes=68)
        result = dict(buffer.items())
        assert len(result) == 50000
        assert sum(result.values()) == 60000

    def test_spilled_reload_charges_reread_penalty(self):
        cluster = make_cluster(pool=4 * MB)
        buffer = make_buffer(cluster, roots=2, page_size=1 * MB)
        for i in range(60000):
            buffer.insert(i, i, nbytes=68)
        assert buffer.stats.spills > 0
        before = cluster.simulated_seconds()
        list(buffer.items())
        assert cluster.simulated_seconds() > before
        assert buffer.stats.reloads >= buffer.stats.spills

    def test_finalize_restores_residency_for_lookups(self):
        cluster = make_cluster(pool=8 * MB)
        buffer = make_buffer(cluster, roots=2, page_size=1 * MB,
                             combiner=lambda a, b: a + b)
        for i in range(30000):
            buffer.insert(i % 20000, 1, nbytes=68)
        spilled_before = buffer.stats.spills
        buffer.finalize()
        # After finalize every key is findable again.
        assert buffer.find(0) is not None
        assert buffer.find(19999) is not None
        assert buffer.stats.reloads >= spilled_before

    def test_release_unpins_all_pages(self):
        cluster = make_cluster()
        data = cluster.create_set("h", durability="write-back", page_size=1 * MB)
        buffer = VirtualHashBuffer(data, num_root_partitions=4)
        buffer.insert("k", 1, nbytes=50)
        buffer.release()
        for shard in data.shards.values():
            assert all(not p.pinned for p in shard.pages)
        data.end_lifetime()
        cluster.drop_set("h")

    def test_memory_bounded_by_pool(self):
        cluster = make_cluster(pool=4 * MB)
        buffer = make_buffer(cluster, roots=2, page_size=1 * MB)
        for i in range(60000):
            buffer.insert(i, i, nbytes=68)
        assert cluster.nodes[0].pool.used_bytes <= cluster.nodes[0].pool.capacity


class TestDistributedBuffer:
    def test_roots_spread_over_nodes(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        data = cluster.create_set("h", durability="write-back", page_size=1 * MB)
        buffer = VirtualHashBuffer(data, num_root_partitions=4)
        nodes_used = {root.shard.node.node_id for root in buffer.roots}
        assert nodes_used == {0, 1}

    def test_distributed_aggregation_correct(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        data = cluster.create_set("h", durability="write-back", page_size=1 * MB)
        buffer = VirtualHashBuffer(
            data, num_root_partitions=4, combiner=lambda a, b: a + b
        )
        for i in range(1000):
            buffer.insert(i % 10, 1, nbytes=60)
        result = dict(buffer.items())
        assert all(result[k] == 100 for k in range(10))
