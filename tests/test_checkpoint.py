"""Tests for cluster checkpoint/restore."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.cluster.checkpoint import checkpoint, restore
from repro.sim.devices import MB


def make_cluster(nodes=3):
    return PangeaCluster(
        num_nodes=nodes, profile=MachineProfile.tiny(pool_bytes=16 * MB)
    )


@pytest.fixture
def populated(tmp_path):
    cluster = make_cluster()
    user = cluster.create_set("user", durability="write-through",
                              page_size=1 * MB, object_bytes=100)
    user.add_data([{"i": i} for i in range(500)])
    transient = cluster.create_set("scratch", durability="write-back",
                                   page_size=1 * MB, object_bytes=100)
    transient.add_data(list(range(50)))
    return cluster, str(tmp_path)


class TestCheckpoint:
    def test_manifest_lists_durable_sets_only(self, populated):
        cluster, directory = populated
        manifest = checkpoint(cluster, directory)
        names = [s["name"] for s in manifest["sets"]]
        assert "user" in names
        assert "scratch" not in names

    def test_restore_round_trip(self, populated):
        cluster, directory = populated
        checkpoint(cluster, directory)
        fresh = make_cluster()
        restored = restore(fresh, directory)
        assert restored == ["user"]
        data = fresh.get_set("user")
        assert sorted(r["i"] for r in data.scan_records()) == list(range(500))

    def test_restore_preserves_placement(self, populated):
        cluster, directory = populated
        original = {
            nid: shard.num_objects
            for nid, shard in cluster.get_set("user").shards.items()
        }
        checkpoint(cluster, directory)
        fresh = make_cluster()
        restore(fresh, directory)
        restored = {
            nid: shard.num_objects
            for nid, shard in fresh.get_set("user").shards.items()
        }
        assert restored == original

    def test_restore_preserves_logical_bytes(self, populated):
        cluster, directory = populated
        before = cluster.get_set("user").logical_bytes
        checkpoint(cluster, directory)
        fresh = make_cluster()
        restore(fresh, directory)
        assert fresh.get_set("user").logical_bytes == before

    def test_restore_preserves_partition_scheme(self, tmp_path):
        from repro.placement.partitioner import HashPartitioner, partition_set

        cluster = make_cluster()
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i} for i in range(100)])
        rep = cluster.create_set("rep", page_size=1 * MB, object_bytes=100)
        partitioner = HashPartitioner(lambda r: r["k"], 12, key_name="k")
        partition_set(src, rep, partitioner)
        checkpoint(cluster, str(tmp_path))
        fresh = make_cluster()
        restore(fresh, str(tmp_path))
        assert fresh.get_set("rep").partition_scheme == partitioner.scheme()

    def test_restore_into_smaller_cluster_rejected(self, populated):
        cluster, directory = populated
        checkpoint(cluster, directory)
        small = make_cluster(nodes=2)
        with pytest.raises(ValueError):
            restore(small, directory)

    def test_restored_data_is_durable(self, populated):
        """Every restored page is persisted (write-through semantics)."""
        cluster, directory = populated
        checkpoint(cluster, directory)
        fresh = make_cluster()
        restore(fresh, directory)
        data = fresh.get_set("user")
        for shard in data.shards.values():
            for page in shard.pages:
                assert page.on_disk

    def test_spilled_durable_pages_checkpointed(self, tmp_path):
        """Pages whose memory copy was evicted still reach the checkpoint."""
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("big", durability="write-through",
                                  page_size=1 * MB, object_bytes=256 * 1024)
        data.add_data(list(range(32)))  # 8MB over a 2MB pool
        checkpoint(cluster, str(tmp_path))
        fresh = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        restore(fresh, str(tmp_path))
        assert sorted(fresh.get_set("big").scan_records()) == list(range(32))
