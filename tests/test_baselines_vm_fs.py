"""Tests for the OS virtual memory and OS file system baselines."""

import pytest

from repro.baselines.host import BaselineHost
from repro.baselines.os_fs import OsFileSystem
from repro.baselines.os_vm import OsVirtualMemory
from repro.sim.devices import GB, MB
from repro.sim.profiles import MachineProfile


@pytest.fixture
def host():
    return BaselineHost(MachineProfile.m3_xlarge())


class TestOsVirtualMemory:
    def test_in_memory_scan_no_paging(self, host):
        vm = OsVirtualMemory(host, memory_bytes=1 * GB)
        vm.malloc_objects(1000, 1000)
        vm.sequential_scan()
        assert vm.stats.bytes_paged_out == 0
        assert vm.stats.bytes_paged_in == 0

    def test_overflow_triggers_swap(self, host):
        vm = OsVirtualMemory(host, memory_bytes=1 * MB)
        vm.malloc_objects(2000, 1000)  # 2MB > 1MB
        assert vm.stats.bytes_paged_out > 0

    def test_scan_beyond_memory_pages_every_pass(self, host):
        vm = OsVirtualMemory(host, memory_bytes=1 * MB)
        vm.malloc_objects(2000, 1000)
        before = vm.stats.bytes_paged_in
        vm.sequential_scan()
        vm.sequential_scan()
        assert vm.stats.bytes_paged_in > before

    def test_page_stealing_writes_more_than_overflow(self, host):
        """The paper measures 2.5x Pangea's page-out volume."""
        vm = OsVirtualMemory(host, memory_bytes=10 * MB, steal_factor=2.5)
        vm.malloc_objects(12, 1 * MB)
        vm.stats.reset()
        vm.sequential_scan()
        overflow = vm.overflow_bytes
        assert vm.stats.bytes_paged_out >= overflow * 2

    def test_free_all_charges_per_object(self, host):
        vm = OsVirtualMemory(host, memory_bytes=1 * GB)
        vm.malloc_objects(1_000_000, 100)
        before = host.now
        vm.free_all(1_000_000, 100)
        assert host.now - before >= 1_000_000 * vm.free_seconds / host.cpu.cores
        assert vm.data_bytes == 0

    def test_random_touch_faults_proportionally(self, host):
        vm = OsVirtualMemory(host, memory_bytes=1 * MB)
        vm.malloc_objects(4000, 1000)  # 4MB data, 1MB memory
        before = vm.stats.bytes_paged_in
        vm.random_touch(1000, 1000)
        assert vm.stats.bytes_paged_in > before

    def test_invalid_args(self, host):
        vm = OsVirtualMemory(host)
        with pytest.raises(ValueError):
            vm.malloc_objects(-1, 10)
        with pytest.raises(ValueError):
            vm.malloc_objects(1, 0)


class TestOsFileSystem:
    def test_write_within_cache_defers_disk(self, host):
        fs = OsFileSystem(host, cache_bytes=64 * MB)
        fs.write("f", 10 * MB)
        assert fs.stats.disk_bytes_written == 0

    def test_flush_forces_writeback(self, host):
        fs = OsFileSystem(host, cache_bytes=64 * MB)
        fs.write("f", 10 * MB)
        fs.flush("f")
        assert fs.stats.disk_bytes_written == 10 * MB

    def test_cache_overflow_spills(self, host):
        fs = OsFileSystem(host, cache_bytes=8 * MB)
        fs.write("f", 20 * MB)
        assert fs.stats.disk_bytes_written > 0

    def test_cached_read_avoids_disk(self, host):
        fs = OsFileSystem(host, cache_bytes=64 * MB)
        fs.write("f", 10 * MB)
        fs.read("f", 10 * MB)
        assert fs.stats.disk_bytes_read == 0

    def test_evicted_read_hits_disk(self, host):
        fs = OsFileSystem(host, cache_bytes=8 * MB)
        fs.write("old", 8 * MB)
        fs.flush("old")
        fs.write("new", 8 * MB)  # evicts "old"
        fs.read("old", 8 * MB)
        assert fs.stats.disk_bytes_read > 0

    def test_lru_eviction_order(self, host):
        fs = OsFileSystem(host, cache_bytes=10 * MB)
        fs.write("a", 5 * MB)
        fs.write("b", 5 * MB)
        fs.read("a", 5 * MB)  # touch a; b becomes LRU
        fs.write("c", 5 * MB)  # evicts from b first
        fs.stats.reset()
        fs.read("a", 5 * MB)
        hit_a = fs.stats.disk_bytes_read == 0
        fs.stats.reset()
        fs.read("b", 5 * MB)
        missed_b = fs.stats.disk_bytes_read > 0
        assert hit_a and missed_b

    def test_read_past_eof_rejected(self, host):
        fs = OsFileSystem(host, cache_bytes=8 * MB)
        fs.write("f", 1 * MB)
        with pytest.raises(ValueError):
            fs.read("f", 2 * MB)

    def test_every_access_pays_kernel_copy(self, host):
        fs = OsFileSystem(host, cache_bytes=64 * MB)
        before = host.now
        fs.write("f", 8 * MB)
        fs.read("f", 8 * MB)
        elapsed = host.now - before
        min_copies = 2 * (8 * MB) / host.cpu.memcpy_bandwidth / host.cpu.cores
        assert elapsed >= min_copies

    def test_delete(self, host):
        fs = OsFileSystem(host, cache_bytes=8 * MB)
        fs.write("f", 1 * MB)
        fs.delete("f")
        assert fs.file_bytes("f") == 0
