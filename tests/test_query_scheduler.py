"""Tests for the query scheduler: strategies, join types, aggregation."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.query.operators import (
    FilterNode,
    JoinNode,
    MapNode,
    ScanNode,
    peel_pipeline,
)
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    c = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=64 * MB))
    orders = c.create_set("orders", page_size=1 * MB, object_bytes=64)
    items = c.create_set("items", page_size=1 * MB, object_bytes=64)
    orders.add_data([{"o_id": i, "cust": i % 7} for i in range(100)])
    items.add_data(
        [{"i_id": i, "i_order": i % 100, "qty": i % 5 + 1} for i in range(400)]
    )
    return c


def join_plan():
    return ScanNode("items").join(
        ScanNode("orders"),
        left_key=lambda r: r["i_order"],
        right_key=lambda r: r["o_id"],
        merge=lambda l, r: {**l, **r},
        left_key_name="i_order",
        right_key_name="o_id",
    )


def add_replicas(cluster):
    orders, items = cluster.get_set("orders"), cluster.get_set("items")
    o_rep = cluster.create_set("orders_by_id", page_size=1 * MB, object_bytes=64)
    partition_set(orders, o_rep, HashPartitioner(lambda r: r["o_id"], 12, key_name="o_id"))
    i_rep = cluster.create_set("items_by_order", page_size=1 * MB, object_bytes=64)
    partition_set(items, i_rep, HashPartitioner(lambda r: r["i_order"], 12, key_name="i_order"))
    register_replica(orders, o_rep, object_id_fn=lambda r: r["o_id"])
    register_replica(items, i_rep, object_id_fn=lambda r: r["i_id"])


class TestPeelPipeline:
    def test_peels_filter_map_chain(self):
        plan = ScanNode("x").filter(lambda r: True).map(lambda r: r)
        base, steps = peel_pipeline(plan)
        assert isinstance(base, ScanNode)
        assert [k for k, _ in steps] == ["filter", "map"]

    def test_order_preserved(self):
        plan = ScanNode("x").map(lambda r: r).filter(lambda r: True)
        _base, steps = peel_pipeline(plan)
        assert [k for k, _ in steps] == ["map", "filter"]

    def test_join_is_a_base(self):
        plan = join_plan().filter(lambda r: True)
        base, steps = peel_pipeline(plan)
        assert isinstance(base, JoinNode)
        assert len(steps) == 1


class TestScanAndPipeline:
    def test_scan_returns_everything(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(ScanNode("orders"))
        assert len(rows) == 100

    def test_filter_pushes_into_pipeline(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(ScanNode("orders").filter(lambda r: r["cust"] == 0))
        assert all(r["cust"] == 0 for r in rows)
        assert len(rows) == 15

    def test_map_transforms(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(ScanNode("orders").map(lambda r: {"double": r["o_id"] * 2}))
        assert sorted(r["double"] for r in rows) == [i * 2 for i in range(100)]

    def test_flat_map_expands(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(
            ScanNode("orders").flat_map(lambda r: [r, r] if r["o_id"] < 5 else [])
        )
        assert len(rows) == 10


class TestJoinStrategies:
    def test_broadcast_join_when_small(self, cluster):
        sched = QueryScheduler(cluster, broadcast_threshold=1 * MB, object_bytes=64)
        rows = sched.execute(join_plan())
        assert len(rows) == 400
        assert sched.metrics.broadcast_joins == 1
        assert sched.metrics.repartition_joins == 0

    def test_repartition_join_when_large(self, cluster):
        sched = QueryScheduler(cluster, broadcast_threshold=0, object_bytes=64)
        rows = sched.execute(join_plan())
        assert len(rows) == 400
        assert sched.metrics.repartition_joins == 1
        assert sched.metrics.shuffled_bytes > 0

    def test_copartitioned_join_with_replicas(self, cluster):
        add_replicas(cluster)
        sched = QueryScheduler(cluster, broadcast_threshold=0, object_bytes=64)
        rows = sched.execute(join_plan())
        assert len(rows) == 400
        assert sched.metrics.copartitioned_joins == 1
        assert sched.metrics.repartition_joins == 0
        assert sched.metrics.shuffled_bytes == 0

    def test_all_strategies_agree(self, cluster):
        def run(threshold, replicas):
            if replicas:
                add_replicas(cluster)
            sched = QueryScheduler(cluster, broadcast_threshold=threshold, object_bytes=64)
            rows = sched.execute(join_plan())
            return sorted((r["i_id"], r["cust"]) for r in rows)
        broadcast = run(1 * MB, replicas=False)
        repartition = run(0, replicas=False)
        copartition = run(0, replicas=True)
        assert broadcast == repartition == copartition

    def test_semi_join(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = ScanNode("orders").join(
            ScanNode("items").filter(lambda r: r["qty"] == 5),
            left_key=lambda r: r["o_id"],
            right_key=lambda r: r["i_order"],
            merge=lambda l, r: l,
            how="left_semi",
        )
        rows = sched.execute(plan)
        matching = {i % 100 for i in range(400) if i % 5 + 1 == 5}
        assert sorted(r["o_id"] for r in rows) == sorted(matching)

    def test_anti_join(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = ScanNode("orders").join(
            ScanNode("items").filter(lambda r: r["qty"] == 5),
            left_key=lambda r: r["o_id"],
            right_key=lambda r: r["i_order"],
            merge=lambda l, r: l,
            how="left_anti",
        )
        rows = sched.execute(plan)
        matching = {i % 100 for i in range(400) if i % 5 + 1 == 5}
        assert sorted(r["o_id"] for r in rows) == sorted(set(range(100)) - matching)

    def test_left_outer_join(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = ScanNode("orders").join(
            ScanNode("items").filter(lambda r: r["i_order"] < 50),
            left_key=lambda r: r["o_id"],
            right_key=lambda r: r["i_order"],
            merge=lambda l, r: {"o_id": l["o_id"], "matched": r is not None},
            how="left_outer",
        )
        rows = sched.execute(plan)
        matched = [r for r in rows if r["matched"]]
        unmatched = [r for r in rows if not r["matched"]]
        assert len(matched) == 200  # 4 items per order for 50 orders
        assert sorted(r["o_id"] for r in unmatched) == list(range(50, 100))

    def test_invalid_join_type_rejected(self):
        with pytest.raises(ValueError):
            ScanNode("a").join(
                ScanNode("b"), left_key=id, right_key=id, merge=lambda l, r: l,
                how="full_outer",
            )


class TestAggregation:
    def test_two_stage_aggregation(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = ScanNode("items").aggregate(
            key_fn=lambda r: r["qty"],
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, count: {"qty": key, "count": count},
        )
        rows = sched.execute(plan)
        assert sorted(r["qty"] for r in rows) == [1, 2, 3, 4, 5]
        assert all(r["count"] == 80 for r in rows)
        assert sched.metrics.local_agg_stages == 1

    def test_aggregate_on_join_output(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = join_plan().aggregate(
            key_fn=lambda r: r["cust"],
            seed_fn=lambda r: r["qty"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {"cust": key, "total": total},
        )
        rows = sched.execute(plan)
        expected = {}
        for i in range(400):
            cust = (i % 100) % 7
            expected[cust] = expected.get(cust, 0) + i % 5 + 1
        assert {r["cust"]: r["total"] for r in rows} == expected

    def test_empty_input_aggregation(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        plan = (
            ScanNode("orders")
            .filter(lambda r: False)
            .aggregate(
                key_fn=lambda r: 0,
                seed_fn=lambda r: 1,
                merge_fn=lambda a, b: a + b,
                final_fn=lambda k, v: {"count": v},
            )
        )
        assert sched.execute(plan) == []


class TestOrderingAndLimits:
    def test_order_by(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(ScanNode("orders").order_by(lambda r: -r["o_id"]))
        assert rows[0]["o_id"] == 99
        assert rows[-1]["o_id"] == 0

    def test_limit(self, cluster):
        sched = QueryScheduler(cluster, object_bytes=64)
        rows = sched.execute(
            ScanNode("orders").order_by(lambda r: r["o_id"]).limit(7)
        )
        assert [r["o_id"] for r in rows] == list(range(7))

    def test_unknown_plan_node_rejected(self, cluster):
        sched = QueryScheduler(cluster)

        class Bogus:
            pass

        with pytest.raises(TypeError):
            sched.execute(Bogus())
