"""Tests for dbgen-compatible .tbl export/import."""

import os

import pytest

from repro.tpch.datagen import TpchGenerator
from repro.tpch.tbl_io import TBL_COLUMNS, read_tbl, write_tbl


@pytest.fixture(scope="module")
def tables():
    return TpchGenerator(scale=0.001, seed=5).all_tables()


class TestRoundTrip:
    def test_full_round_trip(self, tables, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("tbl"))
        paths = write_tbl(tables, directory)
        assert set(paths) == set(tables)
        back = read_tbl(directory)
        for name, rows in tables.items():
            assert len(back[name]) == len(rows), name

    def test_values_survive_round_trip(self, tables, tmp_path):
        write_tbl({"orders": tables["orders"]}, str(tmp_path))
        back = read_tbl(str(tmp_path), ["orders"])["orders"]
        for original, restored in zip(tables["orders"], back):
            assert restored["o_orderkey"] == original["o_orderkey"]
            assert restored["o_orderdate"] == original["o_orderdate"]  # date ordinal
            assert restored["o_totalprice"] == pytest.approx(
                original["o_totalprice"], abs=0.01
            )
            assert restored["o_comment"] == original["o_comment"]

    def test_lineitem_dates_iso_on_disk(self, tables, tmp_path):
        write_tbl({"lineitem": tables["lineitem"][:5]}, str(tmp_path))
        with open(os.path.join(str(tmp_path), "lineitem.tbl")) as handle:
            line = handle.readline()
        fields = line.rstrip("\n").split("|")
        shipdate = fields[10]
        assert len(shipdate) == 10 and shipdate[4] == "-" and shipdate[7] == "-"

    def test_trailing_delimiter_dbgen_style(self, tables, tmp_path):
        write_tbl({"region": tables["region"]}, str(tmp_path))
        with open(os.path.join(str(tmp_path), "region.tbl")) as handle:
            assert handle.readline().rstrip("\n").endswith("|")


class TestErrors:
    def test_unknown_table_rejected_on_write(self, tmp_path):
        with pytest.raises(ValueError):
            write_tbl({"widgets": []}, str(tmp_path))

    def test_unknown_table_rejected_on_read(self, tmp_path):
        with pytest.raises(ValueError):
            read_tbl(str(tmp_path), ["widgets"])

    def test_malformed_line_rejected(self, tmp_path):
        path = os.path.join(str(tmp_path), "region.tbl")
        with open(path, "w") as handle:
            handle.write("1|too|many|fields|here|\n")
        with pytest.raises(ValueError):
            read_tbl(str(tmp_path), ["region"])

    def test_missing_file_skipped(self, tmp_path):
        assert read_tbl(str(tmp_path), ["region"]) == {}

    def test_column_spec_covers_all_tables(self, tables):
        assert set(TBL_COLUMNS) == set(tables)


class TestQueriesOverImportedData:
    def test_reference_queries_agree_after_round_trip(self, tables, tmp_path):
        """The oracle gives identical answers on round-tripped data."""
        from repro.tpch import REFERENCE_QUERIES

        write_tbl(tables, str(tmp_path))
        back = read_tbl(str(tmp_path))
        for name in ("Q01", "Q06", "Q12"):
            got = REFERENCE_QUERIES[name](back)
            want = REFERENCE_QUERIES[name](tables)
            assert got == want, name
