"""Tests for replication groups and colliding-object handling."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import (
    expected_colliding_objects,
    expected_unsafe_ratio,
    register_replica,
)
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=4, profile=MachineProfile.tiny(pool_bytes=32 * MB))


def build_two_replicas(cluster, rows=400):
    src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
    src.add_data([{"a": i, "b": (i * 131) % 997, "id": i} for i in range(rows)])
    rep_a = cluster.create_set("rep_a", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_a, HashPartitioner(lambda r: r["a"], 16, key_name="a"))
    rep_b = cluster.create_set("rep_b", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_b, HashPartitioner(lambda r: r["b"], 16, key_name="b"))
    return src, rep_a, rep_b


class TestEstimators:
    def test_expected_colliding_two_replicas(self):
        assert expected_colliding_objects(1000, 10) == pytest.approx(100.0)

    def test_expected_colliding_declines_with_nodes(self):
        assert expected_colliding_objects(1000, 30) < expected_colliding_objects(1000, 10)

    def test_expected_colliding_three_replicas(self):
        assert expected_colliding_objects(1000, 10, num_replicas=3) == pytest.approx(10.0)

    def test_expected_unsafe_ratio_formula(self):
        # k=10, r=1: 1 - (10*9)/100 = 0.1
        assert expected_unsafe_ratio(10, 1) == pytest.approx(0.1)

    def test_unsafe_ratio_is_one_when_failures_exceed_nodes(self):
        assert expected_unsafe_ratio(3, 3) == 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_colliding_objects(10, 0)


class TestRegisterReplica:
    def test_group_contains_members(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        assert rep_a in group.members
        assert rep_b in group.members
        assert group.group_id is not None

    def test_members_share_group_id(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        assert rep_a.replica_group_id == rep_b.replica_group_id == group.group_id
        assert cluster.manager.replicas_of("rep_a") == group.members

    def test_extending_existing_group(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster)
        register_replica(src, rep_a, object_id_fn=lambda r: r["id"])
        group = register_replica(src, rep_b, object_id_fn=lambda r: r["id"])
        assert len(group.members) == 3

    def test_colliding_objects_detected(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        # Verify against a direct computation.
        def nodes_of(dataset):
            placement = {}
            for node_id, shard in dataset.shards.items():
                for page in shard.pages:
                    for record in page.records:
                        placement.setdefault(record["id"], set()).add(node_id)
            return placement
        a, b = nodes_of(rep_a), nodes_of(rep_b)
        expected = {
            oid for oid in a if len(a[oid] | b.get(oid, set())) == 1
        }
        assert group.colliding_ids == expected

    def test_colliding_set_created_and_placed_off_home(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        if not group.colliding_ids:
            pytest.skip("no colliding objects at this scale")
        safety = group.colliding_set
        assert safety is not None
        assert safety.num_objects == len(group.colliding_ids)
        # Each safety copy must live on a node other than the object's home.
        for node_id, shard in safety.shards.items():
            for page in shard.pages:
                for record in page.records:
                    assert group.colliding_home[record["id"]] != node_id

    def test_colliding_count_in_expected_range(self, cluster):
        src, rep_a, rep_b = build_two_replicas(cluster, rows=2000)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        expected = expected_colliding_objects(2000, 4)
        # Hash placement is not perfectly independent; allow a wide band.
        assert 0.2 * expected <= group.num_colliding <= 3.0 * expected
