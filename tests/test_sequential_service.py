"""Tests for the sequential read/write service."""

import pytest

from repro import CurrentOperation, MachineProfile, PangeaCluster, ReadingPattern, WritingPattern
from repro.services.sequential import (
    PageIterator,
    SequentialWriter,
    make_page_iterators,
    make_shard_iterators,
)
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB))


class TestSequentialWriter:
    def test_writes_land_in_pages(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        with SequentialWriter(data.shards[0]) as writer:
            for i in range(10):
                writer.add_object(i, nbytes=100)
        assert data.num_objects == 10

    def test_attributes_inferred_on_attach(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        with SequentialWriter(data.shards[0]):
            assert data.attributes.writing_pattern is WritingPattern.SEQUENTIAL_WRITE
            assert data.attributes.current_operation is CurrentOperation.WRITE
        assert data.attributes.current_operation is CurrentOperation.NONE

    def test_unattached_writer_rejects_writes(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        writer = SequentialWriter(data.shards[0])
        with pytest.raises(RuntimeError):
            writer.add_object("x", nbytes=10)

    def test_page_rollover(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        with SequentialWriter(data.shards[0]) as writer:
            writer.add_data(["x"] * 3, nbytes_each=600 * 1024)
        shard = data.shards[0]
        assert len(shard.pages) == 3
        assert shard.pages[0].sealed
        assert not shard.pages[-1].pinned

    def test_default_object_bytes(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0], object_bytes=250)
        with SequentialWriter(data.shards[0]) as writer:
            writer.add_object("r")
        assert data.logical_bytes == 250

    def test_flush_seals_partial_page(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        with SequentialWriter(data.shards[0]) as writer:
            writer.add_object("x", nbytes=10)
            writer.flush()
        assert data.shards[0].pages[0].sealed

    def test_writing_charges_time(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        before = cluster.nodes[0].clock.now
        with SequentialWriter(data.shards[0]) as writer:
            writer.add_data(["x"] * 1000, nbytes_each=100)
        assert cluster.nodes[0].clock.now > before


class TestPageIterators:
    def test_single_iterator_sees_all_pages(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(50)))
        records = []
        for iterator in make_page_iterators(data, 1):
            for page in iterator:
                records.extend(page.records)
        assert sorted(records) == list(range(50))

    def test_concurrent_iterators_partition_work(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=300 * 1024,
                                  nodes=[0])
        data.add_data(["r"] * 12)  # several pages
        iterators = make_page_iterators(data, 3)
        seen = [sum(p.num_objects for p in it) for it in iterators]
        assert sum(seen) == 12

    def test_read_attributes_inferred(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(10)))
        iterators = make_page_iterators(data, 2)
        assert data.attributes.reading_pattern is ReadingPattern.SEQUENTIAL_READ
        assert data.attributes.current_operation is CurrentOperation.READ
        for iterator in iterators:
            for _page in iterator:
                pass
        assert data.attributes.current_operation is CurrentOperation.NONE

    def test_pages_unpinned_after_iteration(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(20)))
        for iterator in make_page_iterators(data, 1):
            for _page in iterator:
                pass
        for shard in data.shards.values():
            assert all(not p.pinned for p in shard.pages)

    def test_iterator_close_releases_pin(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100, nodes=[0])
        data.add_data(list(range(10)))
        iterator = make_page_iterators(data, 1)[0]
        page = iterator.next()
        assert page.pinned
        iterator.close()
        assert not page.pinned

    def test_iteration_reloads_spilled_pages(self, cluster):
        data = cluster.create_set(
            "s", durability="write-back", page_size=1 * MB, object_bytes=256 * 1024,
            nodes=[0],
        )
        data.add_data(list(range(64)))  # 16MB logical vs 8MB pool
        assert cluster.nodes[0].pool.stats.evictions > 0
        seen = sorted(data.scan_records())
        assert seen == list(range(64))
        assert cluster.nodes[0].pool.stats.pageins > 0

    def test_shard_iterators_scope_to_one_node(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(40)))
        shard0 = data.shards[0]
        records = []
        for iterator in make_shard_iterators(shard0, 2):
            for page in iterator:
                records.extend(page.records)
        assert len(records) == shard0.num_objects

    def test_zero_iterators_rejected(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB)
        with pytest.raises(ValueError):
            make_page_iterators(data, 0)
