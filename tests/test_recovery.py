"""Tests for node-failure recovery from heterogeneous replicas."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.recovery import recover_node
from repro.placement.replication import register_replica
from repro.sim.devices import MB


def build(num_nodes=4, rows=800):
    cluster = PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=32 * MB)
    )
    src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
    src.add_data([{"a": i, "b": (i * 131) % 997, "id": i} for i in range(rows)])
    rep_a = cluster.create_set("rep_a", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_a, HashPartitioner(lambda r: r["a"], 16, key_name="a"))
    rep_b = cluster.create_set("rep_b", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_b, HashPartitioner(lambda r: r["b"], 16, key_name="b"))
    group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
    return cluster, group, src, rep_a, rep_b


def surviving_ids(dataset, failed_node):
    ids = set()
    for node_id, shard in dataset.shards.items():
        if node_id == failed_node:
            continue
        for page in shard.pages:
            records = page.records
            if not records and page.on_disk:
                records = shard.file.peek_records(page.page_id)
            for record in records:
                ids.add(record["id"])
    return ids


class TestRecovery:
    def test_all_replicas_complete_after_recovery(self):
        cluster, group, src, rep_a, rep_b = build()
        report = recover_node(cluster, group, failed_node=1)
        everything = set(range(800))
        assert surviving_ids(rep_a, 1) == everything
        assert surviving_ids(rep_b, 1) == everything
        assert report.objects_recovered > 0

    def test_recovery_latency_positive_and_reported(self):
        cluster, group, *_ = build()
        report = recover_node(cluster, group, failed_node=0)
        assert report.seconds > 0
        assert report.failed_node == 0

    def test_colliding_objects_recovered_from_safety_set(self):
        cluster, group, src, rep_a, rep_b = build()
        lost_colliding = {
            oid for oid, home in group.colliding_home.items() if home == 2
        }
        report = recover_node(cluster, group, failed_node=2)
        assert report.colliding_recovered == len(lost_colliding)
        assert surviving_ids(rep_a, 2) == set(range(800))

    def test_recovered_data_lands_on_survivors_only(self):
        cluster, group, src, rep_a, rep_b = build()
        recover_node(cluster, group, failed_node=3)
        # No new pages were created on the failed node.
        failed_pages_a = len(rep_a.shards[3].pages)
        recover_node  # noqa: B018 - silence lint on unused reference
        assert all(
            record["id"] in set(range(800))
            for page in rep_a.shards[3].pages
            for record in page.records
        )
        assert failed_pages_a == len(rep_a.shards[3].pages)

    def test_recovery_charges_network(self):
        cluster, group, *_ = build()
        before = sum(n.network.stats.bytes_sent for n in cluster.nodes)
        recover_node(cluster, group, failed_node=1)
        after = sum(n.network.stats.bytes_sent for n in cluster.nodes)
        assert after > before

    def test_single_member_group_cannot_recover(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        src = cluster.create_set("only", page_size=1 * MB, object_bytes=100)
        src.add_data([{"id": i} for i in range(10)])
        from repro.placement.replication import ReplicationGroup

        group = ReplicationGroup(members=[src], object_id_fn=lambda r: r["id"])
        with pytest.raises(ValueError):
            recover_node(cluster, group, failed_node=0)

    def test_missing_object_id_fn_rejected(self):
        cluster, group, *_ = build()
        group.object_id_fn = None
        with pytest.raises(ValueError):
            recover_node(cluster, group, failed_node=0)

    def test_larger_cluster_fewer_colliding(self):
        """The paper's trend: colliding ratio declines with node count."""
        _c4, group4, *_ = build(num_nodes=4)
        _c8, group8, *_ = build(num_nodes=8)
        ratio4 = group4.num_colliding / 800
        ratio8 = group8.num_colliding / 800
        assert ratio8 < ratio4


class TestRecoveryEdgeCases:
    def test_recover_node_twice_is_idempotent(self):
        cluster, group, src, rep_a, rep_b = build()
        first = recover_node(cluster, group, failed_node=1)
        assert first.objects_recovered > 0
        assert 1 in group.recovered_nodes
        counts_after_first = {
            name: cluster.get_set(name).num_objects for name in ("rep_a", "rep_b")
        }
        second = recover_node(cluster, group, failed_node=1)
        # The second call is a no-op: nothing re-dispatched, no duplicates.
        assert second.objects_recovered == 0
        assert second.seconds == 0
        for name, count in counts_after_first.items():
            assert cluster.get_set(name).num_objects == count
        assert surviving_ids(rep_a, 1) == set(range(800))

    def test_two_randomly_dispatched_members_recover(self):
        """Neither member has a partitioner: recovery must fall back to the
        lost-id metadata scan for both directions."""
        cluster = PangeaCluster(
            num_nodes=4, profile=MachineProfile.tiny(pool_bytes=32 * MB)
        )
        records = [{"id": i, "v": i * 7} for i in range(400)]
        rep_a = cluster.create_set("ra", page_size=1 * MB, object_bytes=100)
        rep_a.add_data(records)
        rep_b = cluster.create_set("rb", page_size=1 * MB, object_bytes=100)
        rep_b.add_data(records)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        assert rep_a.partitioner is None and rep_b.partitioner is None
        report = recover_node(cluster, group, failed_node=2)
        assert report.objects_recovered > 0
        assert surviving_ids(rep_a, 2) == set(range(400))
        assert surviving_ids(rep_b, 2) == set(range(400))

    def test_recovery_near_full_pool_does_not_deadlock(self):
        """Re-dispatched writes land while the survivors' pools are nearly
        full; bounded eviction must keep making room instead of
        livelocking or raising."""
        cluster = PangeaCluster(
            num_nodes=3, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        records = [{"id": i, "v": i} for i in range(900)]
        rep_a = cluster.create_set("ra", page_size=1 * MB, object_bytes=1000)
        rep_a.add_data(records)
        rep_b = cluster.create_set("rb", page_size=1 * MB, object_bytes=1000)
        rep_b.add_data(records)
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
        for node in cluster.nodes:
            assert node.pool.used_bytes > 0
        report = recover_node(cluster, group, failed_node=0)
        assert report.objects_recovered > 0
        assert surviving_ids(rep_a, 0) == set(range(900))
        for node in cluster.alive_nodes():
            node.pool.check_invariants()
