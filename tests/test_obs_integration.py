"""Integration tests: per-set metrics reconcile with the pool counters
across a realistic traced workload, and the CLI surfaces everything."""

import json

from repro import MachineProfile, PangeaCluster
from repro.__main__ import main
from repro.ml.kmeans import PangeaKMeans, generate_points
from repro.obs.exporters import JSONL_SCHEMA
from repro.obs.report import run_smoke
from repro.services.shuffle import ShuffleService
from repro.sim.devices import KB, MB
from repro.sim.metrics import collect, format_set_table, reconcile


def assert_reconciles(cluster):
    """Per-node per-set sums must equal the PoolStats totals exactly."""
    for node in cluster.nodes:
        sets = node.paging.set_metrics().values()
        assert sum(s.evictions for s in sets) == node.pool.stats.evictions
        assert sum(s.flushed_pages for s in sets) == node.pool.stats.pageouts
        assert sum(s.flushed_bytes for s in sets) == node.pool.stats.bytes_paged_out
        assert sum(s.misses for s in sets) == node.pool.stats.pageins
        assert sum(s.bytes_paged_in for s in sets) == node.pool.stats.bytes_paged_in
    assert reconcile(collect(cluster)) == []


class TestKmeansAndShuffleReconciliation:
    def test_seeded_kmeans_plus_shuffle_reconciles(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        tracer = cluster.enable_tracing()

        km = PangeaKMeans(cluster, k=3, dims=4, page_size=512 * KB)
        points = generate_points(400, dims=4, num_clusters=3)
        data = km.load_points(points, represent=1.0)
        km.run(data, represent=1.0, iterations=2)

        shuffle = ShuffleService(cluster, "sh", num_partitions=2,
                                 page_size=512 * KB, small_page_size=64 * KB,
                                 object_bytes=32 * KB)
        for i in range(128):  # 4MB of shuffle data under a 4MB pool
            worker = i % 2
            shuffle.buffer_for(worker, i % 2,
                               worker_node=cluster.nodes[worker]).add_object(i)
        shuffle.finish_writing()

        assert_reconciles(cluster)
        assert len(tracer) > 0

    def test_reconciliation_survives_set_drop(self):
        """Dropped sets fold into the retired accumulator; totals still hold."""
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        data.add_data(list(range(64)))  # 4MB over a 2MB pool
        list(data.scan_records())
        shuffle = ShuffleService(cluster, "sh", num_partitions=1,
                                 page_size=512 * KB, small_page_size=64 * KB,
                                 object_bytes=32 * KB)
        for i in range(48):
            shuffle.buffer_for(0, 0).add_object(i)
        shuffle.finish_writing()
        evictions_before = cluster.nodes[0].pool.stats.evictions
        assert evictions_before > 0
        shuffle.drop()  # unregisters the partition shards
        retired = cluster.nodes[0].paging.retired_set_metrics
        assert "sh_p0" in retired
        assert_reconciles(cluster)

    def test_per_set_counters_match_activity(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        data.add_data(list(range(64)))  # 4MB over a 2MB pool
        for _ in range(2):
            list(data.scan_records())
        sets = cluster.nodes[0].paging.set_metrics()
        s = sets["s"]
        assert s.created_pages == 8
        assert s.pins > 0
        assert s.misses > 0  # the second scan must page data back in
        assert 0.0 <= s.hit_ratio < 1.0
        assert s.evictions > 0
        assert s.strategy in ("lru", "mru")
        # The data-aware policy recorded cost samples for its victim picks.
        assert s.cost_samples > 0
        assert s.mean_eviction_cost > 0.0
        assert 0.0 <= s.mean_preuse <= 1.0

    def test_reset_set_metrics(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        data.add_data(list(range(64)))
        list(data.scan_records())
        cluster.nodes[0].reset_stats()
        sets = cluster.nodes[0].paging.set_metrics()
        assert sets["s"].pins == 0
        assert sets["s"].evictions == 0
        assert_reconciles(cluster)


class TestSmokeReport:
    def test_smoke_reconciles_and_traces(self):
        report = run_smoke(nodes=2, pool_mb=4)
        assert report.mismatches == []
        assert report.records_scanned == 2 * 4 * 32 * 2  # two full scans
        assert report.tracer is not None
        assert len(report.tracer) > 0
        totals = report.metrics.set_totals()
        assert totals["smoke_scan"].misses > 0

    def test_smoke_without_tracing(self):
        report = run_smoke(nodes=1, pool_mb=4, trace=False)
        assert report.tracer is None
        assert report.mismatches == []

    def test_set_table_renders_all_sets(self):
        report = run_smoke(nodes=1, pool_mb=4, trace=False)
        table = format_set_table(report.metrics)
        assert "smoke_scan" in table
        assert "smoke_sh_p0" in table


class TestObservabilityCli:
    def test_metrics_command_reconciles(self, capsys):
        assert main(["metrics", "--nodes", "1", "--pool-mb", "4"]) == 0
        out = capsys.readouterr().out
        assert "reconcile exactly" in out
        assert "smoke_scan" in out

    def test_trace_command_chrome(self, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--nodes", "1", "--pool-mb", "4",
                     "--out", str(out_path)]) == 0
        document = json.loads(out_path.read_text())
        assert document["traceEvents"]
        printed = capsys.readouterr().out
        assert "wrote" in printed

    def test_trace_command_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "trace.jsonl"
        assert main(["trace", "--nodes", "1", "--pool-mb", "4",
                     "--format", "jsonl", "--out", str(out_path)]) == 0
        lines = out_path.read_text().splitlines()
        assert lines
        for line in lines:
            assert tuple(json.loads(line)) == JSONL_SCHEMA
