"""Victim-index path: golden-trace equivalence against the legacy scan.

The indexed hot path (``use_index=True``, the default) must make
bit-identical eviction decisions to the legacy scan-and-sort oracle: same
victims, same order, same dirty/flushed ground truth, same simulated
clock.  These tests drive seeded Fig. 9- and Fig. 10-shaped workloads
through both implementations of every strategy and compare the exact
:class:`~repro.core.paging.EvictionEvent` traces, plus unit tests for the
:class:`~repro.core.recency.RecencyIndex`, the cost-term cache, the
coalesced ``write_many`` flush path, and the metrics reconciliation
invariant for the new counters.
"""

import random

import pytest

from repro import MachineProfile, PangeaCluster
from repro.core.attributes import ReadingPattern, WritingPattern
from repro.core.policies import (
    DataAwarePolicy,
    _cost_cache_key,
    make_policy,
    next_victim,
    next_victim_indexed,
    victim_batch,
    victim_batch_indexed,
)
from repro.sim import metrics as metrics_mod
from repro.sim.clock import SimClock
from repro.sim.devices import MB, DiskArray, DiskDevice
from repro.fs.page_file import SetFile

PAGE = 256 * 1024

#: The five strategies the golden traces cover (the adaptive DBMIN modes
#: raise DbminBlockedError under this much pressure, as the paper shows).
STRATEGIES = ["data-aware", "lru", "mru", "dbmin-1", "dbmin-tuned"]


def make_cluster(policy):
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
    )
    cluster.nodes[0].paging.set_policy(policy)
    cluster.nodes[0].paging.enable_trace(capacity=100_000)
    return cluster


def run_fig9_workload(policy, seed=901):
    """Fig. 9 shape: sequential writers spilling, then looped rescans."""
    cluster = make_cluster(policy)
    rng = random.Random(seed)
    writeback = cluster.create_set("spill", durability="write-back", page_size=PAGE)
    through = cluster.create_set("persist", durability="write-through", page_size=PAGE)
    ws, ts = writeback.shards[0], through.shards[0]
    ws.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    ts.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    for i in range(40):
        shard = ws if i % 3 else ts
        page = shard.new_page()
        page.append(f"rec-{i}", 64)
        shard.seal_page(page)
        shard.unpin_page(page)
    ws.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    ts.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    for _ in range(2):  # loop-sequential rescan
        for page in list(ws.pages):
            ws.pin_page(page)
            ws.unpin_page(page)
    # A few seeded random touches to vary recency beyond pure scan order.
    for _ in range(20):
        page = rng.choice(ws.pages)
        ws.pin_page(page)
        ws.unpin_page(page)
    return cluster


def run_fig10_workload(policy, seed=1001):
    """Fig. 10 shape: a shuffle — random-read input, random-write output."""
    cluster = make_cluster(policy)
    rng = random.Random(seed)
    source = cluster.create_set("source", durability="write-back", page_size=PAGE)
    sink = cluster.create_set("sink", durability="write-back", page_size=PAGE)
    ss, ks = source.shards[0], sink.shards[0]
    ss.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
    for i in range(24):
        page = ss.new_page()
        page.append(f"src-{i}", 64)
        ss.unpin_page(page)
    ss.attributes.note_read_service(ReadingPattern.RANDOM_READ)
    ks.attributes.note_write_service(WritingPattern.RANDOM_MUTABLE_WRITE)
    sink_pages = []
    for i in range(30):
        page = ss.pages[rng.randrange(len(ss.pages))]
        ss.pin_page(page)
        ss.unpin_page(page)
        if i % 2 == 0:
            out = ks.new_page()
            out.append(f"out-{i}", 64)
            ks.unpin_page(out)
            sink_pages.append(out)
        elif sink_pages:
            out = sink_pages[rng.randrange(len(sink_pages))]
            ks.pin_page(out)
            out.append(f"mut-{i}", 64)
            ks.unpin_page(out)
    return cluster


def trace_of(cluster):
    return [
        (e.set_name, e.page_id, e.was_dirty, e.flushed, e.tick)
        for e in cluster.nodes[0].paging.trace
    ]


WORKLOADS = {"fig9": run_fig9_workload, "fig10": run_fig10_workload}


class TestGoldenTraceEquivalence:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_indexed_path_reproduces_legacy_trace(self, workload, strategy):
        run = WORKLOADS[workload]
        legacy = run(make_policy(strategy, use_index=False))
        indexed = run(make_policy(strategy, use_index=True))
        assert trace_of(indexed) == trace_of(legacy)
        assert len(trace_of(indexed)) > 0, "workload produced no evictions"
        assert (
            indexed.nodes[0].clock.now == legacy.nodes[0].clock.now
        ), "simulated cost diverged between the paths"

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_default_policy_uses_the_index(self, strategy):
        policy = make_policy(strategy)
        assert policy.use_index is True

    def test_lifetime_ended_sets_still_evicted_first(self):
        for use_index in (False, True):
            cluster = make_cluster(DataAwarePolicy(use_index=use_index))
            dead = cluster.create_set("dead", durability="write-back", page_size=1 * MB)
            live = cluster.create_set("live", durability="write-back", page_size=1 * MB)
            for shard in (dead.shards[0], live.shards[0]):
                for _ in range(2):
                    page = shard.new_page()
                    shard.unpin_page(page)
            dead.end_lifetime()
            live.shards[0].new_page()
            trace = cluster.nodes[0].paging.trace
            assert trace[0].set_name == "dead", f"use_index={use_index}"
            # Dead data is dropped, never flushed.
            assert not trace[0].flushed

    def test_dead_set_golden_trace_matches(self):
        def run(policy):
            cluster = make_cluster(policy)
            dead = cluster.create_set("dead", durability="write-back", page_size=PAGE)
            live = cluster.create_set("live", durability="write-back", page_size=PAGE)
            for i in range(10):
                shard = dead.shards[0] if i % 2 else live.shards[0]
                page = shard.new_page()
                page.append("x", 32)
                shard.unpin_page(page)
            dead.end_lifetime()
            for _ in range(10):
                page = live.shards[0].new_page()
                page.append("y", 32)
                live.shards[0].unpin_page(page)
            return cluster

        legacy = run(DataAwarePolicy(use_index=False))
        indexed = run(DataAwarePolicy(use_index=True))
        assert trace_of(indexed) == trace_of(legacy)


class TestVictimHelpersAgree:
    def make_shard(self, cluster, name, pages=6):
        data = cluster.create_set(name, durability="write-back", page_size=PAGE)
        shard = data.shards[0]
        for i in range(pages):
            page = shard.new_page()
            page.append(f"{name}-{i}", 16)
            shard.unpin_page(page)
        return shard

    @pytest.fixture
    def cluster(self):
        return PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )

    def test_next_victim_matches_for_both_strategies(self, cluster):
        shard = self.make_shard(cluster, "s")
        shard.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        assert next_victim_indexed(shard) is next_victim(shard)
        shard.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        assert next_victim_indexed(shard) is next_victim(shard)

    def test_victim_batch_matches_after_touches(self, cluster):
        shard = self.make_shard(cluster, "s", pages=10)
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        rng = random.Random(7)
        for _ in range(15):
            page = rng.choice(shard.pages)
            shard.pin_page(page)
            shard.unpin_page(page)
        assert victim_batch_indexed(shard) == victim_batch(shard)

    def test_victim_batch_matches_with_pinned_pages(self, cluster):
        shard = self.make_shard(cluster, "s", pages=8)
        shard.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        shard.pin_page(shard.pages[0])
        shard.pin_page(shard.pages[3])
        assert victim_batch_indexed(shard) == victim_batch(shard)
        assert next_victim_indexed(shard) is next_victim(shard)

    def test_dead_set_batch_matches_page_list_order(self, cluster):
        shard = self.make_shard(cluster, "s", pages=6)
        shard.attributes.end_lifetime()
        assert victim_batch_indexed(shard) == victim_batch(shard)


class TestRecencyIndex:
    @pytest.fixture
    def shard(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=PAGE)
        return data.shards[0]

    def test_insert_touch_remove_keep_order(self, shard):
        pages = []
        for i in range(5):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        shard.recency.check_consistency(shard)
        shard.pin_page(pages[1])
        shard.unpin_page(pages[1])
        shard.recency.check_consistency(shard)
        assert shard.recency.peek_mru() is pages[1]
        assert shard.recency.peek_lru() is pages[0]
        shard.evict_page(pages[0])
        shard.recency.check_consistency(shard)
        assert shard.recency.peek_lru() is pages[2]

    def test_pin_transitions_tracked_exactly(self, shard):
        pages = []
        for _ in range(4):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        assert shard.recency.evictable_count() == 4
        shard.pin_page(pages[0])
        shard.pin_page(pages[0])  # nested pin: still one pinned page
        assert shard.recency.evictable_count() == 3
        shard.recency.check_consistency(shard)
        shard.unpin_page(pages[0])
        assert shard.recency.evictable_count() == 3
        shard.unpin_page(pages[0])
        assert shard.recency.evictable_count() == 4
        shard.recency.check_consistency(shard)

    def test_peeks_skip_pinned_pages(self, shard):
        pages = []
        for _ in range(3):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        shard.pin_page(pages[0])
        shard.pin_page(pages[2])
        assert shard.recency.peek_lru() is pages[1]
        assert shard.recency.peek_mru() is pages[1]

    def test_reload_reinserts_into_index(self, shard):
        pages = []
        for _ in range(3):
            page = shard.new_page()
            page.append("x", 16)
            shard.unpin_page(page)
            pages.append(page)
        shard.evict_page(pages[0])
        assert len(shard.recency) == 2
        shard.pin_page(pages[0])  # page-in reload
        shard.unpin_page(pages[0])
        assert len(shard.recency) == 3
        shard.recency.check_consistency(shard)
        assert shard.recency.peek_mru() is pages[0]

    def test_drop_page_removes_from_index(self, shard):
        page = shard.new_page()
        shard.unpin_page(page)
        shard.drop_page(page)
        assert len(shard.recency) == 0

    def test_resident_unpinned_count_matches_scan(self, shard):
        pages = []
        for _ in range(5):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        shard.pin_page(pages[2])
        assert shard.resident_unpinned_count() == len(
            shard.resident_unpinned_pages()
        )


class TestCostTermCache:
    def pressured(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        return cluster

    def test_cache_key_changes_on_dirty_flip(self):
        cluster = self.pressured()
        data = cluster.create_set("s", durability="write-back", page_size=PAGE)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("x", 16)
        shard.unpin_page(page)
        dirty_key = _cost_cache_key(shard, page)
        page.dirty = False
        assert _cost_cache_key(shard, page) != dirty_key

    def test_cache_key_changes_on_attribute_change(self):
        cluster = self.pressured()
        data = cluster.create_set("s", durability="write-back", page_size=PAGE)
        shard = data.shards[0]
        page = shard.new_page()
        shard.unpin_page(page)
        before = _cost_cache_key(shard, page)
        shard.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        assert _cost_cache_key(shard, page) != before
        mid = _cost_cache_key(shard, page)
        shard.attributes.end_lifetime()
        assert _cost_cache_key(shard, page) != mid

    def test_cache_hits_recorded_under_pressure(self):
        cluster = self.pressured()
        data = cluster.create_set("a", durability="write-back", page_size=PAGE)
        other = cluster.create_set("b", durability="write-back", page_size=PAGE)
        for i in range(40):
            shard = (data if i % 2 else other).shards[0]
            page = shard.new_page()
            page.append("x", 16)
            shard.unpin_page(page)
        stats = cluster.nodes[0].paging.stats
        assert stats.index_rebuilds > 0
        assert stats.cost_cache_misses > 0
        # Candidate sets whose next victim did not change between rounds
        # reuse their cached terms.
        assert stats.cost_cache_hits > 0
        total = stats.cost_cache_hits + stats.cost_cache_misses
        per_set = cluster.nodes[0].paging.set_metrics()
        assert (
            sum(s.cost_cache_hits for s in per_set.values()) == stats.cost_cache_hits
        )
        assert (
            sum(s.cost_cache_misses for s in per_set.values())
            == stats.cost_cache_misses
        )
        assert total >= stats.index_rebuilds

    def test_stats_reset_clears_new_counters(self):
        cluster = self.pressured()
        data = cluster.create_set("s", durability="write-back", page_size=PAGE)
        shard = data.shards[0]
        for _ in range(20):
            page = shard.new_page()
            page.append("x", 16)
            shard.unpin_page(page)
        stats = cluster.nodes[0].paging.stats
        assert stats.index_rebuilds > 0
        stats.reset()
        assert stats.index_rebuilds == 0
        assert stats.cost_cache_hits == 0
        assert stats.cost_cache_misses == 0


class TestWriteMany:
    def make_array(self, num_disks=2):
        clock = SimClock()
        disks = [
            DiskDevice(name=f"ssd{i}", clock=clock if i == 0 else None)
            for i in range(num_disks)
        ]
        return DiskArray(disks), clock

    def test_single_charge_for_batch(self):
        array, clock = self.make_array()
        sizes = [PAGE, PAGE, PAGE]
        cost = array.write_many(sizes)
        expected = array.estimate_write_seconds(sum(sizes), num_ios=1)
        assert cost == expected
        assert clock.now == cost
        # One operation per disk, not one per page.
        assert all(d.stats.num_writes == 1 for d in array.disks)
        assert array.total_bytes_written() == sum(sizes)

    def test_batch_cheaper_than_per_page_writes(self):
        batched, _ = self.make_array()
        separate, _ = self.make_array()
        sizes = [PAGE] * 8
        batch_cost = batched.write_many(sizes)
        individual = sum(separate.write(s) for s in sizes)
        # Same bytes, 7 fewer seeks.
        delta = individual - batch_cost
        lat = separate.disks[0].io_latency
        assert delta == pytest.approx(7 * lat)
        assert batched.total_bytes_written() == separate.total_bytes_written()

    def test_set_file_write_many_matches_write_page_metadata(self):
        array, _ = self.make_array()
        batched = SetFile("b", array)
        entries = [(i, [f"r{i}"], PAGE) for i in range(4)]
        batched.write_many(entries)
        array2, _ = self.make_array()
        reference = SetFile("r", array2)
        for page_id, records, nbytes in entries:
            reference.write_page(page_id, records, nbytes)
        for page_id, records, _nbytes in entries:
            assert batched.location(page_id) == reference.location(page_id)
            loaded, _cost = batched.read_page(page_id)
            assert loaded == records

    def test_set_file_write_many_single_entry_delegates(self):
        array, _ = self.make_array()
        file = SetFile("s", array)
        file.write_many([(1, ["x"], PAGE)])
        assert file.contains(1)
        assert array.disks[0].stats.num_writes == 1

    def test_empty_batch_is_free(self):
        array, clock = self.make_array()
        file = SetFile("s", array)
        assert file.write_many([]) == 0.0
        assert clock.now == 0.0

    def test_negative_size_rejected(self):
        array, _ = self.make_array()
        with pytest.raises(ValueError):
            array.write_many([PAGE, -1])

    def test_eviction_round_coalesces_same_set_flushes(self):
        # A data-aware read batch evicts several dirty pages of one set:
        # the flush must land as one disk operation per drive.
        small = 64 * 1024
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=small)
        shard = data.shards[0]
        for i in range(64):  # fills the 4MB pool exactly
            page = shard.new_page()
            page.append(f"r{i}", 16)
            shard.unpin_page(page)
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        writes_before = sum(d.stats.num_writes for d in cluster.nodes[0].disks.disks)
        pageouts_before = cluster.nodes[0].pool.stats.pageouts
        # Force one eviction round; a read-mode set gives a 10% batch.
        shard.new_page()
        flushed = cluster.nodes[0].pool.stats.pageouts - pageouts_before
        writes = (
            sum(d.stats.num_writes for d in cluster.nodes[0].disks.disks)
            - writes_before
        )
        assert flushed > 1, "expected a multi-page flush batch"
        per_disk_ops = writes / cluster.nodes[0].disks.num_disks
        assert per_disk_ops < flushed, "batch was not coalesced"


class TestReconcileInvariant:
    def run_pressure(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        a = cluster.create_set("a", durability="write-back", page_size=PAGE)
        b = cluster.create_set("b", durability="write-back", page_size=PAGE)
        for i in range(30):
            shard = (a if i % 2 else b).shards[0]
            page = shard.new_page()
            page.append("x", 16)
            shard.unpin_page(page)
        return cluster, a, b

    def test_cache_counters_reconcile(self):
        cluster, _a, _b = self.run_pressure()
        snapshot = metrics_mod.collect(cluster)
        assert metrics_mod.reconcile(snapshot) == []
        node = snapshot.nodes[0]
        assert node.cost_cache_hits + node.cost_cache_misses > 0

    def test_cache_counters_reconcile_across_drop_set(self):
        cluster, a, _b = self.run_pressure()
        cluster.drop_set(a.name)
        snapshot = metrics_mod.collect(cluster)
        assert metrics_mod.reconcile(snapshot) == []

    def test_set_table_shows_cache_column(self):
        cluster, _a, _b = self.run_pressure()
        snapshot = metrics_mod.collect(cluster)
        table = metrics_mod.format_set_table(snapshot)
        assert "cache(h/m)" in table
        # At least one set shows real cache activity.
        assert any("/" in line.split()[-1] for line in table.splitlines()[1:])
