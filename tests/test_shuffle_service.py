"""Tests for the shuffle service and virtual shuffle buffers."""

import pytest

from repro import CurrentOperation, MachineProfile, PangeaCluster, WritingPattern
from repro.services.shuffle import ShuffleService, SmallPageAllocator
from repro.sim.devices import KB, MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB))


def make_service(cluster, partitions=4):
    return ShuffleService(
        cluster, "sh", num_partitions=partitions,
        page_size=1 * MB, small_page_size=64 * KB, object_bytes=100,
    )


class TestSmallPageAllocator:
    def test_small_pages_carve_one_big_page(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB,
                                  nodes=[0])
        alloc = SmallPageAllocator(data.shards[0], small_page_size=256 * KB)
        pages = [alloc.get_small_page() for _ in range(4)]
        assert len(data.shards[0].pages) == 1
        assert all(p.budget == 256 * KB for p in pages)

    def test_big_page_rolls_when_exhausted(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB,
                                  nodes=[0])
        alloc = SmallPageAllocator(data.shards[0], small_page_size=512 * KB)
        for _ in range(3):
            small = alloc.get_small_page()
            small.finish(data.shards[0])
        assert len(data.shards[0].pages) == 2

    def test_big_page_unpins_only_when_all_small_finished(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB,
                                  nodes=[0])
        shard = data.shards[0]
        alloc = SmallPageAllocator(shard, small_page_size=512 * KB)
        first = alloc.get_small_page()
        second = alloc.get_small_page()
        third = alloc.get_small_page()  # rolls to a new big page
        big = first.big.page
        assert big.pinned  # first/second still outstanding
        first.finish(shard)
        assert big.pinned
        second.finish(shard)
        assert not big.pinned
        third.finish(shard)

    def test_oversized_small_page_rejected(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB,
                                  nodes=[0])
        with pytest.raises(ValueError):
            SmallPageAllocator(data.shards[0], small_page_size=2 * MB)


class TestShuffleService:
    def test_one_set_per_partition(self, cluster):
        service = make_service(cluster)
        assert len(service.partition_sets) == 4
        homes = [sorted(s.shards)[0] for s in service.partition_sets]
        assert homes == [0, 1, 0, 1]

    def test_records_grouped_by_partition(self, cluster):
        service = make_service(cluster)
        for worker in range(2):
            for i in range(100):
                partition = i % 4
                service.buffer_for(worker, partition).add_object((worker, i))
        service.finish_writing()
        for partition in range(4):
            records = list(service.partition_set(partition).scan_records())
            assert len(records) == 50
            assert all(i % 4 == partition for _w, i in records)

    def test_concurrent_write_attribute(self, cluster):
        service = make_service(cluster)
        for dataset in service.partition_sets:
            assert dataset.attributes.writing_pattern is WritingPattern.CONCURRENT_WRITE
            assert dataset.attributes.current_operation is CurrentOperation.WRITE
        service.finish_writing()
        for dataset in service.partition_sets:
            assert dataset.attributes.current_operation is CurrentOperation.NONE

    def test_multiple_writers_share_a_page(self, cluster):
        """Data from all writers of one partition lands in one locality set
        (Spark would use cores x partitions files)."""
        service = make_service(cluster, partitions=1)
        for worker in range(4):
            for i in range(10):
                service.buffer_for(worker, 0).add_object((worker, i))
        service.finish_writing()
        dataset = service.partition_set(0)
        assert dataset.num_pages == 1
        assert dataset.num_objects == 40

    def test_remote_writer_charges_network(self, cluster):
        service = make_service(cluster, partitions=2)
        remote_node = cluster.nodes[1]  # partition 0 lives on node 0
        buffer = service.buffer_for(9, 0, worker_node=remote_node)
        for i in range(100):
            buffer.add_object(i)
        buffer.close()
        assert remote_node.network.stats.bytes_sent > 0

    def test_local_writer_charges_no_network(self, cluster):
        service = make_service(cluster, partitions=2)
        local_node = cluster.nodes[0]
        buffer = service.buffer_for(3, 0, worker_node=local_node)
        for i in range(100):
            buffer.add_object(i)
        buffer.close()
        assert local_node.network.stats.bytes_sent == 0

    def test_drop_removes_transient_sets(self, cluster):
        service = make_service(cluster)
        service.buffer_for(0, 0).add_object("x")
        service.finish_writing()
        service.drop()
        assert all(
            not cluster.manager.has_set(f"sh_p{p}") for p in range(4)
        )

    def test_spill_and_reread_under_pressure(self, cluster):
        """A shuffle bigger than the pool spills and still reads back fully."""
        service = ShuffleService(
            cluster, "big", num_partitions=2,
            page_size=1 * MB, small_page_size=64 * KB, object_bytes=64 * KB,
        )
        for worker in range(2):
            for i in range(600):  # ~37MB logical over two 16MB pools
                service.buffer_for(worker, i % 2).add_object(i)
        service.finish_writing()
        total = sum(
            len(list(service.partition_set(p).scan_records())) for p in range(2)
        )
        assert total == 1200

    def test_zero_partitions_rejected(self, cluster):
        with pytest.raises(ValueError):
            ShuffleService(cluster, "bad", num_partitions=0)
