"""The nine TPC-H queries must match the reference oracle.

Both with and without heterogeneous replicas (the physical strategy must
never change the answer), and the Spark-baseline scheduler must agree too.
"""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.baselines.spark import SparkTpchScheduler
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.tpch import QUERIES, REFERENCE_QUERIES, load_tpch, register_tpch_replicas

from .conftest import rows_match

SCALE = 0.004


@pytest.fixture(scope="module")
def plain():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    return cluster, tables


@pytest.fixture(scope="module")
def replicated():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    register_tpch_replicas(cluster)
    return cluster, tables


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_matches_reference_without_replicas(plain, name):
    cluster, tables = plain
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = QUERIES[name](scheduler)
    want = REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_query_matches_reference_with_replicas(replicated, name):
    cluster, tables = replicated
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = QUERIES[name](scheduler)
    want = REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


@pytest.mark.parametrize("name", ["Q04", "Q12", "Q13", "Q14", "Q17", "Q22"])
def test_replica_queries_use_copartitioned_joins(replicated, name):
    cluster, _tables = replicated
    scheduler = QueryScheduler(cluster, broadcast_threshold=0, object_bytes=144)
    QUERIES[name](scheduler)
    assert scheduler.metrics.copartitioned_joins >= 1


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_spark_scheduler_agrees(plain, name):
    cluster, tables = plain
    scheduler = SparkTpchScheduler(
        cluster, broadcast_threshold=4 * MB, object_bytes=144
    )
    got = QUERIES[name](scheduler)
    want = REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want)


def test_pangea_faster_than_spark_on_copartitioned_query(replicated):
    cluster, _tables = replicated
    cluster.reset_clocks()
    pangea = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    start = cluster.simulated_seconds()
    QUERIES["Q12"](pangea)
    pangea_seconds = cluster.simulated_seconds() - start

    spark = SparkTpchScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    start = cluster.simulated_seconds()
    QUERIES["Q12"](spark)
    spark_seconds = cluster.simulated_seconds() - start
    assert spark_seconds > pangea_seconds * 3
