"""Every example script must run end-to-end (they are part of the API)."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"


def test_examples_exist():
    assert len(EXAMPLES) >= 5
    assert "quickstart.py" in EXAMPLES
