"""Tests for the Pangea distributed file system layer."""

import pytest

from repro.fs.node_fs import PangeaNodeFS
from repro.fs.page_file import SetFile
from repro.sim.clock import SimClock
from repro.sim.devices import MB, DiskArray, DiskDevice


@pytest.fixture
def disks():
    clock = SimClock()
    return DiskArray([DiskDevice(clock=clock), DiskDevice(clock=clock)])


class TestSetFile:
    def test_write_then_read_roundtrip(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["a", "b"], 1 * MB)
        records, cost = handle.read_page(1)
        assert records == ["a", "b"]
        assert cost > 0

    def test_payload_is_snapshotted(self, disks):
        handle = SetFile("s", disks)
        records = ["a"]
        handle.write_page(1, records, 1 * MB)
        records.append("b")
        got, _cost = handle.read_page(1)
        assert got == ["a"]

    def test_rewrite_keeps_single_location(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["v1"], 1 * MB)
        first = handle.location(1)
        handle.write_page(1, ["v2"], 1 * MB)
        second = handle.location(1)
        # Same physical placement; only the checksum tracks the new payload.
        assert (second.disk_index, second.offset, second.nbytes) == (
            first.disk_index,
            first.offset,
            first.nbytes,
        )
        assert second.checksum != first.checksum
        got, _ = handle.read_page(1)
        assert got == ["v2"]

    def test_pages_round_robin_over_disks(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, [], 1 * MB)
        handle.write_page(2, [], 1 * MB)
        assert handle.location(1).disk_index != handle.location(2).disk_index

    def test_read_missing_page_raises(self, disks):
        handle = SetFile("s", disks)
        with pytest.raises(KeyError):
            handle.read_page(42)

    def test_drop_page(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["x"], 1 * MB)
        handle.drop_page(1)
        assert not handle.contains(1)
        assert handle.num_pages == 0

    def test_truncate(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, [], 1 * MB)
        handle.write_page(2, [], 1 * MB)
        handle.truncate()
        assert handle.num_pages == 0
        assert handle.bytes_on_disk == 0

    def test_write_charges_disk_time(self, disks):
        handle = SetFile("s", disks)
        clock = disks.disks[0].clock
        before = clock.now
        handle.write_page(1, [], 64 * MB)
        assert clock.now > before


class TestExtentRecycling:
    def test_drop_topmost_page_shrinks_disk_head(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["a"], 1 * MB)
        assert handle.disk_head_bytes == 1 * MB
        handle.drop_page(1)
        assert handle.disk_head_bytes == 0
        assert handle.free_extent_bytes == 0
        handle.assert_extent_accounting()

    def test_dropped_extent_is_reused(self, disks):
        handle = SetFile("s", disks)
        for page_id in range(1, 5):  # two pages per disk
            handle.write_page(page_id, [page_id], 1 * MB)
        head = handle.disk_head_bytes
        handle.drop_page(1)  # not topmost on its disk -> free list
        assert handle.free_extent_bytes == 1 * MB
        handle.write_page(5, ["reused"], 1 * MB)
        assert handle.free_extent_bytes == 0
        assert handle.disk_head_bytes == head
        # Page 5 landed in page 1's recycled extent (disk 0, offset 0).
        assert handle.location(5).disk_index == handle.location(3).disk_index
        assert handle.location(5).offset == 0
        handle.assert_extent_accounting()

    def test_write_drop_churn_does_not_grow_offsets(self, disks):
        """The leak this fixes: transient sets that repeatedly write and
        drop pages must not advance their disk offsets unboundedly."""
        handle = SetFile("s", disks)
        for i in range(50):
            handle.write_page(100 + i, [i], 1 * MB)
            handle.drop_page(100 + i)
            handle.assert_extent_accounting()
        assert handle.disk_head_bytes <= 2 * MB

    def test_smaller_rewrite_keeps_extent_accounting(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["big"], 2 * MB)
        handle.write_page(1, ["small"], 1 * MB)
        location = handle.location(1)
        assert location.nbytes == 1 * MB
        assert location.allocated_bytes == 2 * MB
        handle.assert_extent_accounting()
        handle.drop_page(1)
        assert handle.disk_head_bytes == 0
        handle.assert_extent_accounting()

    def test_truncate_clears_free_extents(self, disks):
        handle = SetFile("s", disks)
        for page_id in range(1, 5):
            handle.write_page(page_id, [page_id], 1 * MB)
        handle.drop_page(1)
        handle.truncate()
        assert handle.free_extent_bytes == 0
        assert handle.disk_head_bytes == 0
        handle.assert_extent_accounting()


class TestNodeFS:
    def test_create_get_drop(self, disks):
        fs = PangeaNodeFS(disks)
        handle = fs.create_file("s")
        assert fs.get_file("s") is handle
        assert "s" in fs
        fs.drop_file("s")
        assert "s" not in fs

    def test_duplicate_create_rejected(self, disks):
        fs = PangeaNodeFS(disks)
        fs.create_file("s")
        with pytest.raises(ValueError):
            fs.create_file("s")

    def test_get_missing_raises(self, disks):
        with pytest.raises(KeyError):
            PangeaNodeFS(disks).get_file("nope")

    def test_bytes_on_disk_sums_files(self, disks):
        fs = PangeaNodeFS(disks)
        fs.create_file("a").write_page(1, [], 1 * MB)
        fs.create_file("b").write_page(2, [], 2 * MB)
        assert fs.bytes_on_disk == 3 * MB
        assert fs.num_files == 2
