"""Tests for locality-set attributes and runtime inference."""

import pytest

from repro.core.attributes import (
    CurrentOperation,
    DurabilityType,
    LocalitySetAttributes,
    ReadingPattern,
    WritingPattern,
)


class TestDurabilityParsing:
    def test_parse_strings(self):
        assert DurabilityType.parse("write-back") is DurabilityType.WRITE_BACK
        assert DurabilityType.parse("write-through") is DurabilityType.WRITE_THROUGH

    def test_parse_passthrough(self):
        assert DurabilityType.parse(DurabilityType.WRITE_BACK) is DurabilityType.WRITE_BACK

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError):
            DurabilityType.parse("write-sometimes")


class TestAttributeInference:
    def test_defaults(self):
        attrs = LocalitySetAttributes()
        assert attrs.durability is DurabilityType.WRITE_THROUGH
        assert attrs.current_operation is CurrentOperation.NONE
        assert attrs.alive

    def test_write_service_sets_pattern_and_operation(self):
        attrs = LocalitySetAttributes()
        attrs.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        assert attrs.writing_pattern is WritingPattern.SEQUENTIAL_WRITE
        assert attrs.current_operation is CurrentOperation.WRITE

    def test_read_service_sets_pattern_and_operation(self):
        attrs = LocalitySetAttributes()
        attrs.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        assert attrs.reading_pattern is ReadingPattern.SEQUENTIAL_READ
        assert attrs.current_operation is CurrentOperation.READ

    def test_read_then_write_becomes_read_and_write(self):
        attrs = LocalitySetAttributes()
        attrs.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        attrs.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        assert attrs.current_operation is CurrentOperation.READ_AND_WRITE

    def test_write_then_read_becomes_read_and_write(self):
        attrs = LocalitySetAttributes()
        attrs.note_write_service(WritingPattern.CONCURRENT_WRITE)
        attrs.note_read_service(ReadingPattern.RANDOM_READ)
        assert attrs.current_operation is CurrentOperation.READ_AND_WRITE

    def test_detach_downgrades_operation(self):
        attrs = LocalitySetAttributes()
        attrs.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        attrs.note_service_detached(remaining_readers=0, remaining_writers=0)
        assert attrs.current_operation is CurrentOperation.NONE

    def test_detach_keeps_remaining_reader(self):
        attrs = LocalitySetAttributes()
        attrs.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        attrs.note_service_detached(remaining_readers=1, remaining_writers=0)
        assert attrs.current_operation is CurrentOperation.READ

    def test_detach_keeps_mixed(self):
        attrs = LocalitySetAttributes()
        attrs.note_service_detached(remaining_readers=1, remaining_writers=1)
        assert attrs.current_operation is CurrentOperation.READ_AND_WRITE

    def test_end_lifetime(self):
        attrs = LocalitySetAttributes()
        attrs.end_lifetime()
        assert attrs.lifetime_ended
        assert not attrs.alive
        assert attrs.current_operation is CurrentOperation.NONE

    def test_hash_service_pattern_combination(self):
        """The hash service implies random-mutable-write + random-read."""
        attrs = LocalitySetAttributes()
        attrs.note_write_service(WritingPattern.RANDOM_MUTABLE_WRITE)
        attrs.note_read_service(ReadingPattern.RANDOM_READ)
        assert attrs.writing_pattern is WritingPattern.RANDOM_MUTABLE_WRITE
        assert attrs.reading_pattern is ReadingPattern.RANDOM_READ
