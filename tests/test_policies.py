"""Tests for the paging policies (data-aware, LRU, MRU, DBMIN variants)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.core.attributes import CurrentOperation, ReadingPattern, WritingPattern
from repro.core.policies import (
    DataAwarePolicy,
    DbminBlockedError,
    DbminPolicy,
    GlobalLruPolicy,
    GlobalMruPolicy,
    eviction_cost,
    make_policy,
    next_victim,
    set_strategy,
    victim_batch,
)
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB))


def make_shard(cluster, name, durability="write-back", pages=4, unpin=True):
    data = cluster.create_set(name, durability=durability, page_size=1 * MB)
    shard = data.shards[0]
    for i in range(pages):
        page = shard.new_page()
        page.append(f"{name}-{i}", 10)
        if unpin:
            shard.unpin_page(page)
    return shard


class TestStrategySelection:
    def test_sequential_write_uses_mru(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        assert set_strategy(shard) == "mru"

    def test_concurrent_write_uses_mru(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_write_service(WritingPattern.CONCURRENT_WRITE)
        assert set_strategy(shard) == "mru"

    def test_random_mutable_write_uses_lru(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_write_service(WritingPattern.RANDOM_MUTABLE_WRITE)
        assert set_strategy(shard) == "lru"

    def test_sequential_read_uses_mru(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        assert set_strategy(shard) == "mru"

    def test_random_read_uses_lru(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        assert set_strategy(shard) == "lru"


class TestVictimSelection:
    def test_mru_picks_most_recent(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        victim = next_victim(shard)
        assert victim is shard.pages[-1]

    def test_lru_picks_least_recent(self, cluster):
        shard = make_shard(cluster, "s")
        shard.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        victim = next_victim(shard)
        assert victim is shard.pages[0]

    def test_pinned_pages_never_victims(self, cluster):
        shard = make_shard(cluster, "s", pages=2, unpin=False)
        assert next_victim(shard) is None

    def test_write_sets_evict_one(self, cluster):
        shard = make_shard(cluster, "s", pages=10)
        shard.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        assert len(victim_batch(shard)) == 1

    def test_read_sets_evict_ten_percent(self, cluster):
        shard = make_shard(cluster, "s", pages=10)
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        shard.attributes.current_operation = CurrentOperation.READ
        assert len(victim_batch(shard)) == 1  # max(1, 10% of 10)

    def test_dead_sets_evict_everything(self, cluster):
        shard = make_shard(cluster, "s", pages=6)
        shard.dataset.end_lifetime()
        assert len(victim_batch(shard)) == 6


class TestEvictionCost:
    def test_dirty_write_back_costs_more(self, cluster):
        dirty = make_shard(cluster, "dirty", durability="write-back", pages=1)
        clean = make_shard(cluster, "clean", durability="write-through", pages=1)
        clean.seal_page(clean.pages[0])
        now = cluster.nodes[0].paging.current_tick + 5
        cost_dirty = eviction_cost(dirty, dirty.pages[0], now)
        cost_clean = eviction_cost(clean, clean.pages[0], now)
        assert cost_dirty > cost_clean

    def test_random_read_penalty_increases_cost(self, cluster):
        seq = make_shard(cluster, "seq", pages=1)
        seq.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        rnd = make_shard(cluster, "rnd", pages=1)
        rnd.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        now = cluster.nodes[0].paging.current_tick + 5
        seq.pages[0].dirty = rnd.pages[0].dirty = False
        seq.pages[0].on_disk = rnd.pages[0].on_disk = True
        assert eviction_cost(rnd, rnd.pages[0], now) > eviction_cost(
            seq, seq.pages[0], now
        )

    def test_recent_page_costs_more_than_stale(self, cluster):
        shard = make_shard(cluster, "s", pages=2)
        old, new = shard.pages
        old.last_access_tick = 1
        new.last_access_tick = 100
        cost_old = eviction_cost(shard, old, 101)
        cost_new = eviction_cost(shard, new, 101)
        assert cost_new > cost_old

    def test_just_accessed_page_has_max_reuse_probability(self, cluster):
        shard = make_shard(cluster, "s", pages=1)
        page = shard.pages[0]
        cost_now = eviction_cost(shard, page, page.last_access_tick)
        cost_later = eviction_cost(shard, page, page.last_access_tick + 1000)
        assert cost_now > cost_later


class TestDataAwarePolicy:
    def test_dead_sets_evicted_first(self, cluster):
        live = make_shard(cluster, "live", pages=2)
        dead = make_shard(cluster, "dead", pages=2)
        dead.dataset.end_lifetime()
        policy = DataAwarePolicy()
        victims = policy.select_victims([live, dead], 1 * MB)
        assert victims
        assert all(v.shard is dead for v in victims)

    def test_prefers_cheapest_set(self, cluster):
        # A write-through set's pages are already on disk: cw = 0.
        cheap = make_shard(cluster, "cheap", durability="write-through", pages=2)
        for page in cheap.pages:
            cheap.seal_page(page)
        costly = make_shard(cluster, "costly", durability="write-back", pages=2)
        policy = DataAwarePolicy()
        victims = policy.select_victims([cheap, costly], 1 * MB)
        assert all(v.shard is cheap for v in victims)

    def test_nothing_evictable_returns_empty(self, cluster):
        pinned = make_shard(cluster, "pinned", pages=2, unpin=False)
        assert DataAwarePolicy().select_victims([pinned], 1 * MB) == []


class TestGlobalPolicies:
    def test_lru_takes_oldest_batch(self, cluster):
        a = make_shard(cluster, "a", pages=5)
        b = make_shard(cluster, "b", pages=5)
        victims = GlobalLruPolicy().select_victims([a, b], 1 * MB)
        assert victims
        oldest = min(
            (p for s in (a, b) for p in s.pages), key=lambda p: p.last_access_tick
        )
        assert victims[0] is oldest

    def test_mru_takes_newest_batch(self, cluster):
        a = make_shard(cluster, "a", pages=5)
        b = make_shard(cluster, "b", pages=5)
        victims = GlobalMruPolicy().select_victims([a, b], 1 * MB)
        newest = max(
            (p for s in (a, b) for p in s.pages), key=lambda p: p.last_access_tick
        )
        assert victims[0] is newest

    def test_batch_is_ten_percent(self):
        roomy = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=32 * MB)
        )
        a = make_shard(roomy, "a", pages=10)
        b = make_shard(roomy, "b", pages=10)
        victims = GlobalLruPolicy().select_victims([a, b], 1 * MB)
        assert len(victims) == 2  # 10% of 20


class TestDbmin:
    def test_dbmin_1_never_blocks(self, cluster):
        shards = [make_shard(cluster, f"s{i}", pages=3) for i in range(3)]
        policy = DbminPolicy(mode="one")
        victims = policy.select_victims(shards, 1 * MB)
        assert victims

    def test_dbmin_adaptive_blocks_when_oversubscribed(self, cluster):
        shard = make_shard(cluster, "s", pages=8)
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        # Desired = whole set; make the set bigger than the pool.
        for _ in range(12):
            page = shard.new_page()
            shard.unpin_page(page)
        with pytest.raises(DbminBlockedError):
            DbminPolicy(mode="adaptive").select_victims([shard], 1 * MB)

    def test_dbmin_fixed_blocks_like_paper_1000(self, cluster):
        shard = make_shard(cluster, "s", pages=2)
        with pytest.raises(DbminBlockedError):
            DbminPolicy(mode="fixed", fixed_pages=1000).select_victims([shard], 1 * MB)

    def test_dbmin_tuned_never_blocks(self, cluster):
        shard = make_shard(cluster, "s", pages=8)
        shard.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
        victims = DbminPolicy(mode="tuned").select_victims([shard], 1 * MB)
        assert victims

    def test_evicts_from_most_oversubscribed_set(self, cluster):
        small = make_shard(cluster, "small", pages=1)
        large = make_shard(cluster, "large", pages=6)
        policy = DbminPolicy(mode="one")
        victims = policy.select_victims([small, large], 1 * MB)
        assert victims[0].shard is large

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DbminPolicy(mode="magic")


class TestPolicyFactory:
    @pytest.mark.parametrize(
        "name",
        ["data-aware", "lru", "mru", "dbmin-1", "dbmin-1000", "dbmin-adaptive",
         "dbmin-tuned"],
    )
    def test_known_policies(self, name):
        policy = make_policy(name)
        assert policy is not None

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy("clock-pro")
