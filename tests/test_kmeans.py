"""Tests for k-means on Pangea."""

import numpy as np
import pytest

from repro import MachineProfile, PangeaCluster
from repro.ml.kmeans import PangeaKMeans, generate_points
from repro.sim.devices import GB, MB


def run_kmeans(num_logical, num_actual=1500, policy="data-aware",
               pool_bytes=50 * GB, nodes=4, iterations=3):
    profile = MachineProfile.r4_2xlarge(pool_bytes=pool_bytes)
    cluster = PangeaCluster(num_nodes=nodes, profile=profile, policy=policy)
    km = PangeaKMeans(cluster, k=5, dims=10, workers=8)
    points = generate_points(num_actual, num_clusters=5)
    data = km.load_points(points, represent=num_logical / num_actual)
    result = km.run(data, represent=num_logical / num_actual, iterations=iterations)
    return cluster, result, points


class TestConvergence:
    def test_inertia_decreases(self):
        points = generate_points(800, num_clusters=5)
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=64 * MB)
        )
        km = PangeaKMeans(cluster, k=5, dims=10, page_size=1 * MB)
        data = km.load_points(points, represent=1.0)

        def inertia(centroids):
            d = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            return d.min(axis=1).sum()

        shard = data.shards[0]
        first_result = km.run(data, represent=1.0, iterations=1)
        # Re-running more iterations from scratch must not be worse.
        cluster2 = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=64 * MB)
        )
        km2 = PangeaKMeans(cluster2, k=5, dims=10, page_size=1 * MB)
        data2 = km2.load_points(points, represent=1.0)
        more_result = km2.run(data2, represent=1.0, iterations=6)
        assert inertia(more_result.centroids) <= inertia(first_result.centroids) + 1e-6

    def test_centroids_have_right_shape(self):
        _cluster, result, _points = run_kmeans(1_000_000, iterations=1)
        assert result.centroids.shape == (5, 10)

    def test_deterministic_points(self):
        assert np.allclose(generate_points(100), generate_points(100))

    def test_too_few_points_rejected(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=64 * MB)
        )
        km = PangeaKMeans(cluster, k=50, dims=10, page_size=1 * MB)
        data = km.load_points(generate_points(10), represent=1.0)
        with pytest.raises(ValueError):
            km.run(data, represent=1.0)


class TestTimingShape:
    def test_larger_input_takes_longer(self):
        _c1, small, _p = run_kmeans(100_000_000)
        _c2, large, _p = run_kmeans(400_000_000)
        assert large.total_seconds > small.total_seconds

    def test_init_slower_than_iteration(self):
        """The paper's Pangea breakdown: init 43 s vs 11 s per iteration."""
        _cluster, result, _points = run_kmeans(1_000_000_000, nodes=10)
        assert result.init_seconds > result.avg_iteration_seconds

    def test_working_set_beyond_pool_triggers_paging(self):
        # 4GB pool/node, 2 nodes; 120GB of logical points >> pool.
        profile = MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
        cluster = PangeaCluster(num_nodes=2, profile=profile)
        km = PangeaKMeans(cluster, k=5, dims=10, workers=8)
        points = generate_points(1200)
        data = km.load_points(points, represent=1_000_000_000 / 1200)
        km.run(data, represent=1_000_000_000 / 1200, iterations=1)
        assert sum(n.pool.stats.evictions for n in cluster.nodes) > 0

    def test_in_memory_run_avoids_paging(self):
        cluster, result, _points = run_kmeans(100_000_000, pool_bytes=50 * GB)
        assert sum(n.pool.stats.pageouts for n in cluster.nodes) == 0

    def test_peak_pool_tracks_both_sets(self):
        _cluster, result, _points = run_kmeans(1_000_000_000, nodes=10)
        logical = 1_000_000_000 * (120 + 128)
        assert result.peak_pool_bytes >= logical * 0.9
