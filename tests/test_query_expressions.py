"""Tests for the expression DSL."""

from repro.query.expressions import col, lit


RECORD = {"a": 10, "b": 3.5, "name": "PROMO STEEL", "flag": True}


class TestBasics:
    def test_col_reads_field(self):
        assert col("a")(RECORD) == 10

    def test_lit_constant(self):
        assert lit(7)(RECORD) == 7

    def test_lit_passthrough_for_expr(self):
        expr = col("a")
        assert lit(expr) is expr


class TestArithmetic:
    def test_add(self):
        assert (col("a") + 5)(RECORD) == 15

    def test_radd(self):
        assert (5 + col("a"))(RECORD) == 15

    def test_sub_and_rsub(self):
        assert (col("a") - 4)(RECORD) == 6
        assert (1 - col("b"))(RECORD) == -2.5

    def test_mul_and_div(self):
        assert (col("a") * 2)(RECORD) == 20
        assert (col("a") / 4)(RECORD) == 2.5

    def test_composition(self):
        expr = col("a") * (1 - col("b") / 7)
        assert expr(RECORD) == 10 * (1 - 0.5)


class TestComparisons:
    def test_all_comparison_operators(self):
        assert (col("a") == 10)(RECORD)
        assert (col("a") != 11)(RECORD)
        assert (col("a") < 11)(RECORD)
        assert (col("a") <= 10)(RECORD)
        assert (col("a") > 9)(RECORD)
        assert (col("a") >= 10)(RECORD)

    def test_comparison_against_column(self):
        assert (col("a") > col("b"))(RECORD)


class TestConnectives:
    def test_and(self):
        assert ((col("a") == 10) & (col("b") < 4))(RECORD)
        assert not ((col("a") == 10) & (col("b") > 4))(RECORD)

    def test_or(self):
        assert ((col("a") == 0) | (col("flag") == True))(RECORD)  # noqa: E712

    def test_invert(self):
        assert (~(col("a") == 0))(RECORD)


class TestHelpers:
    def test_isin(self):
        assert col("a").isin([1, 10, 100])(RECORD)
        assert not col("a").isin([2, 3])(RECORD)

    def test_between_half_open(self):
        assert col("a").between(10, 11)(RECORD)
        assert not col("a").between(0, 10)(RECORD)

    def test_startswith(self):
        assert col("name").startswith("PROMO")(RECORD)
        assert not col("name").startswith("STANDARD")(RECORD)

    def test_description_renders(self):
        expr = (col("a") + 1) < lit(5)
        assert "a" in expr.description
