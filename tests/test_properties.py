"""Cross-module property-based tests on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineProfile, PangeaCluster
from repro.services.hashsvc import VirtualHashBuffer
from repro.sim.devices import MB
from repro.util import estimate_bytes, stable_hash


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=200), st.integers()),
        max_size=300,
    )
)
def test_hash_buffer_matches_dict_semantics(pairs):
    """The hash service is a dict with a combiner, whatever the pressure."""
    cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB))
    data = cluster.create_set("h", durability="write-back", page_size=256 * 1024)
    buffer = VirtualHashBuffer(data, num_root_partitions=2, combiner=lambda a, b: a + b)
    expected: dict = {}
    for key, value in pairs:
        buffer.insert(key, value, nbytes=60)
        expected[key] = expected.get(key, 0) + value
    assert dict(buffer.items()) == expected


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=100, max_value=1000),
)
def test_scan_preserves_records_under_any_pressure(pages_worth, object_bytes):
    """Write-back data survives eviction/reload for any sizing."""
    cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=1 * MB))
    data = cluster.create_set(
        "s", durability="write-back", page_size=128 * 1024, object_bytes=object_bytes
    )
    count = pages_worth * (128 * 1024 // object_bytes) // 4 + 1
    records = list(range(count))
    data.add_data(records)
    assert sorted(data.scan_records()) == records


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_paging_never_evicts_pinned_pages(sizes):
    """Whatever the allocation pattern, pinned pages stay resident."""
    cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB))
    data = cluster.create_set("s", durability="write-back", page_size=256 * 1024)
    shard = data.shards[0]
    pinned = [shard.new_page() for _ in range(4)]
    for size in sizes:
        page = shard.new_page()
        page.append(size, 10)
        shard.unpin_page(page)
    assert all(p.in_memory for p in pinned)


@settings(max_examples=50, deadline=None)
@given(st.one_of(st.integers(), st.text(), st.tuples(st.integers(), st.text())))
def test_stable_hash_is_deterministic_and_bounded(value):
    h1, h2 = stable_hash(value), stable_hash(value)
    assert h1 == h2
    assert 0 <= h1 < 2 ** 64


@settings(max_examples=50, deadline=None)
@given(
    st.one_of(
        st.booleans(),
        st.integers(),
        st.floats(allow_nan=False),
        st.text(max_size=50),
        st.binary(max_size=50),
        st.lists(st.integers(), max_size=10),
        st.dictionaries(st.text(max_size=5), st.integers(), max_size=5),
    )
)
def test_estimate_bytes_positive(value):
    assert estimate_bytes(value) >= 1


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.integers(min_value=0, max_value=10_000), min_size=5, max_size=100),
)
def test_partitioning_is_exhaustive_and_disjoint(num_nodes, keys):
    """partition_set moves every record exactly once."""
    from repro.placement.partitioner import HashPartitioner, partition_set

    cluster = PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=8 * MB)
    )
    src = cluster.create_set("src", page_size=256 * 1024, object_bytes=50)
    src.add_data([{"k": k, "i": i} for i, k in enumerate(keys)])
    dst = cluster.create_set("dst", page_size=256 * 1024, object_bytes=50)
    partition_set(src, dst, HashPartitioner(lambda r: r["k"], 8, key_name="k"))
    assert sorted(r["i"] for r in dst.scan_records()) == list(range(len(keys)))


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=50),
                  st.integers(min_value=1, max_value=5)),
        min_size=1, max_size=150,
    ),
    st.sampled_from(["data-aware", "lru", "mru", "dbmin-1", "dbmin-tuned"]),
)
def test_aggregation_identical_under_every_policy(pairs, policy):
    """Paging policy affects time, never answers."""
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB), policy=policy
    )
    data = cluster.create_set("h", durability="write-back", page_size=256 * 1024)
    buffer = VirtualHashBuffer(data, num_root_partitions=2, combiner=lambda a, b: a + b)
    expected: dict = {}
    for key, value in pairs:
        buffer.insert(key, value, nbytes=60)
        expected[key] = expected.get(key, 0) + value
    assert dict(buffer.items()) == expected
