"""Property-based tests for the I/O layers: tbl files and checkpoints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineProfile, PangeaCluster
from repro.cluster.checkpoint import checkpoint, restore
from repro.sim.devices import MB
from repro.tpch.tbl_io import read_tbl, write_tbl

comment_text = st.text(
    alphabet=st.characters(
        codec="ascii", categories=("Lu", "Ll", "Nd"), include_characters=" ",
    ),
    max_size=40,
)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.fixed_dictionaries(
            {
                "r_regionkey": st.integers(min_value=0, max_value=10_000),
                "r_name": comment_text.filter(lambda s: "|" not in s),
                "r_comment": comment_text.filter(lambda s: "|" not in s),
            }
        ),
        max_size=30,
    )
)
def test_tbl_round_trip_property(rows, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("tblprop"))
    write_tbl({"region": rows}, directory)
    back = read_tbl(directory, ["region"]).get("region", [])
    assert back == rows


@settings(max_examples=10, deadline=None)
@given(
    payloads=st.lists(
        st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
        min_size=1,
        max_size=200,
    ),
    object_bytes=st.integers(min_value=10, max_value=4096),
)
def test_checkpoint_round_trip_property(payloads, object_bytes, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("ckptprop"))
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB)
    )
    data = cluster.create_set(
        "d", durability="write-through", page_size=256 * 1024,
        object_bytes=object_bytes,
    )
    data.add_data(payloads)
    checkpoint(cluster, directory)
    fresh = PangeaCluster(
        num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB)
    )
    restore(fresh, directory)
    restored = fresh.get_set("d")
    assert sorted(restored.scan_records()) == sorted(payloads)
    assert restored.logical_bytes == data.logical_bytes
