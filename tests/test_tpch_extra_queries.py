"""The five extension TPC-H queries must match their oracles."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.tpch import (
    EXTRA_QUERIES,
    EXTRA_REFERENCE_QUERIES,
    load_tpch,
    register_tpch_replicas,
)

from .conftest import rows_match

SCALE = 0.004


@pytest.fixture(scope="module")
def plain():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    return cluster, tables


@pytest.fixture(scope="module")
def replicated():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    register_tpch_replicas(cluster)
    return cluster, tables


@pytest.mark.parametrize("name", sorted(EXTRA_QUERIES))
def test_extra_query_matches_reference(plain, name):
    cluster, tables = plain
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = EXTRA_QUERIES[name](scheduler)
    want = EXTRA_REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


@pytest.mark.parametrize("name", sorted(EXTRA_QUERIES))
def test_extra_query_matches_reference_with_replicas(replicated, name):
    cluster, tables = replicated
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = EXTRA_QUERIES[name](scheduler)
    want = EXTRA_REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


def test_extra_queries_have_informative_results(plain):
    """At this scale Q03, Q05 and Q10 must produce non-trivial output."""
    cluster, tables = plain
    for name in ("Q03", "Q05", "Q10"):
        rows = EXTRA_REFERENCE_QUERIES[name](tables)
        assert rows, name


def test_q19_disjunctive_predicate_is_selective(plain):
    cluster, tables = plain
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    result = EXTRA_QUERIES["Q19"](scheduler)
    assert len(result) == 1
    assert result[0]["revenue"] >= 0.0
