"""Tests for machine profiles and the per-node pipeline runner."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.query.pipeline import run_steps, scan_shard_records
from repro.sim.devices import GB, MB


class TestMachineProfiles:
    def test_r4_matches_paper_hardware(self):
        profile = MachineProfile.r4_2xlarge()
        assert profile.cores == 8
        assert profile.memory_bytes == 61 * GB
        assert profile.num_disks == 1

    def test_m3_matches_paper_hardware(self):
        profile = MachineProfile.m3_xlarge()
        assert profile.cores == 4
        assert profile.memory_bytes == 15 * GB
        assert profile.num_disks == 2

    def test_pool_override(self):
        profile = MachineProfile.r4_2xlarge(pool_bytes=10 * GB)
        assert profile.pool_bytes == 10 * GB

    def test_build_disks_named_per_node(self):
        disks = MachineProfile.m3_xlarge().build_disks(node_id=3)
        assert len(disks) == 2
        assert all("node3" in d.name for d in disks)

    def test_build_cpu_and_network(self):
        profile = MachineProfile.tiny()
        cpu = profile.build_cpu()
        net = profile.build_network()
        assert cpu.cores == profile.cores
        assert net.bandwidth == profile.network_bandwidth


class TestRunSteps:
    def node(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        return cluster.nodes[0]

    def test_filter_map_order(self):
        node = self.node()
        steps = [
            ("map", lambda r: r * 2),
            ("filter", lambda r: r > 4),
        ]
        out = list(run_steps(iter([1, 2, 3]), steps, node))
        assert out == [6]

    def test_flatmap_expansion(self):
        node = self.node()
        steps = [("flatmap", lambda r: [r] * r)]
        out = list(run_steps(iter([1, 2, 3]), steps, node))
        assert out == [1, 2, 2, 3, 3, 3]

    def test_flatmap_to_empty_drops_record(self):
        node = self.node()
        steps = [
            ("flatmap", lambda r: []),
            ("map", lambda r: r),  # must never see anything
        ]
        assert list(run_steps(iter([1, 2]), steps, node)) == []

    def test_no_steps_passthrough(self):
        node = self.node()
        assert list(run_steps(iter([1, 2]), [], node)) == [1, 2]

    def test_large_stream_charges_in_batches(self):
        node = self.node()
        before = node.clock.now
        list(run_steps(iter(range(5000)), [("map", lambda r: r)], node))
        assert node.clock.now > before

    def test_scan_shard_records_matches_pages(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(77)))
        assert sorted(scan_shard_records(data.shards[0])) == list(range(77))
