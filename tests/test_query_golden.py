"""Golden equivalence: the vectorized engine vs the record-at-a-time oracle.

Every plan shape runs twice on freshly built identical clusters — once
with ``QueryScheduler(vectorized=False)`` (the oracle) and once with the
default vectorized + node-parallel engine — and must produce

* bit-identical result records,
* bit-identical per-node simulated clocks (exact float equality),
* identical per-node network/disk byte counters, and
* identical SchedulerMetrics strategy decisions.

This is the contract that lets the vectorized engine be the default: it
is purely a wall-clock optimization, invisible to the cost model.
"""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.query.operators import ScanNode
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.sim.faults import FaultConfig, FaultInjector


def make_cluster(num_nodes=3):
    cluster = PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=64 * MB)
    )
    orders = cluster.create_set("orders", page_size=1 * MB, object_bytes=64)
    items = cluster.create_set("items", page_size=1 * MB, object_bytes=64)
    orders.add_data([{"o_id": i, "cust": i % 7} for i in range(300)])
    items.add_data(
        [{"i_id": i, "i_order": i % 300, "qty": i % 5 + 1} for i in range(1200)]
    )
    return cluster


def add_replicas(cluster):
    orders, items = cluster.get_set("orders"), cluster.get_set("items")
    o_rep = cluster.create_set("orders_by_id", page_size=1 * MB, object_bytes=64)
    partition_set(
        orders, o_rep, HashPartitioner(lambda r: r["o_id"], 12, key_name="o_id")
    )
    i_rep = cluster.create_set("items_by_order", page_size=1 * MB, object_bytes=64)
    partition_set(
        items, i_rep, HashPartitioner(lambda r: r["i_order"], 12, key_name="i_order")
    )
    register_replica(orders, o_rep, object_id_fn=lambda r: r["o_id"])
    register_replica(items, i_rep, object_id_fn=lambda r: r["i_id"])


def join_plan(how="inner"):
    return ScanNode("items").join(
        ScanNode("orders"),
        left_key=lambda r: r["i_order"],
        right_key=lambda r: r["o_id"],
        merge=lambda l, r: {**l, **(r or {"o_id": None, "cust": None})},
        left_key_name="i_order",
        right_key_name="o_id",
        how=how,
    )


def agg_plan(child):
    return child.aggregate(
        key_fn=lambda r: r["i_order"] % 16,
        seed_fn=lambda r: r["qty"],
        merge_fn=lambda a, b: a + b,
        final_fn=lambda k, acc: {"bucket": k, "qty": acc},
    )


def run_engine(plan_fn, vectorized, setup=None, fault_seed=None, **sched_kw):
    cluster = make_cluster()
    if setup is not None:
        setup(cluster)
    if fault_seed is not None:
        FaultInjector(
            seed=fault_seed,
            config=FaultConfig(
                disk_write_error_rate=0.02,
                disk_latency_spike_rate=0.05,
                net_slow_rate=0.05,
            ),
        ).attach(cluster)
    scheduler = QueryScheduler(
        cluster, object_bytes=64, vectorized=vectorized, **sched_kw
    )
    rows = scheduler.execute(plan_fn())
    return {
        "rows": rows,
        "clocks": [node.clock.now for node in cluster.nodes],
        "net": [node.network.stats.bytes_sent for node in cluster.nodes],
        "disk": [
            (node.disks.total_bytes_read(), node.disks.total_bytes_written())
            for node in cluster.nodes
        ],
        "metrics": scheduler.metrics,
    }


def assert_golden(plan_fn, expect_batches=True, **kw):
    oracle = run_engine(plan_fn, vectorized=False, **kw)
    vec = run_engine(plan_fn, vectorized=True, **kw)
    assert vec["rows"] == oracle["rows"]
    assert vec["clocks"] == oracle["clocks"]  # exact float equality
    assert vec["net"] == oracle["net"]
    assert vec["disk"] == oracle["disk"]
    assert (
        vec["metrics"].decision_counters() == oracle["metrics"].decision_counters()
    )
    assert oracle["metrics"].batches_processed == 0
    if expect_batches and kw.get("fault_seed") is None:
        assert vec["metrics"].batches_processed > 0
        assert vec["metrics"].stages_run > 0
    return oracle, vec


class TestScansAndPipelines:
    def test_plain_scan(self):
        assert_golden(lambda: ScanNode("orders"))

    def test_filter_map_pipeline(self):
        assert_golden(
            lambda: ScanNode("items")
            .filter(lambda r: r["qty"] > 2)
            .map(lambda r: {**r, "double": r["qty"] * 2})
        )

    def test_flatmap_fanout(self):
        assert_golden(
            lambda: ScanNode("orders").flat_map(
                lambda r: [{"o_id": r["o_id"], "copy": c} for c in range(3)]
            )
        )

    def test_filter_everything_out(self):
        assert_golden(lambda: ScanNode("orders").filter(lambda r: False))


class TestJoins:
    def test_copartitioned_join(self):
        oracle, _vec = assert_golden(join_plan, setup=add_replicas)
        assert oracle["metrics"].copartitioned_joins == 1

    def test_broadcast_join(self):
        oracle, _vec = assert_golden(join_plan)
        assert oracle["metrics"].broadcast_joins == 1

    def test_repartition_join(self):
        oracle, _vec = assert_golden(join_plan, broadcast_threshold=0)
        assert oracle["metrics"].repartition_joins == 1

    @pytest.mark.parametrize("how", ["left_semi", "left_anti", "left_outer"])
    def test_join_semantics(self, how):
        assert_golden(lambda: join_plan(how), broadcast_threshold=0)

    def test_join_with_trailing_steps(self):
        assert_golden(
            lambda: join_plan().filter(lambda r: r["cust"] == 1).map(
                lambda r: {"i_id": r["i_id"], "cust": r["cust"]}
            )
        )


class TestAggregationOrderLimit:
    def test_aggregate_over_scan(self):
        oracle, _vec = assert_golden(lambda: agg_plan(ScanNode("items")))
        assert oracle["metrics"].local_agg_stages == 1

    def test_aggregate_over_repartition_join(self):
        assert_golden(lambda: agg_plan(join_plan()), broadcast_threshold=0)

    def test_orderby(self):
        assert_golden(
            lambda: ScanNode("orders").order_by(lambda r: (r["cust"], r["o_id"]))
        )

    def test_limit(self):
        assert_golden(lambda: ScanNode("items").limit(17))

    def test_limit_charges_driver_transfers(self):
        # The satellite fix: limit ships every child record to the driver
        # and now pays the same transfers order_by pays for that movement.
        limit = run_engine(lambda: ScanNode("items").limit(17), vectorized=True)
        order = run_engine(
            lambda: ScanNode("items").order_by(lambda r: r["i_id"]), vectorized=True
        )
        assert limit["net"][1:] == order["net"][1:]
        assert sum(limit["net"]) > 0


class TestFaultInjectionSeeds:
    """With an enabled injector both engines take the oracle path, so the
    fault schedule replays identically from the seed."""

    @pytest.mark.parametrize("seed", [3, 11, 1234])
    def test_rate_faults_identical(self, seed):
        assert_golden(join_plan, broadcast_threshold=0, fault_seed=seed)

    def test_vectorized_engine_disabled_under_faults(self):
        vec = run_engine(
            lambda: agg_plan(ScanNode("items")), vectorized=True, fault_seed=7
        )
        assert vec["metrics"].batches_processed == 0
        assert vec["metrics"].parallel_stages == 0


class TestTpchShapedPlans:
    """Replica-served and shuffle TPC-H queries on a tiny generated scale."""

    @pytest.mark.parametrize("query", ["Q01", "Q04", "Q12", "Q14"])
    def test_query_golden(self, query):
        from repro.tpch import QUERIES, load_tpch, register_tpch_replicas

        def run(vectorized):
            cluster = PangeaCluster(
                num_nodes=4, profile=MachineProfile.tiny(pool_bytes=1 * GB)
            )
            load_tpch(cluster, scale=0.002, page_size=4 * MB)
            register_tpch_replicas(cluster)
            scheduler = QueryScheduler(
                cluster,
                broadcast_threshold=512 * MB,
                object_bytes=144,
                vectorized=vectorized,
            )
            rows = QUERIES[query](scheduler)
            return rows, [n.clock.now for n in cluster.nodes], scheduler.metrics

        oracle_rows, oracle_clocks, oracle_metrics = run(False)
        vec_rows, vec_clocks, vec_metrics = run(True)
        assert vec_rows == oracle_rows
        assert vec_clocks == oracle_clocks
        assert vec_metrics.decision_counters() == oracle_metrics.decision_counters()
