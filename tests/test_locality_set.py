"""Tests for locality sets and their per-node shards."""

import pytest

from repro import DurabilityType, MachineProfile, PangeaCluster
from repro.buffer.pool import BufferPoolFullError
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB))


class TestShardLifecycle:
    def test_new_page_is_placed_and_pinned(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        assert page.in_memory
        assert page.pinned
        assert page in shard.pool

    def test_seal_write_through_persists(self, cluster):
        data = cluster.create_set("s", durability="write-through", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("r", 10)
        shard.seal_page(page)
        assert page.on_disk
        assert not page.dirty
        assert shard.file.contains(page.page_id)

    def test_seal_write_back_does_not_persist(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("r", 10)
        shard.seal_page(page)
        assert not page.on_disk
        assert page.dirty

    def test_evict_flushes_dirty_write_back(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("payload", 10)
        shard.seal_page(page)
        shard.unpin_page(page)
        shard.evict_page(page)
        assert not page.in_memory
        assert page.on_disk
        assert shard.pool.stats.pageouts == 1

    def test_evict_dead_set_skips_flush(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("payload", 10)
        shard.unpin_page(page)
        data.end_lifetime()
        shard.evict_page(page)
        assert not page.on_disk
        assert shard.pool.stats.pageouts == 0

    def test_evict_pinned_rejected(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        with pytest.raises(ValueError):
            shard.evict_page(page)

    def test_pin_reloads_evicted_page(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append({"k": 1}, 10)
        shard.seal_page(page)
        shard.unpin_page(page)
        shard.evict_page(page)
        assert page.records == []
        shard.pin_page(page)
        assert page.in_memory
        assert page.records == [{"k": 1}]
        assert shard.pool.stats.pageins == 1

    def test_pin_lost_page_rejected(self, cluster):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        shard.unpin_page(page)
        page.offset = None  # simulate corruption: neither memory nor disk
        del shard.pool.pages[page.page_id]
        with pytest.raises(ValueError):
            shard.pin_page(page)

    def test_touch_updates_recency(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        before = page.last_access_tick
        shard.touch(page)
        assert page.last_access_tick > before
        assert data.attributes.access_recency == page.last_access_tick

    def test_clear_drops_everything(self, cluster):
        data = cluster.create_set("s", durability="write-through", page_size=1 * MB)
        data.add_data(["x"] * 100, nbytes_each=100)
        shard = data.shards[0]
        assert shard.pages
        shard.clear()
        assert not shard.pages
        assert shard.file.num_pages == 0


class TestLocalitySetDistribution:
    def test_add_data_spreads_over_nodes(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(100)))
        counts = [shard.num_objects for shard in data.shards.values()]
        assert sum(counts) == 100
        assert all(c > 0 for c in counts)

    def test_add_object_round_robin(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        for i in range(10):
            data.add_object(i)
        assert data.num_objects == 10
        assert all(s.num_objects == 5 for s in data.shards.values())

    def test_scan_returns_all_records(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(500)))
        assert sorted(data.scan_records()) == list(range(500))

    def test_logical_bytes(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=128)
        data.add_data(["r"] * 64)
        assert data.logical_bytes == 64 * 128

    def test_create_on_subset_of_nodes(self, cluster):
        data = cluster.create_set("only1", page_size=1 * MB, nodes=[1])
        assert list(data.shards) == [1]

    def test_page_fills_and_rolls(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=600 * 1024,
                                  nodes=[0])
        data.add_data(["a", "b", "c"])
        # 600KB objects: one per 1MB page.
        assert data.num_pages == 3

    def test_oversized_object_rejected(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, nodes=[0])
        with pytest.raises(ValueError):
            data.add_object("huge", nbytes=2 * MB)

    def test_spill_and_full_rescan(self, cluster):
        """Writing 4x the pool spills; a rescan still sees every record."""
        data = cluster.create_set(
            "big", durability="write-back", page_size=1 * MB, object_bytes=64 * 1024
        )
        records = list(range(1024))  # 64MB logical over two 8MB pools
        data.add_data(records)
        assert cluster.total_bytes_on_disk() > 0
        assert sorted(data.scan_records()) == records
