"""Regression tests for the cost-model and metrics accounting fixes:

1. ``eviction_cost`` prices striped I/O from the actual per-disk
   bandwidths (heterogeneous arrays), matching what ``DiskArray.read``/
   ``write`` charge — not disk 0's bandwidth divided by the disk count.
2. ``EvictionEvent.flushed`` reports whether the eviction actually wrote
   the page image out, not a flag derived after the fact.
3. ``format_table`` renders every column with matching header/row widths.
4. ``metrics.collect`` surfaces ``PagingSystem.stats`` and the network
   receive-side counters.
"""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.core.policies import eviction_cost, eviction_cost_breakdown
from repro.sim.clock import SimClock
from repro.sim.devices import DiskArray, DiskDevice, KB, MB
from repro.sim.metrics import (
    NODE_COLUMNS,
    ClusterMetrics,
    NodeMetrics,
    collect,
    format_table,
)


def heterogeneous_array(clock=None):
    """One fast disk and one 4x slower disk sharing the array."""
    fast = DiskDevice("fast", read_bandwidth=400 * MB,
                      write_bandwidth=400 * MB, io_latency=100e-6, clock=clock)
    slow = DiskDevice("slow", read_bandwidth=100 * MB,
                      write_bandwidth=100 * MB, io_latency=100e-6)
    return DiskArray([fast, slow])


class TestHeterogeneousEvictionCost:
    def test_estimate_matches_what_read_charges(self):
        clock = SimClock()
        disks = heterogeneous_array(clock)
        nbytes = 8 * MB
        estimated = disks.estimate_read_seconds(nbytes)
        charged = disks.read(nbytes)
        assert charged == estimated
        assert clock.now == charged

    def test_estimate_bounded_by_slowest_disk(self):
        disks = heterogeneous_array()
        nbytes = 8 * MB
        chunks = disks.striped_chunks(nbytes)
        slow = disks.disks[1]
        slow_share = slow.io_latency + chunks[1] / slow.read_bandwidth
        assert disks.estimate_read_seconds(nbytes) == pytest.approx(slow_share)
        # The old formula (disk 0's bandwidth spread over the array) is a
        # 2x underestimate here and must NOT be what the model prices.
        old_formula = nbytes / disks.disks[0].read_bandwidth / disks.num_disks
        assert disks.estimate_read_seconds(nbytes) > 1.9 * old_formula

    def test_eviction_cost_uses_actual_striping(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        node = cluster.nodes[0]
        slow = DiskDevice("slow", read_bandwidth=100 * MB,
                          write_bandwidth=100 * MB, io_latency=100e-6)
        node.disks.disks.append(slow)  # now heterogeneous: fast + slow
        data = cluster.create_set("s", durability="write-back",
                                  page_size=1 * MB, object_bytes=256 * KB)
        data.add_data(list(range(8)))
        shard = data.shards[0]
        page = next(p for p in shard.pages if p.in_memory)
        breakdown = eviction_cost_breakdown(
            shard, page, shard.paging.current_tick
        )
        assert breakdown.vr == node.disks.estimate_read_seconds(page.size)
        if breakdown.cw:
            assert breakdown.cw == node.disks.estimate_write_seconds(page.size)
        assert eviction_cost(
            shard, page, shard.paging.current_tick
        ) == pytest.approx(breakdown.total)

    def test_cost_still_ranks_dirty_above_clean(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        dirty = shard.new_page()
        dirty.append("x", 100)
        shard.unpin_page(dirty)
        clean = shard.new_page()
        shard.seal_page(clean)
        shard.unpin_page(clean)
        clean.on_disk = True
        clean.dirty = False
        now = shard.paging.current_tick
        assert eviction_cost(shard, dirty, now) > eviction_cost(shard, clean, now)


class TestEvictionFlushedFlag:
    def _one_page_shard(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        page.append("x", 100)
        shard.seal_page(page)
        shard.unpin_page(page)
        return cluster, shard, page

    def test_dirty_unpersisted_page_reports_flushed(self):
        _cluster, shard, page = self._one_page_shard()
        result = shard.evict_page(page)
        assert result.flushed is True
        assert result.freed == page.size
        assert shard.pool.stats.pageouts == 1

    def test_already_persisted_dirty_page_not_reported_flushed(self):
        """The original bug: flushed was derived as ``on_disk and was_dirty``
        after eviction, claiming a flush for dirty pages whose image was
        already persisted even though no write happened."""
        _cluster, shard, page = self._one_page_shard()
        shard.evict_page(page)          # first eviction persists the image
        shard.pin_page(page)            # page back in memory, clean
        shard.unpin_page(page)
        page.dirty = True               # dirty again, but image exists
        pageouts_before = shard.pool.stats.pageouts
        written_before = shard.node.disks.total_bytes_written()
        result = shard.evict_page(page)
        assert result.flushed is False  # no write happened...
        assert shard.pool.stats.pageouts == pageouts_before
        assert shard.node.disks.total_bytes_written() == written_before

    def test_trace_event_flushed_matches_ground_truth(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        paging = cluster.nodes[0].paging
        paging.enable_trace()
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        data.add_data(list(range(64)))  # 4MB over a 2MB pool: must evict
        for _ in range(2):
            list(data.scan_records())
        events = list(paging.trace)
        assert events
        flush_count = sum(1 for e in events if e.flushed)
        # Every flushed=True event corresponds to a real pageout; clean
        # re-read pages evicted again must not claim a flush.
        assert flush_count <= cluster.nodes[0].pool.stats.pageouts
        assert any(e.was_dirty and e.flushed for e in events)
        assert any(not e.flushed for e in events)

    def test_dead_set_pages_never_flush(self):
        _cluster, shard, page = self._one_page_shard()
        shard.dataset.end_lifetime()
        result = shard.evict_page(page)
        assert result.flushed is False
        assert shard.pool.stats.pageouts == 0


def tiny_snapshot():
    return ClusterMetrics(nodes=[
        NodeMetrics(
            node_id=0, seconds=1.234, pool_used_bytes=3 * MB,
            pool_capacity_bytes=8 * MB, disk_bytes_read=12 * MB,
            disk_bytes_written=5 * MB, network_bytes_sent=2 * MB,
            evictions=7, pageouts=4, pageins=3, bytes_paged_out=4 * MB,
            bytes_paged_in=3 * MB, network_bytes_received=1 * MB,
            eviction_rounds=6, pages_evicted=7,
        ),
        NodeMetrics(
            node_id=1, seconds=1.5, pool_used_bytes=0,
            pool_capacity_bytes=8 * MB, disk_bytes_read=0,
            disk_bytes_written=0, network_bytes_sent=0,
            evictions=0, pageouts=0, pageins=0, bytes_paged_out=0,
            bytes_paged_in=0,
        ),
    ])


class TestFormatTableAlignment:
    def test_header_and_rows_share_column_edges(self):
        """The original bug: the net column printed 8 wide under a 9-wide
        header, shearing every column after it."""
        lines = format_table(tiny_snapshot()).splitlines()
        table_lines = lines[:3]  # header + one line per node
        assert len({len(line) for line in table_lines}) == 1
        # Every cell sits right-aligned inside its declared column span.
        start = 0
        for _name, width in NODE_COLUMNS:
            end = start + width
            for line in table_lines:
                cell = line[start:end]
                assert cell == cell.strip().rjust(width)
            # Columns are separated by exactly one space.
            for line in table_lines:
                if end < len(line):
                    assert line[end] == " "
            start = end + 1

    def test_every_value_lands_in_its_column(self):
        lines = format_table(tiny_snapshot()).splitlines()
        header, row0 = lines[0], lines[1]

        def column(line, index):
            start = sum(w + 1 for _n, w in NODE_COLUMNS[:index])
            return line[start:start + NODE_COLUMNS[index][1]].strip()

        assert column(header, 4) == "net(tx/rx,MB)"
        assert column(row0, 4) == "2/1"
        assert column(header, 6) == "rounds"
        assert column(row0, 6) == "6"
        assert column(row0, 7) == "4/3"

    def test_totals_line_present(self):
        text = format_table(tiny_snapshot())
        assert "total:" in text
        assert "6 eviction rounds" in text


class TestCollectSurfacesEverything:
    def _busy_cluster(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        data.add_data(list(range(128)))  # 8MB over two 2MB pools
        list(data.scan_records())
        return cluster

    def test_paging_stats_surfaced(self):
        """The original bug: collect() dropped PagingSystem.stats entirely."""
        cluster = self._busy_cluster()
        snapshot = collect(cluster)
        for node_metrics, node in zip(snapshot.nodes, cluster.nodes):
            assert node_metrics.eviction_rounds == node.paging.stats.eviction_rounds
            assert node_metrics.pages_evicted == node.paging.stats.pages_evicted
        assert snapshot.total_eviction_rounds > 0

    def test_receive_counters_surfaced(self):
        cluster = self._busy_cluster()
        sender, receiver = cluster.nodes
        sender.network.transfer(3 * MB, num_messages=2, peer=receiver.network)
        snapshot = collect(cluster)
        assert snapshot.nodes[1].network_bytes_received == 3 * MB
        assert snapshot.nodes[1].network_messages_received == 2
        assert snapshot.nodes[0].network_bytes_received == 0
        assert snapshot.total_network_bytes_received == 3 * MB

    def test_transfer_to_self_not_double_counted(self):
        cluster = self._busy_cluster()
        node = cluster.nodes[0]
        before = node.network.stats.bytes_received
        node.network.transfer(1 * MB, peer=node.network)
        assert node.network.stats.bytes_received == before

    def test_per_set_metrics_in_snapshot(self):
        cluster = self._busy_cluster()
        snapshot = collect(cluster)
        for node_metrics in snapshot.nodes:
            assert "s" in node_metrics.sets
        assert snapshot.set_totals()["s"].created_pages == 16
