"""Tests for the simulated clocks."""

import pytest

from repro.sim.clock import SimClock, TickCounter


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == pytest.approx(3.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_moves_forward(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_never_rewinds(self):
        clock = SimClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = SimClock()
        clock.advance(7.0)
        clock.reset()
        assert clock.now == 0.0


class TestTickCounter:
    def test_starts_at_zero(self):
        assert TickCounter().now == 0

    def test_next_increments(self):
        ticks = TickCounter()
        assert ticks.next() == 1
        assert ticks.next() == 2
        assert ticks.now == 2

    def test_reset(self):
        ticks = TickCounter()
        ticks.next()
        ticks.reset()
        assert ticks.now == 0
