"""Tests for the computation-process model: circular buffer, data proxy,
long-living workers, waves of tasks."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.compute import CircularBuffer, DataProxy, WavesOfTasks, WorkerPool
from repro.compute.circular import PageMeta
from repro.sim.devices import MB


def meta(i):
    return PageMeta(page_id=i, offset=i * 100, size=100, num_objects=1)


class TestCircularBuffer:
    def test_fifo_order(self):
        ring = CircularBuffer(4)
        for i in range(3):
            ring.put(meta(i))
        assert [ring.get().page_id for _ in range(3)] == [0, 1, 2]

    def test_full_put_stalls(self):
        ring = CircularBuffer(2)
        assert ring.put(meta(0))
        assert ring.put(meta(1))
        assert not ring.put(meta(2))
        assert ring.producer_stalls == 1

    def test_empty_get_stalls(self):
        ring = CircularBuffer(2)
        assert ring.get() is None
        assert ring.consumer_stalls == 1

    def test_wraparound(self):
        ring = CircularBuffer(2)
        for i in range(10):
            ring.put(meta(i))
            assert ring.get().page_id == i

    def test_close_semantics(self):
        ring = CircularBuffer(2)
        ring.put(meta(0))
        ring.close()
        assert not ring.drained
        assert ring.get().page_id == 0
        assert ring.drained
        with pytest.raises(ValueError):
            ring.put(meta(1))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CircularBuffer(0)


@pytest.fixture
def loaded_cluster():
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB)
    )
    data = cluster.create_set("s", durability="write-back",
                              page_size=1 * MB, object_bytes=64 * 1024)
    data.add_data(list(range(128)))  # 8MB over two 8MB pools
    return cluster, data


class TestDataProxy:
    def test_serves_every_page_once(self, loaded_cluster):
        cluster, data = loaded_cluster
        shard = data.shards[0]
        proxy = DataProxy(shard)
        seen = []
        while True:
            page = proxy.next_page()
            if page is None:
                break
            seen.append(page.page_id)
            proxy.release_page(page)
        assert sorted(seen) == sorted(p.page_id for p in shard.pages)
        assert proxy.drained

    def test_pages_pinned_while_served(self, loaded_cluster):
        cluster, data = loaded_cluster
        shard = data.shards[0]
        proxy = DataProxy(shard)
        page = proxy.next_page()
        assert page.pinned
        proxy.release_page(page)
        assert not page.pinned

    def test_release_unknown_page_rejected(self, loaded_cluster):
        cluster, data = loaded_cluster
        shard = data.shards[0]
        proxy = DataProxy(shard)
        with pytest.raises(ValueError):
            proxy.release_page(shard.pages[0])

    def test_close_releases_outstanding_pins(self, loaded_cluster):
        cluster, data = loaded_cluster
        shard = data.shards[0]
        proxy = DataProxy(shard)
        page = proxy.next_page()
        proxy.close()
        assert not page.pinned

    def test_metadata_messages_charged(self, loaded_cluster):
        cluster, data = loaded_cluster
        shard = data.shards[0]
        before = shard.node.network.stats.num_messages
        proxy = DataProxy(shard)
        while True:
            page = proxy.next_page()
            if page is None:
                break
            proxy.release_page(page)
        # GetSetPages + one PagePinned per page.
        assert shard.node.network.stats.num_messages >= before + 1 + len(shard.pages)


class TestWorkerPool:
    def test_processes_every_page(self, loaded_cluster):
        cluster, data = loaded_cluster
        pool = WorkerPool(cluster, workers_per_node=4)
        result = pool.run_stage(data, page_fn=lambda p: p.num_objects)
        assert result.pages_processed == data.num_pages
        assert sum(result.all_results()) == data.num_objects

    def test_stage_time_positive(self, loaded_cluster):
        cluster, data = loaded_cluster
        pool = WorkerPool(cluster)
        result = pool.run_stage(data, page_fn=lambda p: None,
                                seconds_per_object=1e-6)
        assert result.seconds > 0

    def test_more_workers_is_faster(self, loaded_cluster):
        cluster, data = loaded_cluster
        slow = WorkerPool(cluster, workers_per_node=1).run_stage(
            data, page_fn=lambda p: None, seconds_per_object=1e-5
        )
        fast = WorkerPool(cluster, workers_per_node=4).run_stage(
            data, page_fn=lambda p: None, seconds_per_object=1e-5
        )
        assert fast.seconds < slow.seconds

    def test_invalid_worker_count(self, loaded_cluster):
        cluster, _data = loaded_cluster
        with pytest.raises(ValueError):
            WorkerPool(cluster, workers_per_node=0)


class TestWavesVsWorkers:
    def test_same_answers(self, loaded_cluster):
        cluster, data = loaded_cluster
        workers = WorkerPool(cluster, workers_per_node=4).run_stage(
            data, page_fn=lambda p: p.num_objects
        )
        waves = WavesOfTasks(cluster, cores_per_node=4).run_stage(
            data, page_fn=lambda p: p.num_objects
        )
        assert sorted(workers.all_results()) == sorted(waves.all_results())

    def test_waves_pay_per_task_overhead(self, loaded_cluster):
        cluster, data = loaded_cluster
        workers = WorkerPool(cluster, workers_per_node=4).run_stage(
            data, page_fn=lambda p: None
        )
        waves = WavesOfTasks(cluster, cores_per_node=4).run_stage(
            data, page_fn=lambda p: None
        )
        assert waves.tasks_scheduled == data.num_pages
        assert waves.seconds > workers.seconds
