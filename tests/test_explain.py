"""Tests for EXPLAIN."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.query.explain import explain
from repro.query.operators import ScanNode
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    c = PangeaCluster(num_nodes=2, profile=MachineProfile.tiny(pool_bytes=64 * MB))
    orders = c.create_set("orders", page_size=1 * MB, object_bytes=64)
    items = c.create_set("items", page_size=1 * MB, object_bytes=64)
    orders.add_data([{"o_id": i} for i in range(100)])
    items.add_data([{"i_id": i, "i_order": i % 100} for i in range(400)])
    c.manager.update_statistics(orders)
    c.manager.update_statistics(items)
    return c


def join_plan():
    return ScanNode("items").join(
        ScanNode("orders"),
        left_key=lambda r: r["i_order"],
        right_key=lambda r: r["o_id"],
        merge=lambda l, r: {**l, **r},
        left_key_name="i_order",
        right_key_name="o_id",
    )


class TestExplain:
    def test_scan_with_pipeline(self, cluster):
        scheduler = QueryScheduler(cluster, object_bytes=64)
        text = explain(
            scheduler,
            ScanNode("orders").filter(lambda r: True).map(lambda r: r),
        )
        assert "Scan orders" in text
        assert "1x filter" in text
        assert "1x map" in text

    def test_broadcast_join_explained(self, cluster):
        scheduler = QueryScheduler(cluster, broadcast_threshold=1 * MB,
                                   object_bytes=64)
        text = explain(scheduler, join_plan())
        assert "broadcast" in text
        assert "Scan items" in text
        assert "Scan orders" in text

    def test_repartition_join_explained(self, cluster):
        scheduler = QueryScheduler(cluster, broadcast_threshold=0, object_bytes=64)
        text = explain(scheduler, join_plan())
        assert "repartition" in text

    def test_copartitioned_join_explained(self, cluster):
        orders, items = cluster.get_set("orders"), cluster.get_set("items")
        o_rep = cluster.create_set("orders_by_id", page_size=1 * MB, object_bytes=64)
        partition_set(orders, o_rep,
                      HashPartitioner(lambda r: r["o_id"], 8, key_name="o_id"))
        i_rep = cluster.create_set("items_by_order", page_size=1 * MB,
                                   object_bytes=64)
        partition_set(items, i_rep,
                      HashPartitioner(lambda r: r["i_order"], 8, key_name="i_order"))
        register_replica(orders, o_rep, object_id_fn=lambda r: r["o_id"])
        register_replica(items, i_rep, object_id_fn=lambda r: r["i_id"])
        scheduler = QueryScheduler(cluster, broadcast_threshold=0, object_bytes=64)
        text = explain(scheduler, join_plan())
        assert "co-partitioned" in text
        assert "orders_by_id" in text
        assert "no shuffle" in text

    def test_explain_does_not_execute(self, cluster):
        scheduler = QueryScheduler(cluster, object_bytes=64)
        before = cluster.simulated_seconds()
        explain(scheduler, join_plan())
        assert cluster.simulated_seconds() == before
        assert scheduler.metrics.broadcast_joins == 0
        assert scheduler.metrics.replica_substitutions == 0

    def test_aggregate_and_orderby_explained(self, cluster):
        scheduler = QueryScheduler(cluster, object_bytes=64)
        plan = (
            ScanNode("items")
            .aggregate(
                key_fn=lambda r: r["i_order"],
                seed_fn=lambda r: 1,
                merge_fn=lambda a, b: a + b,
                final_fn=lambda k, n: {"k": k, "n": n},
            )
            .order_by(lambda r: r["k"])
            .limit(5)
        )
        text = explain(scheduler, plan)
        assert "Aggregate" in text
        assert "OrderBy" in text
        assert "Limit 5" in text

    def test_derived_build_side_marked_runtime(self, cluster):
        scheduler = QueryScheduler(cluster, object_bytes=64)
        derived_right = ScanNode("orders").aggregate(
            key_fn=lambda r: r["o_id"] % 3,
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda k, n: {"g": k, "n": n},
        )
        plan = ScanNode("items").join(
            derived_right,
            left_key=lambda r: r["i_order"] % 3,
            right_key=lambda r: r["g"],
            merge=lambda l, r: l,
        )
        text = explain(scheduler, plan)
        assert "runtime" in text

    def test_explain_matches_tpch_query(self, cluster):
        """Explain works on a real TPC-H plan shape."""
        from repro.tpch import load_tpch

        tpch = PangeaCluster(num_nodes=2,
                             profile=MachineProfile.tiny(pool_bytes=256 * MB))
        load_tpch(tpch, scale=0.001)
        scheduler = QueryScheduler(tpch, broadcast_threshold=4 * MB,
                                   object_bytes=144)
        plan = ScanNode("lineitem").join(
            ScanNode("orders"),
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: li,
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        text = explain(scheduler, plan)
        assert "Scan lineitem" in text
        assert "Join" in text
