"""Edge-case and robustness tests across modules."""

import pytest

from repro import BufferPoolFullError, MachineProfile, PangeaCluster
from repro.services.hashsvc import VirtualHashBuffer
from repro.sim.devices import KB, MB


class TestHashServiceLimits:
    def test_finalize_raises_when_map_cannot_fit(self):
        """Resident finalize on a map larger than the pool fails clearly
        (items() streaming still works)."""
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("h", durability="write-back",
                                  page_size=512 * KB)
        buffer = VirtualHashBuffer(data, num_root_partitions=2)
        for i in range(2000):  # ~8MB of entries against a 2MB pool
            buffer.insert(i, i, nbytes=4096)
        with pytest.raises(BufferPoolFullError):
            buffer.finalize(max_rounds_per_spill=2)

    def test_streaming_items_still_complete_when_finalize_would_fail(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("h", durability="write-back",
                                  page_size=512 * KB)
        buffer = VirtualHashBuffer(data, num_root_partitions=2)
        for i in range(2000):
            buffer.insert(i, i, nbytes=4096)
        assert len(dict(buffer.items())) == 2000

    def test_oversized_entry_rejected(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        data = cluster.create_set("h", durability="write-back", page_size=256 * KB)
        buffer = VirtualHashBuffer(data, num_root_partitions=1)
        with pytest.raises(ValueError):
            buffer.insert("k", "v", nbytes=1 * MB)


class TestDropSetRobustness:
    def test_drop_set_with_spilled_pages(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=128 * KB)
        data.add_data(list(range(64)))  # spills
        assert cluster.total_bytes_on_disk() > 0
        cluster.drop_set("s")
        assert cluster.total_bytes_on_disk() == 0
        assert cluster.nodes[0].pool.used_bytes == 0

    def test_drop_missing_set_raises(self):
        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        with pytest.raises(KeyError):
            cluster.drop_set("ghost")

    def test_set_recreatable_after_drop(self):
        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        cluster.create_set("s", page_size=1 * MB)
        cluster.drop_set("s")
        again = cluster.create_set("s", page_size=1 * MB, object_bytes=10)
        again.add_data([1, 2, 3])
        assert again.num_objects == 3


class TestManagerEdges:
    def test_replica_group_lookup_missing(self):
        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        with pytest.raises(KeyError):
            cluster.manager.replica_group(999)

    def test_statistics_missing_set(self):
        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        with pytest.raises(KeyError):
            cluster.manager.statistics("ghost")

    def test_note_operation_done_resets(self):
        from repro import CurrentOperation

        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=10)
        data.add_data([1])
        data.note_operation_done()
        assert data.attributes.current_operation is CurrentOperation.NONE


class TestDiskArrayEdges:
    def test_odd_byte_counts_conserved(self):
        from repro.sim.devices import DiskArray, DiskDevice

        array = DiskArray([DiskDevice(), DiskDevice(), DiskDevice()])
        array.write(1_000_003)
        assert array.total_bytes_written() == 1_000_003
        array.read(999_999)
        assert array.total_bytes_read() == 999_999

    def test_zero_byte_transfer(self):
        from repro.sim.devices import DiskArray, DiskDevice

        array = DiskArray([DiskDevice()])
        cost = array.write(0)
        assert cost >= 0


class TestSlabPoolAdapterEdges:
    def test_free_and_reuse_cycle(self):
        from repro.buffer.page import Page
        from repro.buffer.pool import BufferPool

        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        pages = [Page(i, 1 * MB) for i in range(6)]
        for page in pages:
            pool.place(page)
        for page in pages[:3]:
            pool.release(page)
        replacements = [Page(10 + i, 1 * MB) for i in range(3)]
        for page in replacements:
            pool.place(page)
        assert all(p.in_memory for p in replacements)


class TestSchedulerEdges:
    def test_empty_set_scan(self):
        from repro.query import QueryScheduler, ScanNode

        cluster = PangeaCluster(num_nodes=2, profile=MachineProfile.tiny())
        cluster.create_set("empty", page_size=1 * MB)
        scheduler = QueryScheduler(cluster, object_bytes=10)
        assert scheduler.execute(ScanNode("empty")) == []

    def test_join_with_empty_right(self):
        from repro.query import QueryScheduler, ScanNode

        cluster = PangeaCluster(num_nodes=2, profile=MachineProfile.tiny())
        left = cluster.create_set("left", page_size=1 * MB, object_bytes=10)
        left.add_data([{"k": 1}])
        cluster.create_set("right", page_size=1 * MB)
        scheduler = QueryScheduler(cluster, object_bytes=10)
        plan = ScanNode("left").join(
            ScanNode("right"),
            left_key=lambda r: r["k"],
            right_key=lambda r: r["k"],
            merge=lambda l, r: l,
            how="left_outer",
        )
        rows = scheduler.execute(plan)
        assert len(rows) == 1

    def test_limit_zero(self):
        from repro.query import QueryScheduler, ScanNode

        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=10)
        data.add_data([1, 2, 3])
        scheduler = QueryScheduler(cluster, object_bytes=10)
        assert scheduler.execute(ScanNode("s").limit(0)) == []
