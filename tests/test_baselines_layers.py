"""Tests for HDFS, Alluxio, Ignite, Redis, and STL-map baselines."""

import pytest

from repro.baselines.alluxio import AlluxioOutOfMemoryError, AlluxioWorker
from repro.baselines.hdfs import HdfsCluster
from repro.baselines.host import BaselineHost
from repro.baselines.ignite import IgniteSegfaultError, IgniteSharedRdd
from repro.baselines.redis_kv import RedisOutOfMemoryError, RedisServer
from repro.baselines.stl_map import StlUnorderedMap
from repro.sim.devices import GB, MB
from repro.sim.profiles import MachineProfile


@pytest.fixture
def host():
    return BaselineHost(MachineProfile.m3_xlarge())


class TestHdfs:
    def test_write_read_roundtrip(self, host):
        hdfs = HdfsCluster([host], replication=1)
        hdfs.write("f", 64 * MB, client=host)
        hdfs.read("f", 64 * MB, client=host)
        assert hdfs.file_bytes("f") == 64 * MB

    def test_read_missing_raises(self, host):
        hdfs = HdfsCluster([host])
        with pytest.raises(KeyError):
            hdfs.read("nope", 1, client=host)

    def test_replication_multiplies_disk_writes(self):
        hosts = [BaselineHost(MachineProfile.m3_xlarge(), i) for i in range(3)]
        hdfs = HdfsCluster(hosts, replication=3)
        hdfs.write("f", 64 * MB, client=hosts[0])
        for fs in hdfs._datanode_fs:
            fs_bytes = sum(f.total_bytes for f in fs._files.values())
            assert fs_bytes == 64 * MB

    def test_slower_than_raw_disk(self, host):
        """HDFS pays copies and per-block latency over the raw device."""
        hdfs = HdfsCluster([host], replication=1)
        before = host.now
        hdfs.write("f", 256 * MB, client=host)
        hdfs_time = host.now - before
        raw = 256 * MB / host.disks.disks[0].write_bandwidth / host.disks.num_disks
        assert hdfs_time > raw * 0.5  # still same order, but with overheads

    def test_invalid_replication(self, host):
        with pytest.raises(ValueError):
            HdfsCluster([host], replication=2)

    def test_delete(self, host):
        hdfs = HdfsCluster([host])
        hdfs.write("f", 1 * MB, client=host)
        hdfs.delete("f")
        assert hdfs.file_bytes("f") == 0


class TestAlluxio:
    def test_write_read_roundtrip(self, host):
        worker = AlluxioWorker(host, memory_bytes=64 * MB)
        worker.write("f", 32 * MB, num_objects=1000)
        worker.read("f", 32 * MB, num_objects=1000)
        assert worker.file_bytes("f") == 32 * MB

    def test_cannot_exceed_memory(self, host):
        worker = AlluxioWorker(host, memory_bytes=16 * MB)
        with pytest.raises(AlluxioOutOfMemoryError):
            worker.write("f", 17 * MB)

    def test_serde_cost_charged(self, host):
        worker = AlluxioWorker(host, memory_bytes=1 * GB)
        before = host.now
        worker.write("f", 256 * MB, num_objects=1)
        elapsed = host.now - before
        assert elapsed >= 256 * MB / host.cpu.serialize_bandwidth / host.cpu.cores

    def test_delete_frees_memory(self, host):
        worker = AlluxioWorker(host, memory_bytes=16 * MB)
        worker.write("f", 10 * MB)
        worker.delete("f")
        assert worker.used_bytes == 0
        worker.write("g", 16 * MB)

    def test_read_missing_raises(self, host):
        with pytest.raises(KeyError):
            AlluxioWorker(host, memory_bytes=1 * MB).read("f", 1)


class TestIgnite:
    def test_write_read_roundtrip(self, host):
        shared = IgniteSharedRdd(host, heap_bytes=1 * GB, offheap_bytes=1 * GB)
        shared.write("rdd", 64 * MB, num_objects=100)
        shared.read("rdd", 64 * MB, num_objects=100)

    def test_offheap_overflow_segfaults(self, host):
        shared = IgniteSharedRdd(host, heap_bytes=1 * GB, offheap_bytes=32 * MB)
        with pytest.raises(IgniteSegfaultError):
            shared.write("rdd", 33 * MB)

    def test_compaction_inflates_cost(self, host):
        no_compact = IgniteSharedRdd(
            host, heap_bytes=1 * GB, offheap_bytes=1 * GB, compaction_fraction=0.0
        )
        before = host.now
        no_compact.write("a", 64 * MB)
        cheap = host.now - before
        compact = IgniteSharedRdd(
            host, heap_bytes=1 * GB, offheap_bytes=1 * GB, compaction_fraction=0.4
        )
        before = host.now
        compact.write("b", 64 * MB)
        costly = host.now - before
        assert costly > cheap * 1.5

    def test_total_memory_includes_heap(self, host):
        shared = IgniteSharedRdd(host, heap_bytes=5 * GB, offheap_bytes=30 * GB)
        assert shared.total_memory_bytes == 35 * GB


class TestRedis:
    def test_ops_charge_round_trips(self, host):
        redis = RedisServer(host, memory_bytes=1 * GB)
        before = host.now
        redis.execute_ops(1_000_000, new_keys=1_000_000)
        assert host.now - before >= 1_000_000 * redis.per_op_seconds / host.cpu.cores

    def test_thrash_past_memory(self, host):
        redis = RedisServer(host, memory_bytes=12 * MB, fail_over_factor=2.0)
        redis.execute_ops(200_000, new_keys=200_000)  # ~20.8MB of entries
        before = host.now
        redis.execute_ops(10_000)
        slow = host.now - before
        fresh_host = BaselineHost(MachineProfile.m3_xlarge())
        fresh = RedisServer(fresh_host, memory_bytes=1 * GB)
        before = fresh_host.now
        fresh.execute_ops(10_000)
        fast = fresh_host.now - before
        assert slow > fast * 2

    def test_fails_well_past_memory(self, host):
        redis = RedisServer(host, memory_bytes=1 * MB, fail_over_factor=2.0)
        with pytest.raises(RedisOutOfMemoryError):
            redis.execute_ops(100_000, new_keys=100_000)

    def test_flush_all_resets(self, host):
        redis = RedisServer(host, memory_bytes=1 * GB)
        redis.execute_ops(10, new_keys=10)
        redis.flush_all()
        assert redis.num_keys == 0

    def test_invalid_counts(self, host):
        redis = RedisServer(host)
        with pytest.raises(ValueError):
            redis.execute_ops(5, new_keys=6)


class TestStlMap:
    def test_in_memory_is_fast(self, host):
        table = StlUnorderedMap(host, memory_bytes=1 * GB)
        table.insert_ops(100_000, new_keys=100_000)
        assert table.vm.stats.bytes_paged_in == 0

    def test_swaps_past_memory(self, host):
        table = StlUnorderedMap(host, memory_bytes=4 * MB)
        table.insert_ops(100_000, new_keys=100_000)  # ~8.8MB of entries
        assert table.vm.stats.bytes_paged_in > 0

    def test_worse_per_entry_overhead_than_slab(self, host):
        """The architectural reason Pangea spills later (Tab. 4)."""
        from repro.buffer.slab import SlabAllocator

        slab = SlabAllocator(1 << 20, chunk_min=80, growth_factor=1.25)
        chunk = slab.chunk_size_for(48)
        table = StlUnorderedMap(host)
        assert table.per_entry_bytes > chunk

    def test_clear(self, host):
        table = StlUnorderedMap(host, memory_bytes=1 * GB)
        table.insert_ops(1000, new_keys=1000)
        table.clear()
        assert table.num_keys == 0
        assert table.needed_bytes == 0
