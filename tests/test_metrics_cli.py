"""Tests for the metrics module and the command-line interface."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.__main__ import main
from repro.sim.devices import MB
from repro.sim.metrics import collect, format_table


@pytest.fixture
def busy_cluster():
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.tiny(pool_bytes=4 * MB)
    )
    data = cluster.create_set("s", durability="write-back",
                              page_size=1 * MB, object_bytes=256 * 1024)
    data.add_data(list(range(64)))  # 16MB over two 4MB pools
    list(data.scan_records())
    return cluster


class TestMetrics:
    def test_collect_covers_every_node(self, busy_cluster):
        snapshot = collect(busy_cluster)
        assert [n.node_id for n in snapshot.nodes] == [0, 1]

    def test_counters_reflect_activity(self, busy_cluster):
        snapshot = collect(busy_cluster)
        assert snapshot.simulated_seconds > 0
        assert snapshot.total_disk_bytes > 0
        assert snapshot.total_evictions > 0

    def test_pool_utilization_bounded(self, busy_cluster):
        snapshot = collect(busy_cluster)
        for node in snapshot.nodes:
            assert 0.0 <= node.pool_utilization <= 1.0

    def test_skew_reasonable(self, busy_cluster):
        snapshot = collect(busy_cluster)
        assert snapshot.skew() >= 1.0

    def test_format_table_renders(self, busy_cluster):
        text = format_table(collect(busy_cluster))
        assert "node" in text
        assert "total:" in text
        assert str(busy_cluster.nodes[0].node_id) in text

    def test_empty_cluster_metrics(self):
        cluster = PangeaCluster(num_nodes=1, profile=MachineProfile.tiny())
        snapshot = collect(cluster)
        assert snapshot.simulated_seconds == 0.0
        assert snapshot.skew() == 1.0


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "r4.2xlarge" in out

    def test_tpch_gen(self, capsys):
        assert main(["tpch-gen", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out

    def test_tpch_run_small(self, capsys):
        assert main(["tpch-run", "--scale", "0.001", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "Q01" in out
        assert "Q22" in out

    def test_tpch_run_extended(self, capsys):
        assert main(
            ["tpch-run", "--scale", "0.001", "--nodes", "2", "--extended"]
        ) == 0
        out = capsys.readouterr().out
        assert "Q03" in out
        assert "Q19" in out

    def test_policies(self, capsys):
        assert main(["policies", "--pool-mb", "8",
                     "--policies", "data-aware,lru"]) == 0
        out = capsys.readouterr().out
        assert "data-aware" in out

    def test_kmeans_quick(self, capsys):
        assert main(
            ["kmeans", "--points", "100000000", "--nodes", "2",
             "--iterations", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "pangea" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
