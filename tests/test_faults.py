"""Tests for deterministic fault injection, retries, and page integrity."""

import pytest

from repro import (
    FaultConfig,
    FaultInjector,
    MachineProfile,
    PageCorruptionError,
    PangeaCluster,
)
from repro.fs.page_file import SetFile, page_checksum
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.sim.clock import SimClock
from repro.sim.devices import MB, DiskArray, DiskDevice
from repro.sim.faults import TransientDiskError


def tiny_cluster(num_nodes=2, pool_mb=32):
    return PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=pool_mb * MB)
    )


def build_replicated(num_nodes=4, rows=600, page_size=1 * MB):
    cluster = tiny_cluster(num_nodes=num_nodes)
    src = cluster.create_set("src", page_size=page_size, object_bytes=100)
    src.add_data([{"a": i, "b": (i * 131) % 997, "id": i} for i in range(rows)])
    rep_a = cluster.create_set("rep_a", page_size=page_size, object_bytes=100)
    partition_set(src, rep_a, HashPartitioner(lambda r: r["a"], 16, key_name="a"))
    rep_b = cluster.create_set("rep_b", page_size=page_size, object_bytes=100)
    partition_set(src, rep_b, HashPartitioner(lambda r: r["b"], 16, key_name="b"))
    group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
    return cluster, group, rep_a, rep_b


class TestInjectorWiring:
    def test_attach_and_detach(self):
        cluster = tiny_cluster()
        injector = FaultInjector(seed=1).attach(cluster)
        for node in cluster.nodes:
            assert node.fault_injector is injector
            assert node.disks.fault_hook is not None
            assert node.network.fault_hook is not None
        injector.detach()
        for node in cluster.nodes:
            assert node.fault_injector is None
            assert node.disks.fault_hook is None
            assert node.network.fault_hook is None

    def test_disabled_injector_is_inert(self):
        cluster = tiny_cluster(num_nodes=1)
        injector = FaultInjector(
            seed=1, config=FaultConfig(disk_write_error_rate=1.0)
        ).attach(cluster)
        injector.enabled = False
        handle = cluster.nodes[0].fs.create_file("quiet")
        handle.write_page(1, ["x"], 1 * MB)
        assert injector.stats.total == 0
        assert cluster.nodes[0].robustness.retries == 0


class TestTransientFaults:
    def test_write_faults_absorbed_by_bounded_retries(self):
        cluster = tiny_cluster(num_nodes=1)
        injector = FaultInjector(
            seed=7, config=FaultConfig(disk_write_error_rate=0.4)
        ).attach(cluster)
        node = cluster.nodes[0]
        handle = node.fs.create_file("flaky")
        for page_id in range(1, 41):
            handle.write_page(page_id, [page_id], 1 * MB)
        assert injector.stats.disk_write_faults > 0
        assert node.robustness.retries >= injector.stats.disk_write_faults
        assert handle.num_pages == 40

    def test_streak_bound_keeps_certain_faults_survivable(self):
        """Even a 100% fault rate cannot out-streak the retry budget when
        max_consecutive_faults < max_attempts."""
        cluster = tiny_cluster(num_nodes=1)
        FaultInjector(
            seed=3,
            config=FaultConfig(disk_write_error_rate=1.0, max_consecutive_faults=2),
        ).attach(cluster)
        handle = cluster.nodes[0].fs.create_file("always")
        handle.write_page(1, ["x"], 1 * MB)  # must not raise
        assert cluster.nodes[0].robustness.retries > 0

    def test_unbounded_streak_exhausts_retries(self):
        cluster = tiny_cluster(num_nodes=1)
        FaultInjector(
            seed=3,
            config=FaultConfig(disk_write_error_rate=1.0, max_consecutive_faults=99),
        ).attach(cluster)
        handle = cluster.nodes[0].fs.create_file("doomed")
        with pytest.raises(TransientDiskError):
            handle.write_page(1, ["x"], 1 * MB)

    def test_retry_backoff_charges_simulated_time(self):
        plain = tiny_cluster(num_nodes=1)
        plain.nodes[0].fs.create_file("s").write_page(1, ["x"], 1 * MB)
        baseline = plain.simulated_seconds()

        faulty = tiny_cluster(num_nodes=1)
        FaultInjector(
            seed=3, config=FaultConfig(disk_write_error_rate=1.0)
        ).attach(faulty)
        faulty.nodes[0].fs.create_file("s").write_page(1, ["x"], 1 * MB)
        assert faulty.simulated_seconds() > baseline

    def test_latency_spike_charges_extra_time(self):
        plain = tiny_cluster(num_nodes=1)
        plain.nodes[0].fs.create_file("s").write_page(1, ["x"], 1 * MB)
        baseline = plain.simulated_seconds()

        spiky = tiny_cluster(num_nodes=1)
        injector = FaultInjector(
            seed=3,
            config=FaultConfig(
                disk_latency_spike_rate=1.0, disk_latency_spike_seconds=0.25
            ),
        ).attach(spiky)
        spiky.nodes[0].fs.create_file("s").write_page(1, ["x"], 1 * MB)
        assert injector.stats.latency_spikes == 1
        assert spiky.simulated_seconds() >= baseline + 0.25

    def test_net_drops_are_retried(self):
        cluster = tiny_cluster(num_nodes=1)
        injector = FaultInjector(
            seed=11, config=FaultConfig(net_drop_rate=0.5)
        ).attach(cluster)
        node = cluster.nodes[0]
        for _ in range(30):
            node.network.transfer(1 * MB)
        assert injector.stats.net_drops > 0
        assert node.robustness.retries >= injector.stats.net_drops
        assert node.network.stats.bytes_sent == 30 * MB


class TestSchedules:
    def test_scheduled_crash_fires_at_exact_count(self):
        cluster = tiny_cluster(num_nodes=2)
        injector = FaultInjector(seed=1).attach(cluster)
        injector.schedule_crash("disk.write", node_id=0, at_count=3)
        handle = cluster.nodes[0].fs.create_file("s")
        handle.write_page(1, ["x"], 1 * MB)
        handle.write_page(2, ["x"], 1 * MB)
        assert not cluster.nodes[0].failed
        handle.write_page(3, ["x"], 1 * MB)
        assert cluster.nodes[0].failed
        assert not cluster.nodes[1].failed
        assert injector.stats.crashes == 1

    def test_scheduled_corruption_hits_nth_write(self):
        cluster = tiny_cluster(num_nodes=1)
        injector = FaultInjector(seed=1).attach(cluster)
        injector.schedule_corruption("s", node_id=0, at_write=2)
        handle = cluster.nodes[0].fs.create_file("s")
        handle.write_page(1, ["good"], 1 * MB)
        handle.write_page(2, ["bad"], 1 * MB)
        assert handle.read_page(1)[0] == ["good"]
        with pytest.raises(PageCorruptionError):
            handle.read_page(2)
        assert injector.stats.corruptions_injected == 1


class TestReplayDeterminism:
    @staticmethod
    def _run(seed):
        cluster = tiny_cluster(num_nodes=2)
        injector = FaultInjector(
            seed=seed,
            config=FaultConfig(
                disk_read_error_rate=0.1,
                disk_write_error_rate=0.1,
                disk_latency_spike_rate=0.2,
                net_drop_rate=0.15,
            ),
        ).attach(cluster)
        for node in cluster.nodes:
            handle = node.fs.create_file("w")
            for page_id in range(1, 21):
                handle.write_page(page_id, [page_id], 1 * MB)
            for page_id in range(1, 21):
                handle.read_page(page_id)
            node.network.transfer(4 * MB)
        return (
            injector.stats.as_dict(),
            [node.robustness.as_dict() for node in cluster.nodes],
            cluster.simulated_seconds(),
        )

    def test_same_seed_same_schedule(self):
        assert self._run(42) == self._run(42)

    def test_faults_actually_occurred(self):
        stats, robustness, _seconds = self._run(42)
        assert stats["disk_read_faults"] + stats["disk_write_faults"] > 0
        assert sum(r["retries"] for r in robustness) > 0


@pytest.fixture
def disks():
    clock = SimClock()
    return DiskArray([DiskDevice(clock=clock), DiskDevice(clock=clock)])


class TestPageIntegrity:
    def test_checksum_is_payload_and_order_sensitive(self):
        assert page_checksum(["a", "b"]) == page_checksum(["a", "b"])
        assert page_checksum(["a", "b"]) != page_checksum(["b", "a"])
        assert page_checksum(["a"]) != page_checksum(["a", "a"])

    def test_corrupt_image_detected_on_read(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["a", "b", "c"], 1 * MB)
        handle.corrupt_image(1)
        with pytest.raises(PageCorruptionError):
            handle.read_page(1)

    def test_rewrite_clears_corruption(self, disks):
        handle = SetFile("s", disks)
        handle.write_page(1, ["a"], 1 * MB)
        handle.corrupt_image(1)
        handle.write_page(1, ["a2"], 1 * MB)
        assert handle.read_page(1)[0] == ["a2"]


class TestReadRepair:
    def test_corrupted_page_repaired_from_replica(self):
        cluster, group, rep_a, rep_b = build_replicated()
        shard = rep_a.shards[1]
        victim = next(p for p in shard.pages if p.on_disk)
        if victim.in_memory:
            shard.evict_page(victim)
        expected_ids = set(
            group.object_id_fn(r) for r in shard.file.peek_records(victim.page_id)
        )
        shard.file.corrupt_image(victim.page_id)
        records = list(rep_a.scan_records())
        assert {r["id"] for r in records} == set(range(600))
        node = shard.node
        assert node.robustness.corruptions_detected == 1
        assert node.robustness.read_repairs == 1
        assert node.pool.stats.read_repairs == 1
        # The repaired on-disk image matches the original objects.
        repaired, _cost = shard.file.read_page(victim.page_id)
        assert {group.object_id_fn(r) for r in repaired} == expected_ids

    def test_unrepairable_corruption_raises(self):
        cluster = tiny_cluster(num_nodes=2)
        lone = cluster.create_set("lone", page_size=1 * MB, object_bytes=100)
        lone.add_data([{"id": i} for i in range(50)])
        shard = lone.shards[0]
        page = shard.pages[0]
        if not page.on_disk:
            shard.evict_page(page)  # flush forces an on-disk image
        elif page.in_memory:
            shard.evict_page(page)
        shard.file.corrupt_image(page.page_id)
        with pytest.raises(PageCorruptionError):
            list(lone.scan_records())
        assert shard.node.robustness.read_repairs == 0

    def test_repair_falls_back_past_damaged_replica_copy(self):
        """When a replica copy unrelated to the lost objects is also corrupt,
        the repair skips it and still reconstructs from the healthy copies."""
        cluster, group, rep_a, rep_b = build_replicated(page_size=8192)
        shard = rep_a.shards[1]
        victim = next(p for p in shard.pages if p.on_disk)
        if victim.in_memory:
            shard.evict_page(victim)
        victim_ids = {
            group.object_id_fn(r) for r in shard.file.peek_records(victim.page_id)
        }
        shard.file.corrupt_image(victim.page_id)
        # Damage a rep_b image holding *different* objects (corrupting the
        # only surviving copy would make the data genuinely unrecoverable).
        spoiled = None
        for node_id in sorted(rep_b.shards):
            other = rep_b.shards[node_id]
            for page in other.pages:
                if not page.on_disk:
                    continue
                ids = {
                    group.object_id_fn(r)
                    for r in other.file.peek_records(page.page_id)
                }
                if ids and not ids & victim_ids:
                    spoiled = (other, page)
                    break
            if spoiled:
                break
        if spoiled is None:
            pytest.skip("no disjoint replica page in this layout")
        other, page = spoiled
        if page.in_memory:
            other.evict_page(page)
        other.file.corrupt_image(page.page_id)
        records = list(rep_a.scan_records())
        assert {r["id"] for r in records} == set(range(600))
