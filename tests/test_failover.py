"""Tests for the heartbeat failure detector and transparent scan failover."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.services.sequential import NodeFailedError, make_shard_iterators
from repro.sim.devices import MB


def tiny_cluster(num_nodes=4, pool_mb=32):
    return PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=pool_mb * MB)
    )


def build_replicated(num_nodes=4, rows=600, nodes_b=None):
    cluster = tiny_cluster(num_nodes=num_nodes)
    src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
    src.add_data([{"a": i, "b": (i * 131) % 997, "id": i} for i in range(rows)])
    rep_a = cluster.create_set("rep_a", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_a, HashPartitioner(lambda r: r["a"], 16, key_name="a"))
    rep_b = cluster.create_set(
        "rep_b", page_size=1 * MB, object_bytes=100, nodes=nodes_b
    )
    partition_set(src, rep_b, HashPartitioner(lambda r: r["b"], 16, key_name="b"))
    group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
    return cluster, group, rep_a, rep_b


class TestFailureDetector:
    def test_detects_failure_at_barrier_and_charges_delay(self):
        cluster, group, rep_a, rep_b = build_replicated()
        detector = cluster.enable_self_healing(
            interval=0.5, miss_threshold=3, auto_recover=False
        )
        before = cluster.simulated_seconds()
        cluster.nodes[1].fail()
        detected_before = set(detector.handled)
        cluster.barrier()
        assert 1 in detector.handled
        assert 1 not in detected_before
        assert cluster.simulated_seconds() >= before + detector.detection_delay

    def test_detection_happens_once(self):
        cluster, group, *_ = build_replicated()
        detector = cluster.enable_self_healing(auto_recover=False)
        cluster.nodes[2].fail()
        assert detector.poll() == [2]
        assert detector.poll() == []
        cluster.barrier()
        assert detector.poll() == []

    def test_recovered_process_can_fail_again(self):
        cluster, group, *_ = build_replicated()
        detector = cluster.enable_self_healing(auto_recover=False)
        cluster.nodes[2].fail()
        detector.poll()
        cluster.nodes[2].recover_process()
        detector.poll()
        assert 2 not in detector.handled
        cluster.nodes[2].fail()
        assert detector.poll() == [2]

    def test_auto_recovery_runs_exactly_once(self):
        cluster, group, rep_a, rep_b = build_replicated()
        cluster.enable_self_healing()
        cluster.nodes[1].fail()
        cluster.barrier()
        assert cluster.robustness.recoveries == 1
        assert 1 in group.recovered_nodes
        count = rep_a.num_objects
        cluster.barrier()
        assert cluster.robustness.recoveries == 1
        assert rep_a.num_objects == count

    def test_bad_detector_parameters_rejected(self):
        cluster = tiny_cluster()
        with pytest.raises(ValueError):
            cluster.enable_self_healing(interval=0.0)
        with pytest.raises(ValueError):
            cluster.enable_self_healing(miss_threshold=0)


class TestScanFailover:
    def test_scan_heals_after_auto_recovery(self):
        cluster, group, rep_a, rep_b = build_replicated()
        cluster.enable_self_healing()
        cluster.nodes[1].fail()
        records = list(rep_a.scan_records())
        assert {r["id"] for r in records} == set(range(600))
        assert cluster.robustness.recoveries == 1
        assert cluster.robustness.failovers >= 1

    def test_scan_fails_over_to_fully_live_member(self):
        """No detector, no recovery: the read service switches to a replica
        whose shards are all alive."""
        cluster, group, rep_a, rep_b = build_replicated(nodes_b=[1, 2, 3])
        cluster.nodes[0].fail()
        assert 0 in rep_a.shards and 0 not in rep_b.shards
        records = list(rep_a.scan_records())
        assert {r["id"] for r in records} == set(range(600))
        assert cluster.robustness.failovers >= 1

    def test_scan_without_replica_raises_with_node_and_set(self):
        cluster = tiny_cluster(num_nodes=3)
        lone = cluster.create_set("orders", page_size=1 * MB, object_bytes=100)
        lone.add_data([{"id": i} for i in range(60)])
        cluster.nodes[2].fail()
        with pytest.raises(NodeFailedError) as excinfo:
            list(lone.scan_records())
        assert excinfo.value.node_id == 2
        assert excinfo.value.set_name == "orders"
        assert "node 2" in str(excinfo.value)
        assert "'orders'" in str(excinfo.value)

    def test_worker_pool_fails_over_without_double_counting(self):
        """The compute layer resolves through the same failover path as a
        scan: after auto-recovery the crashed node's orphaned in-memory
        pages must not be read *in addition to* the re-dispatched copies."""
        from repro.compute import WavesOfTasks, WorkerPool

        cluster, group, rep_a, rep_b = build_replicated()
        cluster.enable_self_healing()
        expected = sum(r["id"] for r in rep_a.scan_records())
        cluster.nodes[1].fail()
        for threaded in (False, True):
            result = WorkerPool(
                cluster, workers_per_node=4, threaded=threaded
            ).run_stage(rep_a, page_fn=lambda p: sum(r["id"] for r in p.records))
            assert sum(sum(v) for v in result.per_node.values()) == expected
            assert 1 not in result.per_node
        waves = WavesOfTasks(cluster).run_stage(
            rep_a, page_fn=lambda p: sum(r["id"] for r in p.records)
        )
        assert sum(sum(v) for v in waves.per_node.values()) == expected
        assert cluster.robustness.recoveries == 1

    def test_shard_iterators_raise_by_default_and_skip_on_request(self):
        cluster = tiny_cluster(num_nodes=2)
        data = cluster.create_set("d", page_size=1 * MB, object_bytes=100)
        data.add_data([{"id": i} for i in range(20)])
        shard = data.shards[0]
        cluster.nodes[0].fail()
        with pytest.raises(NodeFailedError) as excinfo:
            make_shard_iterators(shard)
        assert excinfo.value.node_id == 0
        assert excinfo.value.set_name == "d"
        assert make_shard_iterators(shard, on_failure="skip") == []
        with pytest.raises(ValueError):
            make_shard_iterators(shard, on_failure="ignore")
