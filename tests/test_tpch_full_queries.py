"""The final eight TPC-H queries must match their oracles (full 22-query
coverage: the paper's nine + five extensions + these eight)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import GB, MB
from repro.tpch import load_tpch, register_tpch_replicas
from repro.tpch.full_queries import FULL_QUERIES, FULL_REFERENCE_QUERIES

from .conftest import rows_match

SCALE = 0.004


@pytest.fixture(scope="module")
def plain():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    return cluster, tables


@pytest.fixture(scope="module")
def replicated():
    cluster = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=1 * GB))
    tables = load_tpch(cluster, scale=SCALE)
    register_tpch_replicas(cluster)
    return cluster, tables


@pytest.mark.parametrize("name", sorted(FULL_QUERIES))
def test_full_query_matches_reference(plain, name):
    cluster, tables = plain
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = FULL_QUERIES[name](scheduler)
    want = FULL_REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


@pytest.mark.parametrize("name", sorted(FULL_QUERIES))
def test_full_query_matches_reference_with_replicas(replicated, name):
    cluster, tables = replicated
    scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB, object_bytes=144)
    got = FULL_QUERIES[name](scheduler)
    want = FULL_REFERENCE_QUERIES[name](tables)
    assert rows_match(got, want), f"{name}: {got[:2]} != {want[:2]}"


def test_non_trivial_results_at_this_scale(plain):
    """Sanity: the interesting queries return rows here."""
    _cluster, tables = plain
    for name in ("Q07", "Q08", "Q09", "Q11", "Q15"):
        assert FULL_REFERENCE_QUERIES[name](tables), name


def test_twenty_two_query_coverage():
    from repro.tpch import EXTRA_QUERIES, QUERIES

    covered = set(QUERIES) | set(EXTRA_QUERIES) | set(FULL_QUERIES)
    expected = {f"Q{i:02d}" for i in range(1, 23)}
    assert covered == expected
