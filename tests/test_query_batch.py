"""Unit tests for the batch kernels, stage executor, and the satellite
fixes that ride along with the vectorized query engine.

The end-to-end bit-exactness story lives in ``test_query_golden.py``;
here each kernel is checked in isolation against the per-record code it
replaces, on identically-built twin clusters.
"""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.compute.stages import StageExecutor
from repro.query.batch import (
    BatchStepRunner,
    RecordBatch,
    build_batch,
    build_hash_table,
    iter_chunks,
    probe_batch,
)
from repro.query.operators import ScanNode
from repro.query.pipeline import run_steps
from repro.query.scheduler import QueryScheduler, StageResult
from repro.sim.devices import KB, MB
from repro.sim.faults import FaultInjector
from repro.sim.metrics import format_scheduler_table
from repro.util import stable_hash


def tiny_cluster(num_nodes=1, pool_bytes=64 * MB):
    return PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=pool_bytes)
    )


class TestRecordBatch:
    def test_key_and_hash_columns_cached(self):
        calls = []

        def key_fn(r):
            calls.append(r)
            return r["k"]

        batch = RecordBatch([{"k": i} for i in range(8)])
        keys = batch.keys(key_fn)
        assert keys == list(range(8))
        batch.hashes(key_fn)
        parts = batch.partitions(key_fn, 3)
        assert parts == [stable_hash(i) % 3 for i in range(8)]
        assert len(calls) == 8  # key_fn ran once per record total

    def test_new_key_fn_invalidates_cache(self):
        batch = RecordBatch([{"k": i, "j": -i} for i in range(4)])
        assert batch.keys(lambda r: r["k"]) == [0, 1, 2, 3]
        assert batch.keys(lambda r: r["j"]) == [0, -1, -2, -3]
        assert batch.hashes(lambda r: r["j"]) == [stable_hash(-i) for i in range(4)]

    def test_iter_chunks(self):
        assert [len(c) for c in iter_chunks(list(range(10)), 4)] == [4, 4, 2]
        assert list(iter_chunks([], 4)) == []
        with pytest.raises(ValueError):
            list(iter_chunks([1], 0))


class TestBatchStepRunnerEquivalence:
    """Same outputs and same clock as run_steps for any chunking."""

    STEPS = [
        ("filter", lambda r: r["v"] % 3 != 0),
        ("map", lambda r: {"v": r["v"], "sq": r["v"] * r["v"]}),
        ("flatmap", lambda r: [r] * (r["v"] % 2 + 1)),
    ]

    @pytest.mark.parametrize("count,chunk", [(0, 16), (1500, 64), (2048, 1024), (700, 1000)])
    def test_matches_run_steps(self, count, chunk):
        records = [{"v": i} for i in range(count)]
        legacy_node = tiny_cluster().nodes[0]
        batch_node = tiny_cluster().nodes[0]
        legacy_out = list(run_steps(iter(records), self.STEPS, legacy_node))
        runner = BatchStepRunner(batch_node, self.STEPS)
        batch_out = []
        for piece in iter_chunks(records, chunk):
            batch_out.extend(runner.feed(piece))
        runner.finish()
        assert batch_out == legacy_out
        assert batch_node.clock.now == legacy_node.clock.now

    def test_finish_twice_is_idempotent(self):
        node = tiny_cluster().nodes[0]
        runner = BatchStepRunner(node, [])
        runner.feed([{"v": 1}])
        runner.finish()
        before = node.clock.now
        runner.finish()
        assert node.clock.now == before
        with pytest.raises(RuntimeError):
            runner.feed([{"v": 2}])


class TestRunStepsAccounting:
    """Satellite: pin down run_steps' CPU charging exactly."""

    def expected(self, node, charge_counts):
        """Replay the expected per_object charges on a local float."""
        per = node.cpu.per_object_overhead
        total = node.clock.now
        for n in charge_counts:
            total += (n * per) / 1
        return total

    def test_full_block_plus_remainder(self):
        node = tiny_cluster().nodes[0]
        steps = [("map", lambda r: r), ("filter", lambda r: True)]
        start_records = [{"v": i} for i in range(1500)]
        expected = self.expected(node, [1024 * 2, 476 * 2])
        out = list(run_steps(iter(start_records), steps, node))
        assert len(out) == 1500
        assert node.clock.now == expected

    def test_exact_block_boundary_has_zero_remainder(self):
        node = tiny_cluster().nodes[0]
        expected = self.expected(node, [1024, 0])
        list(run_steps(iter([{"v": i} for i in range(1024)]), [], node))
        assert node.clock.now == expected

    def test_empty_steps_still_charge_one_unit_per_record(self):
        node = tiny_cluster().nodes[0]
        expected = self.expected(node, [100])  # max(1, len(steps)) == 1
        list(run_steps(iter([{"v": i} for i in range(100)]), [], node))
        assert node.clock.now == expected

    def test_apply_steps_empty_short_circuit(self):
        cluster = tiny_cluster(num_nodes=2)
        scheduler = QueryScheduler(cluster, object_bytes=64)
        stage = StageResult(per_node={0: [{"v": 1}], 1: [{"v": 2}]})
        clocks = [n.clock.now for n in cluster.nodes]
        out = scheduler._apply_steps(stage, [])
        assert out is stage  # the short circuit returns the same object
        assert [n.clock.now for n in cluster.nodes] == clocks

    def test_flatmap_fanout_charges_input_count(self):
        node = tiny_cluster().nodes[0]
        steps = [("flatmap", lambda r: [r, r, r])]
        expected = self.expected(node, [10])  # 10 inputs, not 30 outputs
        out = list(run_steps(iter([{"v": i} for i in range(10)]), steps, node))
        assert len(out) == 30
        assert node.clock.now == expected


class TestJoinKernels:
    def make_join(self, how="inner"):
        return ScanNode("l").join(
            ScanNode("r"),
            left_key=lambda r: r["k"],
            right_key=lambda r: r["k"],
            merge=lambda l, r: (l, r),
            how=how,
        )

    @pytest.mark.parametrize("how", ["inner", "left_semi", "left_anti", "left_outer"])
    def test_probe_matches_record_path(self, how):
        join = self.make_join(how)
        left = [{"k": i % 5, "side": "l", "i": i} for i in range(40)]
        right = [{"k": i % 3, "side": "r", "i": i} for i in range(9)]
        legacy_node = tiny_cluster().nodes[0]
        batch_node = tiny_cluster().nodes[0]
        scheduler = QueryScheduler(tiny_cluster(), object_bytes=64)
        table_legacy = scheduler._build_table(right, join.right_key, legacy_node)
        legacy = scheduler._probe(join, left, table_legacy, legacy_node)
        table_batch = build_batch(right, join.right_key, batch_node)
        batch = probe_batch(join, left, table_batch, batch_node)
        assert table_batch == table_legacy
        assert batch == legacy
        assert batch_node.clock.now == legacy_node.clock.now

    def test_build_hash_table_groups_in_order(self):
        table = build_hash_table([{"k": 1, "i": 0}, {"k": 2, "i": 1}, {"k": 1, "i": 2}], lambda r: r["k"])
        assert [r["i"] for r in table[1]] == [0, 2]
        assert [r["i"] for r in table[2]] == [1]


class TestShuffleWriteBatch:
    def _write_legacy(self, service, records, partitions, node, nbytes):
        for record, partition in zip(records, partitions):
            service.buffer_for(0, partition, worker_node=node).add_object(
                record, nbytes
            )

    def _make(self):
        from repro.services.shuffle import ShuffleService

        cluster = tiny_cluster(num_nodes=2)
        service = ShuffleService(
            cluster,
            "shuf",
            num_partitions=3,
            page_size=64 * KB,
            small_page_size=4 * KB,
            object_bytes=64,
        )
        return cluster, service

    def _partition_payloads(self, service):
        return [
            [list(p.records) for p in ds.shards[sorted(ds.shards)[0]].pages]
            for ds in service.partition_sets
        ]

    def test_matches_per_record_loop(self):
        records = [{"i": i} for i in range(700)]
        partitions = [stable_hash(i) % 3 for i in range(700)]
        legacy_cluster, legacy_service = self._make()
        batch_cluster, batch_service = self._make()
        # Start from a partially written small page on partition 0 so the
        # batch path inherits mid-page state.
        for service, cluster in (
            (legacy_service, legacy_cluster),
            (batch_service, batch_cluster),
        ):
            service.buffer_for(0, 0, worker_node=cluster.nodes[0]).add_object(
                {"warm": True}, 64
            )
        self._write_legacy(
            legacy_service, records, partitions, legacy_cluster.nodes[0], 64
        )
        batch_service.write_batch(
            0, records, partitions, worker_node=batch_cluster.nodes[0], nbytes=64
        )
        assert [n.clock.now for n in batch_cluster.nodes] == [
            n.clock.now for n in legacy_cluster.nodes
        ]
        assert [n.network.stats.bytes_sent for n in batch_cluster.nodes] == [
            n.network.stats.bytes_sent for n in legacy_cluster.nodes
        ]
        legacy_service.finish_writing()
        batch_service.finish_writing()
        assert self._partition_payloads(batch_service) == self._partition_payloads(
            legacy_service
        )

    def test_oversized_record_raises_like_append(self):
        _cluster, legacy_service = self._make()
        _cluster2, batch_service = self._make()
        with pytest.raises(ValueError):
            legacy_service.buffer_for(
                0, 0, worker_node=_cluster.nodes[0]
            ).add_object({"big": True}, 8 * KB)
        with pytest.raises(ValueError):
            batch_service.write_batch(
                0, [{"big": True}], [0], worker_node=_cluster2.nodes[0], nbytes=8 * KB
            )

    def test_no_worker_node_falls_back(self):
        _cluster, service = self._make()
        service.write_batch(0, [{"i": 1}, {"i": 2}], [0, 1], nbytes=64)
        service.finish_writing()
        payloads = self._partition_payloads(service)
        assert payloads[0] == [[{"i": 1}]]
        assert payloads[1] == [[{"i": 2}]]


class TestInsertMany:
    def _run(self, batched):
        from repro.services.hashsvc import VirtualHashBuffer

        cluster = tiny_cluster(num_nodes=1, pool_bytes=2 * MB)
        dataset = cluster.create_set(
            "hash", durability="write-back", page_size=64 * KB, object_bytes=64
        )
        buffer = VirtualHashBuffer(
            dataset, num_root_partitions=4, combiner=lambda a, b: a + b
        )
        keys = [i % 300 for i in range(2000)]
        values = [1] * 2000
        if batched:
            for start in range(0, 2000, 256):
                buffer.insert_many(
                    keys[start:start + 256], values[start:start + 256], nbytes=64
                )
        else:
            for key, value in zip(keys, values):
                buffer.insert(key, value, nbytes=64)
        pairs = sorted(buffer.items())
        buffer.release()
        return pairs, cluster.nodes[0].clock.now, buffer.stats

    def test_matches_per_record_inserts(self):
        legacy_pairs, legacy_clock, legacy_stats = self._run(batched=False)
        batch_pairs, batch_clock, batch_stats = self._run(batched=True)
        assert batch_pairs == legacy_pairs
        assert batch_clock == legacy_clock
        assert batch_stats == legacy_stats
        assert legacy_stats.combines > 0  # the fast path was exercised

    def test_insert_many_without_nbytes_falls_back(self):
        from repro.services.hashsvc import VirtualHashBuffer

        cluster = tiny_cluster()
        dataset = cluster.create_set("h2", durability="write-back", page_size=4 * MB)
        buffer = VirtualHashBuffer(dataset, num_root_partitions=2)
        buffer.insert_many(["a", "b", "a"], [1, 2, 3])
        assert dict(buffer.items()) == {"a": 3, "b": 2}
        buffer.release()


class TestShuffleHomeMerge:
    """Satellite: partitions sharing a home node merge instead of
    overwriting when num_partitions > num_nodes."""

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_merge_not_overwrite(self, vectorized):
        # Pool must hold several pinned 64MB shuffle big pages per node
        # (three partitions home to each of the two nodes).
        cluster = tiny_cluster(num_nodes=2, pool_bytes=512 * MB)
        scheduler = QueryScheduler(cluster, object_bytes=64, vectorized=vectorized)
        stage = StageResult(per_node={0: [{"k": i} for i in range(200)], 1: []})
        out = scheduler._shuffle(stage, lambda r: r["k"], num_partitions=6)
        assert out.total_records() == 200
        # Every record keyed k lands on home (stable_hash(k) % 6) % 2.
        for home_id, records in out.per_node.items():
            for record in records:
                assert stable_hash(record["k"]) % 6 % 2 == home_id
        keys = sorted(r["k"] for rs in out.per_node.values() for r in rs)
        assert keys == list(range(200))


class TestStageExecutor:
    def test_results_in_node_order(self):
        cluster = tiny_cluster(num_nodes=3)
        executor = StageExecutor(cluster)
        results = executor.run(
            "t", {nid: (lambda n=nid: n * 10) for nid in range(3)}
        )
        assert list(results.items()) == [(0, 0), (1, 10), (2, 20)]
        assert executor.last_parallel

    def test_single_task_runs_serial(self):
        executor = StageExecutor(tiny_cluster(num_nodes=3))
        assert executor.run("t", {1: lambda: "x"}) == {1: "x"}
        assert not executor.last_parallel

    def test_exception_propagates_lowest_node_first(self):
        executor = StageExecutor(tiny_cluster(num_nodes=3))

        def boom(which):
            raise RuntimeError(f"boom-{which}")

        with pytest.raises(RuntimeError, match="boom-1"):
            executor.run(
                "t",
                {2: lambda: boom(2), 1: lambda: boom(1), 0: lambda: "fine"},
            )

    def test_faults_force_serial(self):
        cluster = tiny_cluster(num_nodes=3)
        FaultInjector(seed=1).attach(cluster)
        executor = StageExecutor(cluster)
        results = executor.run("t", {nid: (lambda n=nid: n) for nid in range(3)})
        assert results == {0: 0, 1: 1, 2: 2}
        assert not executor.last_parallel

    def test_stage_spans_emitted_when_tracing(self):
        cluster = tiny_cluster(num_nodes=2)
        tracer = cluster.enable_tracing()
        executor = StageExecutor(cluster)
        executor.run("probe", {nid: (lambda: None) for nid in range(2)})
        spans = [e for e in tracer.events if e.name == "query.stage"]
        assert len(spans) == 2
        assert {e.args["stage"] for e in spans} == {"probe"}


class TestBroadcastBuildOnce:
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_right_key_called_once_per_record(self, vectorized):
        cluster = tiny_cluster(num_nodes=3)
        orders = cluster.create_set("orders", page_size=1 * MB, object_bytes=64)
        items = cluster.create_set("items", page_size=1 * MB, object_bytes=64)
        orders.add_data([{"o_id": i} for i in range(60)])
        items.add_data([{"i_id": i, "i_order": i % 60} for i in range(240)])
        calls = []

        def right_key(record):
            calls.append(record)
            return record["o_id"]

        plan = ScanNode("items").join(
            ScanNode("orders"),
            left_key=lambda r: r["i_order"],
            right_key=right_key,
            merge=lambda l, r: {**l, **r},
        )
        scheduler = QueryScheduler(cluster, object_bytes=64, vectorized=vectorized)
        rows = scheduler.execute(plan)
        assert scheduler.metrics.broadcast_joins == 1
        assert len(rows) == 240
        # One build over the broadcast set, not one per node.
        assert len(calls) == 60


class TestSchedulerMetricsSurface:
    def test_counters_and_table(self):
        cluster = tiny_cluster(num_nodes=3)
        data = cluster.create_set("d", page_size=1 * MB, object_bytes=64)
        data.add_data([{"k": i} for i in range(500)])
        scheduler = QueryScheduler(cluster, object_bytes=64, broadcast_threshold=0)
        plan = ScanNode("d").join(
            ScanNode("d"),
            left_key=lambda r: r["k"],
            right_key=lambda r: r["k"],
            merge=lambda l, r: l,
        )
        scheduler.execute(plan)
        m = scheduler.metrics
        assert m.batches_processed > 0
        assert m.batch_records >= 500
        assert 0 < m.mean_batch_fill <= scheduler.batch_size
        assert m.stages_run >= m.parallel_stages > 0
        assert 1.0 <= m.mean_stage_parallelism <= cluster.num_nodes
        table = format_scheduler_table(m)
        header, row = table.splitlines()
        assert len(header) == len(row)
        assert "batches" in header
        # Every cell right-aligned into its column width.
        for line in (header, row):
            assert not line.startswith(" " * 2) or line.strip()

    def test_legacy_engine_reports_zero_batches(self):
        cluster = tiny_cluster(num_nodes=2)
        data = cluster.create_set("d", page_size=1 * MB, object_bytes=64)
        data.add_data([{"k": i} for i in range(50)])
        scheduler = QueryScheduler(cluster, object_bytes=64, vectorized=False)
        scheduler.execute(ScanNode("d").filter(lambda r: True))
        assert scheduler.metrics.batches_processed == 0
        assert scheduler.metrics.mean_batch_fill == 0.0
        assert scheduler.metrics.mean_stage_parallelism == 0.0
