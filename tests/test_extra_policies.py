"""Tests for the related-work policies: GreedyDual and LRU-K."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.core.attributes import ReadingPattern
from repro.core.policies import GreedyDualPolicy, LruKPolicy, make_policy
from repro.sim.devices import MB


def small_cluster(policy):
    return PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=8 * MB), policy=policy
    )


def fill_pages(cluster, name, count, durability="write-back"):
    data = cluster.create_set(name, durability=durability, page_size=1 * MB)
    shard = data.shards[0]
    pages = []
    for i in range(count):
        page = shard.new_page()
        page.append(f"{name}-{i}", 10)
        shard.unpin_page(page)
        pages.append(page)
    return data, shard, pages


class TestFactory:
    def test_greedy_dual_by_name(self):
        assert make_policy("greedy-dual").name == "greedy-dual"

    def test_lru_k_by_name(self):
        policy = make_policy("lru-2")
        assert isinstance(policy, LruKPolicy)
        assert policy.k == 2

    def test_lru_k_invalid(self):
        with pytest.raises(ValueError):
            LruKPolicy(k=0)


class TestGreedyDual:
    def test_evicts_cheapest_unreferenced_page(self):
        cluster = small_cluster("greedy-dual")
        data, shard, pages = fill_pages(cluster, "s", 4)
        # Touch three pages: their credit rises above the untouched one.
        for page in pages[1:]:
            shard.touch(page)
        policy = cluster.nodes[0].paging.policy
        victims = policy.select_victims([shard], 1 * MB)
        assert victims == [pages[0]]

    def test_inflation_rises_with_evictions(self):
        cluster = small_cluster("greedy-dual")
        data, shard, pages = fill_pages(cluster, "s", 4)
        policy = cluster.nodes[0].paging.policy
        policy.select_victims([shard], 1 * MB)
        assert policy._inflation > 0

    def test_random_read_pages_are_protected(self):
        cluster = small_cluster("greedy-dual")
        seq, seq_shard, seq_pages = fill_pages(cluster, "seq", 2)
        rnd, rnd_shard, rnd_pages = fill_pages(cluster, "rnd", 2)
        rnd.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        for page in seq_pages + rnd_pages:
            page.shard.touch(page)
        policy = cluster.nodes[0].paging.policy
        victims = policy.select_victims([seq_shard, rnd_shard], 1 * MB)
        assert victims[0].shard is seq_shard

    def test_end_to_end_scan_workload(self):
        cluster = small_cluster("greedy-dual")
        data = cluster.create_set("s", durability="write-back",
                                  page_size=1 * MB, object_bytes=256 * 1024)
        records = list(range(64))  # 16MB over an 8MB pool
        data.add_data(records)
        assert sorted(data.scan_records()) == records


class TestLruK:
    def test_prefers_single_touch_pages(self):
        cluster = small_cluster("lru-2")
        data, shard, pages = fill_pages(cluster, "s", 4)
        # Pages 1..3 get second touches; page 0 has only its creation ref.
        for page in pages[1:]:
            shard.touch(page)
        policy = cluster.nodes[0].paging.policy
        victims = policy.select_victims([shard], 1 * MB)
        assert victims == [pages[0]]

    def test_kth_distance_orders_victims(self):
        cluster = small_cluster("lru-2")
        data, shard, pages = fill_pages(cluster, "s", 3)
        for page in pages:
            shard.touch(page)  # everyone has 2 refs now
        shard.touch(pages[2])  # freshen page 2's 2nd-most-recent ref
        policy = cluster.nodes[0].paging.policy
        victims = policy.select_victims([shard], 1 * MB)
        assert victims[0] in (pages[0], pages[1])

    def test_history_is_bounded(self):
        policy = LruKPolicy(k=2, history=4)
        cluster = small_cluster("lru")
        data, shard, pages = fill_pages(cluster, "s", 1)
        cluster.nodes[0].paging.set_policy(policy)
        for _ in range(20):
            shard.touch(pages[0])
        assert len(policy._accesses[pages[0].page_id]) <= 4

    def test_end_to_end_scan_workload(self):
        cluster = small_cluster("lru-2")
        data = cluster.create_set("s", durability="write-back",
                                  page_size=1 * MB, object_bytes=256 * 1024)
        records = list(range(64))
        data.add_data(records)
        assert sorted(data.scan_records()) == records


class TestPolicyComparison:
    def test_all_policies_produce_identical_answers(self):
        answers = []
        for policy in ("data-aware", "greedy-dual", "lru-2", "lru", "mru"):
            cluster = small_cluster(policy)
            data = cluster.create_set("s", durability="write-back",
                                      page_size=1 * MB, object_bytes=128 * 1024)
            data.add_data(list(range(128)))
            answers.append(sorted(data.scan_records()))
        assert all(a == answers[0] for a in answers)
