"""Seeded multi-threaded stress over place/pin/unpin/evict/drop.

Four OS threads share one node's buffer pool and paging system, each
driving its own locality set through a seeded random schedule of page
operations while evictions triggered by pool pressure cut across all of
them.  The harness invariants (no pinned-and-evicted page, exact
allocator accounting, no overlapping placements) are asserted throughout
and at the end.
"""

import random

import pytest

from repro import MachineProfile, PangeaCluster
from repro.buffer.pool import BufferPoolFullError
from repro.sim.devices import MB

from .harness import check_invariants, run_threads, stress_seeds

THREADS = 4
OPS_PER_THREAD = 120
PAGE = 256 * 1024


def make_cluster(allocator: str = "tlsf") -> PangeaCluster:
    return PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.tiny(pool_bytes=3 * MB),
        pool_allocator=allocator,
    )


def stress_worker(node, shard, seed):
    """One thread's schedule: create, pin, unpin, drop, tolerate pressure."""

    def run():
        rng = random.Random(seed)
        owned = []
        pinned = []
        for step in range(OPS_PER_THREAD):
            roll = rng.random()
            try:
                if roll < 0.35 or not owned:
                    page = shard.new_page(pin=True)
                    page.append({"seed": seed, "step": step}, 64)
                    shard.seal_page(page)
                    owned.append(page)
                    pinned.append(page)
                elif roll < 0.60 and pinned:
                    page = pinned.pop(rng.randrange(len(pinned)))
                    shard.unpin_page(page)
                elif roll < 0.85:
                    page = rng.choice(owned)
                    if page not in pinned:
                        shard.pin_page(page)
                        pinned.append(page)
                else:
                    unpinned = [p for p in owned if p not in pinned]
                    if unpinned:
                        page = rng.choice(unpinned)
                        shard.drop_page(page)
                        owned.remove(page)
            except BufferPoolFullError:
                # Legitimate when every resident page is pinned; shed our
                # pins so the other threads can make progress.
                while pinned:
                    shard.unpin_page(pinned.pop())
            if pinned and len(pinned) > 3:
                shard.unpin_page(pinned.pop(0))
            if step % 10 == 0:
                check_invariants(node)
        while pinned:
            shard.unpin_page(pinned.pop())

    return run


@pytest.mark.parametrize("seed", stress_seeds())
@pytest.mark.parametrize("allocator", ["tlsf", "slab"])
def test_concurrent_page_lifecycle(seed, allocator):
    cluster = make_cluster(allocator)
    node = cluster.nodes[0]
    shards = [
        cluster.create_set(
            f"stress-{i}", durability="write-back", page_size=PAGE
        ).shards[0]
        for i in range(THREADS)
    ]
    run_threads(
        [stress_worker(node, shard, seed * 1000 + i) for i, shard in enumerate(shards)]
    )
    check_invariants(node)
    # Every page the schedules left behind is unpinned and recoverable.
    for shard in shards:
        for page in shard.pages:
            assert not page.pinned
            assert page.in_memory or page.on_disk


@pytest.mark.parametrize("seed", stress_seeds([3, 57, 1009]))
def test_pressure_thrash_reconciles(seed):
    """Threads repeatedly repin evicted pages while others force evictions."""
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=1 * MB)
    )
    node = cluster.nodes[0]
    data = cluster.create_set("hot", durability="write-back", page_size=PAGE)
    shard = data.shards[0]
    pages = []
    for i in range(8):
        page = shard.new_page(pin=True)
        page.append(i, 64)
        shard.seal_page(page)
        shard.unpin_page(page)
        pages.append(page)

    def repinner(worker_seed):
        def run():
            rng = random.Random(worker_seed)
            for _ in range(OPS_PER_THREAD):
                page = rng.choice(pages)
                try:
                    shard.pin_page(page)
                except BufferPoolFullError:
                    continue
                check_invariants(node)
                shard.unpin_page(page)

        return run

    run_threads([repinner(seed * 100 + i) for i in range(THREADS)])
    check_invariants(node)
    assert node.pool.stats.pageins > 0 or node.pool.stats.evictions == 0
    for page in pages:
        assert not page.pinned
        assert page.in_memory or page.on_disk
