"""Deterministic concurrency-test harness.

Three pieces, used by every test in this package:

* :func:`check_invariants` — the invariant checker the ISSUE's tentpole
  demands: no page simultaneously evicted and pinned, allocator accounting
  reconciling with resident pages, no two pages overlapping in the pool.
* :class:`SeededInterleaver` — a deterministic scheduler shim.  Operations
  are written as generators that ``yield`` at every point where a real
  thread could be preempted; the interleaver replays them in an order
  drawn from a seeded RNG.  Same seed → same interleaving, always — this
  is how state-machine races are made reproducible without real threads.
* :func:`run_threads` — the real-thread stress driver: a start barrier so
  all threads enter the contended region together, a tiny GIL switch
  interval to maximize preemption, and exception propagation so a worker
  failure fails the test instead of vanishing.
"""

from __future__ import annotations

import random
import sys
import threading

DEFAULT_SEEDS = [7, 23, 101, 977, 4242, 31337, 65537, 999331]


def stress_seeds(base_seeds=None):
    """The seed list for parametrized stress tests.

    CI varies PANGEA_STRESS_SEED between repeats so each of the ≥ 20 runs
    explores different interleavings; locally the offset defaults to 0 and
    every run is reproducible.
    """
    import os

    offset = int(os.environ.get("PANGEA_STRESS_SEED", "0"))
    return [seed + offset for seed in (base_seeds or DEFAULT_SEEDS)]


# ----------------------------------------------------------------------
# invariant checker
# ----------------------------------------------------------------------


def check_invariants(node) -> None:
    """Assert the pool/paging invariants on one worker node.

    Called both between operations (under no lock, relying on the pool's
    own lock inside ``check_invariants``) and after a stress run.
    """
    node.pool.check_invariants()
    for shard in node.paging.shards:
        for page in list(shard.pages):
            if page.pinned and not page.in_memory:
                raise AssertionError(
                    f"page {page.page_id} is pinned ({page.pin_count}) "
                    f"but not resident — evicted while pinned"
                )
            if page.in_memory and page.page_id not in node.pool.pages:
                raise AssertionError(
                    f"page {page.page_id} has an offset but is missing "
                    f"from the pool's resident table"
                )


# ----------------------------------------------------------------------
# deterministic interleaving of generator-based operations
# ----------------------------------------------------------------------


class SeededInterleaver:
    """Replay generator "threads" in a seeded pseudo-random order.

    Each operation is a generator; every ``yield`` is a preemption point.
    ``run`` repeatedly picks a live generator with the seeded RNG and
    advances it one step, until all are exhausted.  ``on_step`` (if set)
    runs after every step — the natural place for an invariant check, so
    a violated invariant is caught at the exact interleaving step that
    produced it.
    """

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.steps_taken = 0
        self.on_step = None

    def run(self, generators: list) -> None:
        live = list(generators)
        while live:
            gen = self.rng.choice(live)
            try:
                next(gen)
            except StopIteration:
                live.remove(gen)
            self.steps_taken += 1
            if self.on_step is not None:
                self.on_step()


# ----------------------------------------------------------------------
# real-thread stress driver
# ----------------------------------------------------------------------


def run_threads(targets, switch_interval: float = 1e-5, timeout: float = 60.0):
    """Run callables on real threads; re-raise the first worker exception.

    Every target receives a :class:`threading.Barrier` release before its
    first operation so the contended section starts simultaneously on all
    threads.  The interpreter's switch interval is shrunk for the duration
    to force frequent preemption (restored afterwards).
    """
    old_interval = sys.getswitchinterval()
    barrier = threading.Barrier(len(targets))
    errors: list[BaseException] = []
    errors_lock = threading.Lock()

    def wrap(fn):
        def runner():
            try:
                barrier.wait(timeout)
                fn()
            except BaseException as exc:
                with errors_lock:
                    errors.append(exc)

        return runner

    threads = [
        threading.Thread(target=wrap(fn), name=f"stress-{i}", daemon=True)
        for i, fn in enumerate(targets)
    ]
    sys.setswitchinterval(switch_interval)
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout)
            if thread.is_alive():
                raise AssertionError(
                    f"stress thread {thread.name} did not finish within "
                    f"{timeout}s — likely deadlock"
                )
    finally:
        sys.setswitchinterval(old_interval)
    if errors:
        raise errors[0]
