"""Deterministic seeded-scheduler interleavings of the page state machine.

No real threads here: operations are generators that yield at every
possible preemption point, and :class:`SeededInterleaver` replays them in
a seeded pseudo-random order with the invariant checker running after
every single step.  Same seed → same interleaving → same eviction trace,
which the determinism test asserts explicitly.
"""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.buffer.pool import BufferPoolFullError
from repro.sim.devices import MB

from .harness import SeededInterleaver, check_invariants, stress_seeds

PAGE = 256 * 1024


def make_node():
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
    )
    cluster.nodes[0].paging.enable_trace()
    return cluster, cluster.nodes[0]


def writer_op(shard, count):
    """Create, fill, seal, unpin ``count`` pages, yielding between steps."""
    for i in range(count):
        yield
        try:
            page = shard.new_page(pin=True)
        except BufferPoolFullError:
            continue
        yield
        page.append(i, 64)
        shard.seal_page(page)
        yield
        shard.unpin_page(page)


def reader_op(shard, rounds):
    """Re-pin whatever pages exist, yielding around each transition."""
    for _ in range(rounds):
        yield
        for page in list(shard.pages):
            yield
            try:
                shard.pin_page(page)
            except BufferPoolFullError:
                continue
            yield
            shard.unpin_page(page)


def dropper_op(shard, rounds):
    for _ in range(rounds):
        yield
        unpinned = [p for p in shard.pages if not p.pinned]
        if unpinned:
            shard.drop_page(unpinned[0])


@pytest.mark.parametrize("seed", stress_seeds())
def test_interleaved_lifecycle_keeps_invariants(seed):
    cluster, node = make_node()
    sets = [
        cluster.create_set(f"s{i}", durability="write-back", page_size=PAGE)
        for i in range(3)
    ]
    shards = [s.shards[0] for s in sets]
    interleaver = SeededInterleaver(seed)
    interleaver.on_step = lambda: check_invariants(node)
    interleaver.run(
        [
            writer_op(shards[0], 10),
            writer_op(shards[1], 10),
            reader_op(shards[0], 3),
            reader_op(shards[2], 3),
            writer_op(shards[2], 6),
            dropper_op(shards[1], 4),
        ]
    )
    assert interleaver.steps_taken > 0
    check_invariants(node)


@pytest.mark.parametrize("seed", stress_seeds([11, 303]))
def test_same_seed_reproduces_same_eviction_trace(seed):
    def run_once():
        cluster, node = make_node()
        data = cluster.create_set("d", durability="write-back", page_size=PAGE)
        shard = data.shards[0]
        interleaver = SeededInterleaver(seed)
        interleaver.run(
            [writer_op(shard, 12), reader_op(shard, 2), writer_op(shard, 12)]
        )
        return [
            (e.set_name, e.page_id, e.was_dirty, e.flushed)
            for e in node.paging.trace
        ]

    assert run_once() == run_once()


def test_different_seeds_reach_different_interleavings():
    """Sanity: the scheduler shim really varies the order with the seed."""
    orders = set()
    for seed in stress_seeds():
        interleaver = SeededInterleaver(seed)
        trace = []

        def op(tag, steps=6, trace=trace):
            for i in range(steps):
                trace.append((tag, i))
                yield

        interleaver.run([op("a"), op("b"), op("c")])
        orders.add(tuple(trace))
    assert len(orders) > 1
