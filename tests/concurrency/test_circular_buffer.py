"""Multi-threaded producer/consumer tests for the circular buffer and
the sequential read service's shared cursor."""

import random
import threading

import pytest

from repro import MachineProfile, PangeaCluster
from repro.compute.circular import CircularBuffer, PageMeta
from repro.sim.devices import GB, MB

from .harness import run_threads, stress_seeds


def meta(i: int) -> PageMeta:
    return PageMeta(page_id=i, offset=i * 64, size=64, num_objects=1)


@pytest.mark.parametrize("seed", stress_seeds())
def test_blocking_producer_consumers_deliver_exactly_once(seed):
    ring = CircularBuffer(capacity=4)
    total = 200
    consumed: list[int] = []
    consumed_lock = threading.Lock()

    def producer():
        rng = random.Random(seed)
        ids = list(range(total))
        rng.shuffle(ids)
        for i in ids:
            assert ring.put_wait(meta(i), timeout=30)
        ring.close()

    def consumer():
        while True:
            item = ring.get_wait(timeout=30)
            if item is None:
                assert ring.drained
                return
            with consumed_lock:
                consumed.append(item.page_id)

    run_threads([producer, consumer, consumer, consumer, consumer])
    assert sorted(consumed) == list(range(total))


def test_put_wait_raises_when_closed_mid_wait():
    ring = CircularBuffer(capacity=1)
    assert ring.put_wait(meta(0), timeout=5)
    failure: list[BaseException] = []

    def blocked_producer():
        try:
            ring.put_wait(meta(1), timeout=30)
        except ValueError as exc:
            failure.append(exc)

    thread = threading.Thread(target=blocked_producer, daemon=True)
    thread.start()
    # Let the producer block on the full ring, then close it under him.
    import time

    time.sleep(0.05)
    ring.close()
    thread.join(10)
    assert not thread.is_alive()
    assert failure and "closed" in str(failure[0])


@pytest.mark.parametrize("seed", stress_seeds([5, 77]))
def test_nonblocking_api_stays_consistent_under_threads(seed):
    """Hammer the historical put/get pair from threads; every accepted
    put is matched by exactly one get and counts never go negative."""
    ring = CircularBuffer(capacity=8)
    per_thread = 150
    accepted: list[int] = []
    got: list[int] = []
    lock = threading.Lock()

    def producer(base):
        def run():
            for i in range(per_thread):
                item = meta(base + i)
                while not ring.put(item):
                    pass
                with lock:
                    accepted.append(item.page_id)

        return run

    stop = threading.Event()

    def consumer():
        while not stop.is_set() or not ring.empty:
            item = ring.get()
            if item is not None:
                with lock:
                    got.append(item.page_id)

    consumers = [threading.Thread(target=consumer, daemon=True) for _ in range(2)]
    for thread in consumers:
        thread.start()
    run_threads([producer(0), producer(10_000)])
    stop.set()
    for thread in consumers:
        thread.join(30)
        assert not thread.is_alive()
    assert sorted(got) == sorted(accepted)
    assert 0 <= ring.count <= ring.capacity


@pytest.mark.parametrize("seed", stress_seeds([13, 4711]))
def test_page_iterators_cover_every_page_exactly_once(seed):
    """Real threads each drive one PageIterator off the shared cursor."""
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
    )
    data = cluster.create_set(
        "scan", durability="write-back", page_size=1 * MB, object_bytes=64 * 1024
    )
    data.add_data(list(range(256)))
    iterators = data.get_page_iterators(num_threads=4)
    seen: list[int] = []
    lock = threading.Lock()

    def drive(iterator):
        def run():
            rng = random.Random(seed)
            for page in iterator:
                with lock:
                    seen.append(page.page_id)
                if rng.random() < 0.2:
                    # A slow worker: the cursor must not skip or dup pages
                    # while this thread lags.
                    threading.Event().wait(0.001)

        return run

    run_threads([drive(it) for it in iterators])
    expected = sorted(
        page.page_id for shard in data.shards.values() for page in shard.pages
    )
    assert sorted(seen) == expected
    for shard in data.shards.values():
        for page in shard.pages:
            assert not page.pinned
    # The read service detached exactly once.
    assert data.active_readers == 0
