"""The real multi-core WorkerPool: correctness against the simulated mode.

The ISSUE's acceptance bar: ``WorkerPool(threaded=True)`` runs a stage on
≥ 4 OS threads with results identical to the simulated mode.  The
barrier inside ``page_fn`` forces four *distinct* threads to each process
at least one page before any may continue, so "ran on 4 threads" is
proven, not hoped for.
"""

import threading

import pytest

from repro import MachineProfile, PangeaCluster
from repro.compute import WorkerPool
from repro.sim.devices import GB, MB


def make_dataset(cluster, pages_per_node=8, page_size=1 * MB):
    data = cluster.create_set(
        "d", durability="write-back", page_size=page_size, object_bytes=64 * 1024
    )
    per_page = page_size // (64 * 1024)
    total = pages_per_node * per_page * len(cluster.nodes)
    data.add_data(list(range(total)))
    return data


def test_threaded_matches_simulated_results():
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
    )
    data = make_dataset(cluster)
    page_fn = lambda page: sum(page.records)  # noqa: E731
    simulated = WorkerPool(cluster, workers_per_node=4).run_stage(
        data, page_fn=page_fn, seconds_per_object=1e-5
    )
    threaded = WorkerPool(cluster, workers_per_node=4, threaded=True).run_stage(
        data, page_fn=page_fn, seconds_per_object=1e-5
    )
    assert threaded.per_node == simulated.per_node
    assert threaded.all_results() == simulated.all_results()
    assert threaded.pages_processed == simulated.pages_processed
    for node in cluster.nodes:
        node.pool.check_invariants()


def test_stage_runs_on_at_least_four_os_threads():
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
    )
    data = make_dataset(cluster, pages_per_node=16)
    rendezvous = threading.Barrier(4)
    seen = set()
    seen_lock = threading.Lock()

    def page_fn(page):
        ident = threading.get_ident()
        with seen_lock:
            first_visit = ident not in seen
            seen.add(ident)
        if first_visit:
            # Four distinct threads must each reach this point before any
            # of them proceeds; a pool that under-spawns deadlocks the
            # barrier and fails via its timeout instead of passing.
            rendezvous.wait(timeout=30)
        return page.page_id

    result = WorkerPool(cluster, workers_per_node=4, threaded=True).run_stage(
        data, page_fn=page_fn
    )
    assert len(seen) >= 4
    assert len(result.os_threads_used) >= 4
    assert result.pages_processed == data.num_pages


def test_threaded_under_paging_pressure():
    """The pool is smaller than the dataset: the proxy's pins force
    evictions and reloads mid-stage, concurrently on all workers."""
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=3 * MB)
    )
    data = cluster.create_set(
        "big", durability="write-back", page_size=256 * 1024, object_bytes=16 * 1024
    )
    data.add_data(list(range(24 * 16)))
    page_fn = lambda page: sum(page.records)  # noqa: E731
    simulated = WorkerPool(
        cluster, workers_per_node=4, buffer_capacity=4
    ).run_stage(data, page_fn=page_fn)
    threaded = WorkerPool(
        cluster, workers_per_node=4, buffer_capacity=4, threaded=True
    ).run_stage(data, page_fn=page_fn)
    node = cluster.nodes[0]
    node.pool.check_invariants()
    assert node.pool.stats.pageins > 0
    assert threaded.per_node == simulated.per_node
    assert threaded.pages_processed == data.num_pages
    for page in data.shards[0].pages:
        assert not page.pinned


def test_threaded_kmeans_assignment_stage():
    """A k-means assignment pass (the paper's Fig. 3 workload) computed by
    real threads equals the simulated pass bit for bit."""
    cluster = PangeaCluster(
        num_nodes=2, profile=MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
    )
    data = cluster.create_set(
        "points", durability="write-back", page_size=1 * MB, object_bytes=64 * 1024
    )
    points = [(float(i % 17), float(i % 5)) for i in range(256)]
    data.add_data(points)
    centers = [(0.0, 0.0), (8.0, 2.0), (16.0, 4.0)]

    def assign(page):
        out = []
        for x, y in page.records:
            best = min(
                range(len(centers)),
                key=lambda c: (x - centers[c][0]) ** 2 + (y - centers[c][1]) ** 2,
            )
            out.append(best)
        return out

    simulated = WorkerPool(cluster, workers_per_node=4).run_stage(data, assign)
    threaded = WorkerPool(cluster, workers_per_node=4, threaded=True).run_stage(
        data, assign
    )
    assert threaded.per_node == simulated.per_node


def test_worker_exception_propagates():
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.r4_2xlarge(pool_bytes=4 * GB)
    )
    data = make_dataset(cluster, pages_per_node=4)

    def explode(page):
        raise RuntimeError("worker crashed")

    pool = WorkerPool(cluster, workers_per_node=4, threaded=True)
    with pytest.raises(RuntimeError, match="worker crashed"):
        pool.run_stage(data, explode)
    # The stage's finally path released every pin despite the crash.
    for page in data.shards[0].pages:
        assert not page.pinned
