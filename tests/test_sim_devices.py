"""Tests for the device cost models."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.devices import GB, MB, CpuProfile, DiskArray, DiskDevice
from repro.sim.network import NetworkLink


class TestDiskDevice:
    def test_read_cost_is_latency_plus_bandwidth(self):
        disk = DiskDevice(read_bandwidth=100 * MB, io_latency=1e-3)
        cost = disk.read(100 * MB, num_ios=1)
        assert cost == pytest.approx(1e-3 + 1.0)

    def test_write_cost(self):
        disk = DiskDevice(write_bandwidth=50 * MB, io_latency=0.0)
        assert disk.write(100 * MB) == pytest.approx(2.0)

    def test_many_small_ios_cost_more(self):
        disk = DiskDevice(io_latency=100e-6)
        one = disk.read(64 * MB, num_ios=1)
        many = disk.read(64 * MB, num_ios=16384)
        assert many > one * 5

    def test_charges_attached_clock(self):
        clock = SimClock()
        disk = DiskDevice(clock=clock)
        cost = disk.read(10 * MB)
        assert clock.now == pytest.approx(cost)

    def test_stats_accumulate(self):
        disk = DiskDevice()
        disk.read(100, num_ios=2)
        disk.write(200, num_ios=3)
        assert disk.stats.bytes_read == 100
        assert disk.stats.bytes_written == 200
        assert disk.stats.num_reads == 2
        assert disk.stats.num_writes == 3

    def test_negative_bytes_rejected(self):
        disk = DiskDevice()
        with pytest.raises(ValueError):
            disk.read(-1)
        with pytest.raises(ValueError):
            disk.write(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskDevice(read_bandwidth=0)
        with pytest.raises(ValueError):
            DiskDevice(io_latency=-1)


class TestDiskArray:
    def test_two_disks_double_bandwidth(self):
        one = DiskArray([DiskDevice(io_latency=0)])
        two = DiskArray([DiskDevice(io_latency=0), DiskDevice(io_latency=0)])
        nbytes = 512 * MB
        assert two.read(nbytes) == pytest.approx(one.read(nbytes) / 2)

    def test_write_striping(self):
        two = DiskArray([DiskDevice(io_latency=0), DiskDevice(io_latency=0)])
        cost = two.write(512 * MB)
        single = 512 * MB / (380 * MB)
        assert cost == pytest.approx(single / 2)

    def test_stats_spread_across_disks(self):
        disks = [DiskDevice(), DiskDevice()]
        array = DiskArray(disks)
        array.write(1000)
        assert array.total_bytes_written() == 1000
        assert disks[0].stats.bytes_written > 0
        assert disks[1].stats.bytes_written > 0

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError):
            DiskArray([])

    def test_reset_stats(self):
        array = DiskArray([DiskDevice()])
        array.read(100)
        array.reset_stats()
        assert array.total_bytes_read() == 0


class TestCpuProfile:
    def test_parallel_divides_by_workers(self):
        cpu = CpuProfile(cores=4)
        assert cpu.parallel(4.0, workers=4) == pytest.approx(1.0)

    def test_parallel_capped_at_cores(self):
        cpu = CpuProfile(cores=4)
        assert cpu.parallel(4.0, workers=100) == pytest.approx(1.0)

    def test_memcpy_uses_bandwidth(self):
        cpu = CpuProfile(memcpy_bandwidth=1 * GB)
        assert cpu.memcpy(1 * GB) == pytest.approx(1.0)

    def test_serialize_slower_than_memcpy(self):
        cpu = CpuProfile()
        assert cpu.serialize(1 * GB) > cpu.memcpy(1 * GB)

    def test_per_object(self):
        cpu = CpuProfile(per_object_overhead=100e-9)
        assert cpu.per_object(1000) == pytest.approx(100e-6)

    def test_per_object_factor(self):
        cpu = CpuProfile(per_object_overhead=100e-9)
        assert cpu.per_object(1000, factor=2.0) == pytest.approx(200e-6)

    def test_charges_clock(self):
        clock = SimClock()
        cpu = CpuProfile(clock=clock)
        cpu.compute(2.0)
        assert clock.now == pytest.approx(2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CpuProfile().compute(-1.0)


class TestNetworkLink:
    def test_transfer_cost(self):
        link = NetworkLink(bandwidth=1 * GB, latency=1e-3)
        assert link.transfer(1 * GB, num_messages=1) == pytest.approx(1.0 + 1e-3)

    def test_message_only_latency(self):
        link = NetworkLink(latency=1e-3)
        assert link.message(3) == pytest.approx(3e-3)

    def test_stats(self):
        link = NetworkLink()
        link.transfer(100, num_messages=2)
        assert link.stats.bytes_sent == 100
        assert link.stats.num_messages == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkLink(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkLink(latency=-1)
        with pytest.raises(ValueError):
            NetworkLink().transfer(-5)
