"""Tests for concurrent r-node failure tolerance (paper Sec. 7 extension)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement import (
    HashPartitioner,
    ensure_r_safety,
    expected_unsafe_ratio,
    object_node_spread,
    partition_set,
    recover_concurrent_failures,
    register_replica,
)
from repro.sim.devices import MB


def build(num_nodes=5, rows=600):
    cluster = PangeaCluster(
        num_nodes=num_nodes, profile=MachineProfile.tiny(pool_bytes=32 * MB)
    )
    src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
    src.add_data([{"a": i, "b": (i * 131) % 997, "id": i} for i in range(rows)])
    rep_a = cluster.create_set("rep_a", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_a, HashPartitioner(lambda r: r["a"], 20, key_name="a"))
    rep_b = cluster.create_set("rep_b", page_size=1 * MB, object_bytes=100)
    partition_set(src, rep_b, HashPartitioner(lambda r: r["b"], 20, key_name="b"))
    group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])
    return cluster, group


def all_ids(dataset, failed=()):
    ids = set()
    for node_id, shard in dataset.shards.items():
        if node_id in failed:
            continue
        for page in shard.pages:
            records = page.records
            if not records and page.on_disk:
                records = shard.file.peek_records(page.page_id)
            ids.update(r["id"] for r in records)
    return ids


class TestObjectNodeSpread:
    def test_spread_covers_every_object(self):
        _cluster, group = build()
        spread = object_node_spread(group)
        assert set(spread) == set(range(600))

    def test_colliding_objects_spread_via_safety_set(self):
        _cluster, group = build()
        spread = object_node_spread(group)
        # Thanks to the colliding-object set, every object spans >= 2 nodes.
        assert all(len(nodes) >= 2 for nodes in spread.values())


class TestEnsureRSafety:
    def test_r1_is_already_satisfied(self):
        cluster, group = build()
        assert ensure_r_safety(cluster, group, r=1) is None

    def test_r2_adds_copies_until_three_nodes(self):
        cluster, group = build()
        safety = ensure_r_safety(cluster, group, r=2)
        spread = object_node_spread(group)
        assert all(len(nodes) >= 3 for nodes in spread.values())
        if safety is not None:
            assert safety in group.extra_safety_sets

    def test_r2_unsafety_before_and_after(self):
        cluster, group = build()
        spread = object_node_spread(group)
        before = sum(1 for n in spread.values() if len(n) < 3) / len(spread)
        # Two replicas can never span three nodes on their own.
        assert before > 0.9
        ensure_r_safety(cluster, group, r=2)
        spread = object_node_spread(group)
        after = sum(1 for n in spread.values() if len(n) < 3) / len(spread)
        assert after == 0.0

    def test_expected_unsafe_ratio_monotone_in_nodes(self):
        assert expected_unsafe_ratio(20, 2) < expected_unsafe_ratio(5, 2)

    def test_invalid_r_rejected(self):
        cluster, group = build()
        with pytest.raises(ValueError):
            ensure_r_safety(cluster, group, r=0)
        with pytest.raises(ValueError):
            ensure_r_safety(cluster, group, r=cluster.num_nodes)


class TestConcurrentRecovery:
    def test_two_node_failure_with_r2_safety(self):
        cluster, group = build()
        ensure_r_safety(cluster, group, r=2)
        report = recover_concurrent_failures(cluster, group, [1, 3])
        assert report["unrecoverable"] == 0
        everything = set(range(600))
        for member in group.members:
            assert all_ids(member, failed={1, 3}) == everything

    def test_without_safety_some_objects_can_be_lost(self):
        cluster, group = build()
        # Find a pair of nodes that jointly hold all copies of something.
        spread = object_node_spread(group)
        target_pair = None
        for nodes in spread.values():
            if len(nodes) == 2:
                target_pair = sorted(nodes)
                break
        if target_pair is None:
            pytest.skip("no 2-node object at this scale")
        report = recover_concurrent_failures(cluster, group, target_pair)
        assert report["unrecoverable"] > 0

    def test_recovery_reports_time(self):
        cluster, group = build()
        ensure_r_safety(cluster, group, r=2)
        report = recover_concurrent_failures(cluster, group, [0, 2])
        assert report["seconds"] > 0
