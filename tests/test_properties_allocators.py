"""Property-based tests for the TLSF and slab allocators (ISSUE 1).

Random malloc/free sequences, driven by hypothesis, must never produce
overlapping live blocks, and the allocator's ``used_bytes`` must always
reconcile with the set of live allocations.  The driver mirrors how the
buffer pool uses each allocator: variable-sized requests, frees in
arbitrary order, and retries after exhaustion.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.slab import SlabAllocator, SlabExhaustedError
from repro.buffer.tlsf import TlsfAllocator

ARENA = 1 << 20  # 1 MB


def assert_no_overlap(live: dict) -> None:
    """``live`` maps offset -> reserved size; spans must be disjoint."""
    spans = sorted(live.items())
    for (o1, s1), (o2, _s2) in zip(spans, spans[1:]):
        assert o1 + s1 <= o2, f"blocks [{o1},{o1 + s1}) and at {o2} overlap"


class TestTlsfProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        ops=st.integers(20, 300),
        max_request=st.sampled_from([256, 4096, 65536]),
    )
    def test_random_malloc_free_never_overlaps_and_reconciles(
        self, seed, ops, max_request
    ):
        rng = random.Random(seed)
        alloc = TlsfAllocator(ARENA)
        live: dict[int, int] = {}
        for _ in range(ops):
            if live and (rng.random() < 0.4 or alloc.free_bytes < max_request):
                offset = rng.choice(list(live))
                del live[offset]
                alloc.free(offset)
            else:
                size = rng.randint(1, max_request)
                offset = alloc.malloc(size)
                if offset is None:
                    continue
                live[offset] = alloc.allocated_size(offset)
            assert_no_overlap(live)
            assert alloc.used_bytes == sum(live.values())
            assert 0 <= alloc.used_bytes <= alloc.capacity
            alloc.check_invariants()
        for offset in list(live):
            alloc.free(offset)
        assert alloc.used_bytes == 0
        alloc.check_invariants()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_free_everything_restores_one_block(self, seed):
        rng = random.Random(seed)
        alloc = TlsfAllocator(ARENA)
        offsets = []
        while True:
            offset = alloc.malloc(rng.randint(64, 8192))
            if offset is None:
                break
            offsets.append(offset)
        rng.shuffle(offsets)
        for offset in offsets:
            alloc.free(offset)
        assert alloc.used_bytes == 0
        assert alloc.largest_free_block() == ARENA

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_double_free_always_rejected(self, seed):
        rng = random.Random(seed)
        alloc = TlsfAllocator(ARENA)
        offset = alloc.malloc(rng.randint(64, 4096))
        alloc.free(offset)
        try:
            alloc.free(offset)
        except ValueError:
            return
        raise AssertionError("double free was accepted")


class TestSlabProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        ops=st.integers(20, 300),
    )
    def test_random_alloc_free_never_overlaps_and_reconciles(self, seed, ops):
        rng = random.Random(seed)
        alloc = SlabAllocator(
            ARENA, slab_size=64 * 1024, chunk_min=80, growth_factor=1.25
        )
        live: dict[int, tuple[int, int]] = {}  # offset -> (requested, chunk)
        for _ in range(ops):
            if live and rng.random() < 0.4:
                offset = rng.choice(list(live))
                requested, _chunk = live.pop(offset)
                alloc.free(offset, requested)
            else:
                size = rng.randint(1, 32 * 1024)
                try:
                    offset = alloc.alloc(size)
                except SlabExhaustedError:
                    continue
                live[offset] = (size, alloc.chunk_size_for(size))
            assert_no_overlap({o: chunk for o, (_r, chunk) in live.items()})
            assert alloc.used_bytes == sum(c for _r, c in live.values())
            assert alloc.requested_bytes == sum(r for r, _c in live.values())
            assert 0 <= alloc.used_bytes <= alloc.capacity
        for offset, (requested, _chunk) in list(live.items()):
            alloc.free(offset, requested)
        assert alloc.used_bytes == 0
        assert alloc.requested_bytes == 0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_freed_chunks_are_recycled_within_class(self, seed):
        rng = random.Random(seed)
        alloc = SlabAllocator(ARENA, slab_size=64 * 1024)
        size = rng.randint(81, 100)
        first = alloc.alloc(size)
        alloc.free(first, size)
        again = alloc.alloc(size)
        assert again == first
