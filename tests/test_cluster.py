"""Tests for the cluster façade, manager, and bootstrap auth."""

import pytest

from repro import AuthError, KeyPair, MachineProfile, PangeaCluster
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=8 * MB))


class TestClusterBasics:
    def test_nodes_created(self, cluster):
        assert cluster.num_nodes == 3
        assert [n.node_id for n in cluster.nodes] == [0, 1, 2]

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            PangeaCluster(num_nodes=0)

    def test_create_set_registers_everywhere(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB)
        assert set(data.shards) == {0, 1, 2}
        for node in cluster.nodes:
            assert "s" in node.fs
            assert data.shards[node.node_id] in node.paging.shards

    def test_duplicate_set_rejected(self, cluster):
        cluster.create_set("s")
        with pytest.raises(ValueError):
            cluster.create_set("s")

    def test_get_missing_set_raises(self, cluster):
        with pytest.raises(KeyError):
            cluster.get_set("nope")

    def test_drop_set_cleans_up(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(10)))
        cluster.drop_set("s")
        assert not cluster.manager.has_set("s")
        for node in cluster.nodes:
            assert "s" not in node.fs
            assert node.pool.used_bytes == 0


class TestTimeAndBarriers:
    def test_barrier_synchronizes_clocks(self, cluster):
        cluster.nodes[0].clock.advance(5.0)
        cluster.nodes[2].clock.advance(1.0)
        latest = cluster.barrier()
        assert latest == pytest.approx(5.0)
        assert all(n.clock.now == pytest.approx(5.0) for n in cluster.nodes)

    def test_simulated_seconds_is_max(self, cluster):
        cluster.nodes[1].clock.advance(7.0)
        assert cluster.simulated_seconds() == pytest.approx(7.0)

    def test_reset_clocks(self, cluster):
        cluster.nodes[0].clock.advance(3.0)
        cluster.reset_clocks()
        assert cluster.simulated_seconds() == 0.0


class TestStatisticsService:
    def test_update_and_read_statistics(self, cluster):
        data = cluster.create_set("s", page_size=1 * MB, object_bytes=100)
        data.add_data(list(range(30)))
        stats = cluster.manager.update_statistics(data)
        assert stats.num_objects == 30
        assert stats.logical_bytes == 3000
        assert cluster.manager.statistics("s").num_objects == 30

    def test_replicas_of_unreplicated_set(self, cluster):
        data = cluster.create_set("s")
        assert cluster.manager.replicas_of("s") == [data]

    def test_set_names_sorted(self, cluster):
        cluster.create_set("zz")
        cluster.create_set("aa")
        assert cluster.manager.set_names() == ["aa", "zz"]


class TestBootstrapAuth:
    def test_valid_key_boots(self):
        keys = KeyPair.generate()
        cluster = PangeaCluster(
            num_nodes=1, authorized_key=keys, private_key=keys.private_key
        )
        assert cluster.num_nodes == 1

    def test_invalid_key_terminates(self):
        keys = KeyPair.generate()
        with pytest.raises(AuthError):
            PangeaCluster(num_nodes=1, authorized_key=keys, private_key="wrong")

    def test_missing_key_terminates(self):
        keys = KeyPair.generate()
        with pytest.raises(AuthError):
            PangeaCluster(num_nodes=1, authorized_key=keys)

    def test_open_mode_without_keys(self):
        assert PangeaCluster(num_nodes=1).num_nodes == 1

    def test_keypair_matches(self):
        keys = KeyPair.generate()
        assert keys.matches(keys.private_key)
        assert not keys.matches("nope")


class TestNodeFailure:
    def test_fail_and_recover_flags(self, cluster):
        node = cluster.nodes[1]
        node.fail()
        assert node.failed
        assert len(cluster.alive_nodes()) == 2
        node.recover_process()
        assert len(cluster.alive_nodes()) == 3
