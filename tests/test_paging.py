"""Tests for the paging system driving the buffer pool."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.buffer.pool import BufferPoolFullError
from repro.core.policies import DbminBlockedError
from repro.sim.devices import MB


def small_cluster(policy="data-aware", pool=4 * MB):
    return PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=pool), policy=policy
    )


class TestMakeRoom:
    def test_allocation_pressure_triggers_eviction(self):
        cluster = small_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):  # 8MB of pages through a 4MB pool
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)
            shard.unpin_page(page)
        node = cluster.nodes[0]
        assert node.paging.stats.pages_evicted > 0
        assert node.pool.used_bytes <= node.pool.capacity

    def test_evicted_write_back_pages_reach_disk(self):
        cluster = small_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for i in range(8):
            page = shard.new_page()
            page.append(i, 10)
            shard.seal_page(page)
            shard.unpin_page(page)
        assert cluster.nodes[0].fs.bytes_on_disk > 0

    def test_all_pinned_raises_pool_full(self):
        cluster = small_cluster()
        data = cluster.create_set("s", page_size=1 * MB)
        shard = data.shards[0]
        pages = [shard.new_page() for _ in range(4)]
        assert len(pages) == 4
        with pytest.raises(BufferPoolFullError):
            shard.new_page()

    def test_ticks_advance_on_access(self):
        cluster = small_cluster()
        data = cluster.create_set("s", page_size=1 * MB)
        shard = data.shards[0]
        before = cluster.nodes[0].paging.current_tick
        page = shard.new_page()
        shard.touch(page)
        assert cluster.nodes[0].paging.current_tick > before

    def test_eviction_rounds_counted(self):
        cluster = small_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(6):
            page = shard.new_page()
            shard.unpin_page(page)
        assert cluster.nodes[0].paging.stats.eviction_rounds >= 2


class TestLifetimePriority:
    def test_dead_set_evicted_before_live(self):
        cluster = small_cluster()
        dead = cluster.create_set("dead", durability="write-back", page_size=1 * MB)
        live = cluster.create_set("live", durability="write-back", page_size=1 * MB)
        dead_shard, live_shard = dead.shards[0], live.shards[0]
        for _ in range(2):
            page = dead_shard.new_page()
            dead_shard.unpin_page(page)
        for _ in range(2):
            page = live_shard.new_page()
            live_shard.unpin_page(page)
        dead.end_lifetime()
        # Pool is full (4 pages); the next page must evict the dead set.
        page = live_shard.new_page()
        assert page.in_memory
        assert all(not p.in_memory for p in dead_shard.pages)
        assert all(p.in_memory for p in live_shard.pages[:2])


class TestPolicySwitching:
    def test_set_policy_by_name(self):
        cluster = small_cluster()
        cluster.set_policy("lru")
        assert cluster.nodes[0].paging.policy.name == "lru"

    def test_dbmin_blocking_propagates(self):
        cluster = small_cluster(policy="dbmin-1000")
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        with pytest.raises(DbminBlockedError):
            for _ in range(8):
                page = shard.new_page()
                shard.unpin_page(page)

    def test_unregistered_shard_not_considered(self):
        cluster = small_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        page = shard.new_page()
        shard.unpin_page(page)
        cluster.nodes[0].paging.unregister_shard(shard)
        assert cluster.nodes[0].paging.make_room(1 * MB) is False
