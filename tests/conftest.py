"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import MachineProfile, PangeaCluster
from repro.sim.devices import MB


@pytest.fixture
def tiny_profile() -> MachineProfile:
    return MachineProfile.tiny(pool_bytes=16 * MB)


@pytest.fixture
def cluster(tiny_profile) -> PangeaCluster:
    """A 2-node cluster with small pools (evictions are easy to trigger)."""
    return PangeaCluster(num_nodes=2, profile=tiny_profile)


@pytest.fixture
def single_node() -> PangeaCluster:
    return PangeaCluster(num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB))


def rows_match(got: list, want: list, rel: float = 1e-6, abs_tol: float = 1e-2) -> bool:
    """Compare result rows field-by-field with float tolerance.

    Distributed execution sums floats in a different order than the
    reference, so penny-level drift on large monetary sums is expected.
    """
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        if set(g) != set(w):
            return False
        for key in w:
            gv, wv = g[key], w[key]
            if isinstance(wv, float) or isinstance(gv, float):
                scale = max(abs(float(wv)), 1.0)
                if abs(float(gv) - float(wv)) > max(abs_tol, rel * scale) + 1e-9:
                    return False
            elif gv != wv:
                return False
    return True
