"""Tests for the TLSF allocator, including hypothesis property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.tlsf import MIN_BLOCK_SIZE, TlsfAllocator, _mapping, _mapping_search


class TestMapping:
    def test_power_of_two_lands_on_boundary(self):
        fl, sl = _mapping(1 << 10)
        assert fl == 10
        assert sl == 0

    def test_mapping_search_rounds_up(self):
        size = (1 << 10) + 1
        fl_s, sl_s = _mapping_search(size)
        fl, sl = _mapping(size)
        assert (fl_s, sl_s) >= (fl, sl)

    def test_monotone_in_size(self):
        previous = (0, 0)
        for size in range(64, 4096, 8):
            current = _mapping(size)
            assert current >= previous
            previous = current


class TestTlsfBasics:
    def test_simple_alloc_free(self):
        alloc = TlsfAllocator(1024)
        offset = alloc.malloc(128)
        assert offset == 0
        assert alloc.used_bytes == 128
        alloc.free(offset)
        assert alloc.used_bytes == 0

    def test_alloc_rounds_to_min_block(self):
        alloc = TlsfAllocator(1024)
        alloc.malloc(1)
        assert alloc.used_bytes == MIN_BLOCK_SIZE

    def test_distinct_offsets(self):
        alloc = TlsfAllocator(4096)
        offsets = [alloc.malloc(256) for _ in range(8)]
        assert len(set(offsets)) == 8

    def test_exhaustion_returns_none(self):
        alloc = TlsfAllocator(1024)
        assert alloc.malloc(1024) == 0
        assert alloc.malloc(64) is None

    def test_free_makes_space_reusable(self):
        alloc = TlsfAllocator(1024)
        offset = alloc.malloc(1024)
        assert alloc.malloc(64) is None
        alloc.free(offset)
        assert alloc.malloc(1024) == 0

    def test_coalescing_restores_full_block(self):
        alloc = TlsfAllocator(4096)
        offsets = [alloc.malloc(1024) for _ in range(4)]
        assert alloc.malloc(64) is None
        for offset in offsets:
            alloc.free(offset)
        assert alloc.largest_free_block() == 4096

    def test_coalesce_out_of_order(self):
        alloc = TlsfAllocator(4096)
        offsets = [alloc.malloc(1024) for _ in range(4)]
        for offset in (offsets[2], offsets[0], offsets[3], offsets[1]):
            alloc.free(offset)
        assert alloc.malloc(4096) == 0

    def test_double_free_rejected(self):
        alloc = TlsfAllocator(1024)
        offset = alloc.malloc(128)
        alloc.free(offset)
        with pytest.raises(ValueError):
            alloc.free(offset)

    def test_free_unknown_offset_rejected(self):
        alloc = TlsfAllocator(1024)
        with pytest.raises(ValueError):
            alloc.free(17)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            TlsfAllocator(1024).malloc(0)

    def test_tiny_arena_rejected(self):
        with pytest.raises(ValueError):
            TlsfAllocator(16)

    def test_allocated_size_reports_rounding(self):
        alloc = TlsfAllocator(1024)
        offset = alloc.malloc(100)
        assert alloc.allocated_size(offset) == 104

    def test_variable_sizes_fill_arena(self):
        alloc = TlsfAllocator(1 << 20)
        sizes = [100, 5000, 77, 64000, 333, 1 << 18]
        offsets = [alloc.malloc(s) for s in sizes]
        assert all(o is not None for o in offsets)
        # No overlap between any allocated regions.
        regions = sorted(
            (o, alloc.allocated_size(o)) for o in offsets
        )
        for (o1, s1), (o2, _s2) in zip(regions, regions[1:]):
            assert o1 + s1 <= o2

    def test_invariants_after_mixed_ops(self):
        alloc = TlsfAllocator(1 << 16)
        live = []
        for i in range(50):
            offset = alloc.malloc(64 + (i * 37) % 2000)
            if offset is not None:
                live.append(offset)
            if i % 3 == 0 and live:
                alloc.free(live.pop(0))
        alloc.check_invariants()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=8192)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
        ),
        max_size=120,
    )
)
def test_tlsf_property_random_ops(ops):
    """Invariants hold and no regions overlap under any op sequence."""
    alloc = TlsfAllocator(1 << 17)
    live: list[int] = []
    for kind, value in ops:
        if kind == "alloc":
            offset = alloc.malloc(value)
            if offset is not None:
                live.append(offset)
        elif live:
            index = value % len(live)
            alloc.free(live.pop(index))
    alloc.check_invariants()
    regions = sorted((o, alloc.allocated_size(o)) for o in live)
    for (o1, s1), (o2, _s2) in zip(regions, regions[1:]):
        assert o1 + s1 <= o2
    assert alloc.used_bytes == sum(alloc.allocated_size(o) for o in live)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=60))
def test_tlsf_property_full_free_restores_arena(sizes):
    """Freeing everything always coalesces back to one block."""
    alloc = TlsfAllocator(1 << 18)
    offsets = []
    for size in sizes:
        offset = alloc.malloc(size)
        if offset is not None:
            offsets.append(offset)
    for offset in offsets:
        alloc.free(offset)
    assert alloc.used_bytes == 0
    assert alloc.largest_free_block() == 1 << 18
