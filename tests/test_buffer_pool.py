"""Tests for pages and the unified buffer pool."""

import pytest

from repro.buffer.page import Page
from repro.buffer.pool import BufferPool, BufferPoolFullError
from repro.sim.devices import MB


def make_page(page_id: int, size: int = 1 * MB) -> Page:
    return Page(page_id, size)


class TestPage:
    def test_initial_state(self):
        page = make_page(1)
        assert not page.in_memory
        assert not page.pinned
        assert not page.dirty
        assert page.free_bytes == 1 * MB

    def test_append_tracks_bytes_and_dirty(self):
        page = make_page(1)
        page.append({"x": 1}, 100)
        assert page.used_bytes == 100
        assert page.num_objects == 1
        assert page.dirty

    def test_append_overflow_rejected(self):
        page = Page(1, 128)
        with pytest.raises(ValueError):
            page.append("too big", 200)

    def test_sealed_page_rejects_appends(self):
        page = make_page(1)
        page.seal()
        with pytest.raises(ValueError):
            page.append("x", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Page(1, 0)


class TestBufferPool:
    def test_place_assigns_offset(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        assert page.in_memory
        assert page in pool
        assert pool.used_bytes >= 1 * MB

    def test_place_twice_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        with pytest.raises(ValueError):
            pool.place(page)

    def test_release_returns_space(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.release(page)
        assert not page.in_memory
        assert pool.used_bytes == 0

    def test_release_pinned_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.pin(page)
        with pytest.raises(ValueError):
            pool.release(page)

    def test_pin_requires_residency(self):
        pool = BufferPool(4 * MB)
        with pytest.raises(ValueError):
            pool.pin(make_page(1))

    def test_pin_unpin_reference_counting(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.pin(page)
        pool.pin(page)
        assert page.pin_count == 2
        pool.unpin(page)
        assert page.pinned
        pool.unpin(page)
        assert not page.pinned

    def test_unpin_unpinned_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        with pytest.raises(ValueError):
            pool.unpin(page)

    def test_full_pool_without_evictor_raises(self):
        pool = BufferPool(2 * MB)
        pool.place(make_page(1, 2 * MB))
        with pytest.raises(BufferPoolFullError):
            pool.place(make_page(2, 1 * MB))

    def test_evictor_is_consulted(self):
        pool = BufferPool(2 * MB)
        first = make_page(1, 2 * MB)
        pool.place(first)

        def evictor(needed: int) -> bool:
            if first.in_memory:
                pool.release(first)
                return True
            return False

        pool.evictor = evictor
        second = make_page(2, 1 * MB)
        pool.place(second)
        assert second.in_memory
        assert not first.in_memory
        assert pool.stats.placements == 2

    def test_evictor_giving_up_raises(self):
        pool = BufferPool(2 * MB)
        pool.place(make_page(1, 2 * MB))
        pool.evictor = lambda needed: False
        with pytest.raises(BufferPoolFullError):
            pool.place(make_page(2, 1 * MB))

    def test_variable_page_sizes(self):
        pool = BufferPool(8 * MB)
        sizes = [1 * MB, 2 * MB, 512 * 1024, 64 * 1024]
        pages = [make_page(i, s) for i, s in enumerate(sizes)]
        for page in pages:
            pool.place(page)
        offsets = sorted((p.offset, p.size) for p in pages)
        for (o1, s1), (o2, _s2) in zip(offsets, offsets[1:]):
            assert o1 + s1 <= o2

    def test_slab_pool_allocator(self):
        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        pages = [make_page(i, 1 * MB) for i in range(4)]
        for page in pages:
            pool.place(page)
        pool.release(pages[0])
        replacement = make_page(10, 1 * MB)
        pool.place(replacement)
        assert replacement.in_memory

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(1 * MB, allocator="buddy")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)
