"""Tests for pages and the unified buffer pool."""

import pytest

from repro.buffer.page import Page
from repro.buffer.pool import BufferPool, BufferPoolFullError
from repro.sim.devices import MB


def make_page(page_id: int, size: int = 1 * MB) -> Page:
    return Page(page_id, size)


class TestPage:
    def test_initial_state(self):
        page = make_page(1)
        assert not page.in_memory
        assert not page.pinned
        assert not page.dirty
        assert page.free_bytes == 1 * MB

    def test_append_tracks_bytes_and_dirty(self):
        page = make_page(1)
        page.append({"x": 1}, 100)
        assert page.used_bytes == 100
        assert page.num_objects == 1
        assert page.dirty

    def test_append_overflow_rejected(self):
        page = Page(1, 128)
        with pytest.raises(ValueError):
            page.append("too big", 200)

    def test_sealed_page_rejects_appends(self):
        page = make_page(1)
        page.seal()
        with pytest.raises(ValueError):
            page.append("x", 10)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Page(1, 0)


class TestBufferPool:
    def test_place_assigns_offset(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        assert page.in_memory
        assert page in pool
        assert pool.used_bytes >= 1 * MB

    def test_place_twice_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        with pytest.raises(ValueError):
            pool.place(page)

    def test_release_returns_space(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.release(page)
        assert not page.in_memory
        assert pool.used_bytes == 0

    def test_release_pinned_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.pin(page)
        with pytest.raises(ValueError):
            pool.release(page)

    def test_pin_requires_residency(self):
        pool = BufferPool(4 * MB)
        with pytest.raises(ValueError):
            pool.pin(make_page(1))

    def test_pin_unpin_reference_counting(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        pool.pin(page)
        pool.pin(page)
        assert page.pin_count == 2
        pool.unpin(page)
        assert page.pinned
        pool.unpin(page)
        assert not page.pinned

    def test_unpin_unpinned_rejected(self):
        pool = BufferPool(4 * MB)
        page = make_page(1)
        pool.place(page)
        with pytest.raises(ValueError):
            pool.unpin(page)

    def test_full_pool_without_evictor_raises(self):
        pool = BufferPool(2 * MB)
        pool.place(make_page(1, 2 * MB))
        with pytest.raises(BufferPoolFullError):
            pool.place(make_page(2, 1 * MB))

    def test_evictor_is_consulted(self):
        pool = BufferPool(2 * MB)
        first = make_page(1, 2 * MB)
        pool.place(first)

        def evictor(needed: int) -> bool:
            if first.in_memory:
                pool.release(first)
                return True
            return False

        pool.evictor = evictor
        second = make_page(2, 1 * MB)
        pool.place(second)
        assert second.in_memory
        assert not first.in_memory
        assert pool.stats.placements == 2

    def test_evictor_giving_up_raises(self):
        pool = BufferPool(2 * MB)
        pool.place(make_page(1, 2 * MB))
        pool.evictor = lambda needed: False
        with pytest.raises(BufferPoolFullError):
            pool.place(make_page(2, 1 * MB))

    def test_variable_page_sizes(self):
        pool = BufferPool(8 * MB)
        sizes = [1 * MB, 2 * MB, 512 * 1024, 64 * 1024]
        pages = [make_page(i, s) for i, s in enumerate(sizes)]
        for page in pages:
            pool.place(page)
        offsets = sorted((p.offset, p.size) for p in pages)
        for (o1, s1), (o2, _s2) in zip(offsets, offsets[1:]):
            assert o1 + s1 <= o2

    def test_slab_pool_allocator(self):
        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        pages = [make_page(i, 1 * MB) for i in range(4)]
        for page in pages:
            pool.place(page)
        pool.release(pages[0])
        replacement = make_page(10, 1 * MB)
        pool.place(replacement)
        assert replacement.in_memory

    def test_unknown_allocator_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(1 * MB, allocator="buddy")

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestEvictionRetryBounds:
    """Regression tests for the place() livelock (ISSUE 1, satellite 1).

    Before the bound, an evictor that reported success without freeing
    any bytes sent ``place`` into an unbounded retry loop."""

    def test_lying_evictor_raises_instead_of_livelocking(self):
        pool = BufferPool(2 * MB)
        pool.place(make_page(1, 2 * MB))
        calls = []
        pool.evictor = lambda needed: calls.append(needed) or True
        with pytest.raises(BufferPoolFullError, match="freed no bytes"):
            pool.place(make_page(2, 1 * MB))
        # Exactly one no-progress round, not an infinite loop.
        assert len(calls) == 1

    def test_progress_bound_is_enforced(self):
        pool = BufferPool(4 * MB, max_eviction_rounds=2)
        tiny_pages = [make_page(i, 64 * 1024) for i in range(8)]
        big = make_page(100, 3 * MB + 512 * 1024)
        for page in tiny_pages:
            pool.place(page)
        pool.place(big)

        victims = list(tiny_pages)

        def slow_evictor(needed: int) -> bool:
            # Frees real bytes every round, but never enough for the
            # 2 MB request while `big` stays resident.
            if victims:
                pool.release(victims.pop())
                return True
            return False

        pool.evictor = slow_evictor
        with pytest.raises(BufferPoolFullError, match="eviction rounds"):
            pool.place(make_page(200, 2 * MB))

    def test_bounded_retries_still_succeed_with_honest_evictor(self):
        pool = BufferPool(2 * MB, max_eviction_rounds=8)
        resident = [make_page(i, 512 * 1024) for i in range(4)]
        for page in resident:
            pool.place(page)

        def evictor(needed: int) -> bool:
            if resident:
                pool.release(resident.pop())
                return True
            return False

        pool.evictor = evictor
        replacement = make_page(10, 2 * MB)
        pool.place(replacement)
        assert replacement.in_memory

    def test_nonpositive_round_bound_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(1 * MB, max_eviction_rounds=0)


class TestSlabAdapter:
    """Regression tests for _SlabPoolAdapter.free (ISSUE 1, satellite 2)."""

    def test_free_unknown_offset_raises_value_error(self):
        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        page = make_page(1, 1 * MB)
        pool.place(page)
        with pytest.raises(ValueError, match="no allocated page at offset"):
            pool._alloc.free(page.offset + 1)

    def test_double_free_raises_value_error(self):
        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        page = make_page(1, 1 * MB)
        pool.place(page)
        offset = page.offset
        pool.release(page)
        with pytest.raises(ValueError, match="no allocated page at offset"):
            pool._alloc.free(offset)

    def test_allocated_size_unknown_offset_raises(self):
        pool = BufferPool(8 * MB, allocator="slab", max_page_size=1 * MB)
        with pytest.raises(ValueError, match="no allocated page at offset"):
            pool._alloc.allocated_size(12345)


class TestInvariantChecker:
    def test_clean_pool_passes(self):
        pool = BufferPool(8 * MB)
        pages = [make_page(i, 1 * MB) for i in range(4)]
        for page in pages:
            pool.place(page)
        pool.check_invariants()
        pool.release(pages[0])
        pool.check_invariants()

    def test_overlap_is_detected(self):
        pool = BufferPool(8 * MB)
        first = make_page(1, 1 * MB)
        second = make_page(2, 1 * MB)
        pool.place(first)
        pool.place(second)
        second.offset = first.offset  # corrupt the placement
        with pytest.raises(AssertionError):
            pool.check_invariants()

    def test_accounting_drift_is_detected(self):
        pool = BufferPool(8 * MB)
        page = make_page(1, 1 * MB)
        pool.place(page)
        pool._alloc.used_bytes += 64  # corrupt the allocator accounting
        with pytest.raises(AssertionError, match="accounting drifted"):
            pool.check_invariants()
