"""Tests for the dispatch (data import) service."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner
from repro.services.dispatcher import Dispatcher
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=16 * MB))


@pytest.fixture
def dataset(cluster):
    return cluster.create_set("imported", page_size=1 * MB, object_bytes=100)


class TestRoundRobin:
    def test_records_spread_evenly(self, cluster, dataset):
        report = Dispatcher(dataset).import_data([{"i": i} for i in range(300)])
        assert report.records == 300
        assert set(report.per_node.values()) == {100}
        assert dataset.num_objects == 300

    def test_bytes_accounted(self, cluster, dataset):
        report = Dispatcher(dataset).import_data(
            [{"i": i} for i in range(10)], nbytes_each=200
        )
        assert report.bytes == 2000
        assert dataset.logical_bytes == 2000

    def test_network_charged(self, cluster, dataset):
        Dispatcher(dataset).import_data([{"i": i} for i in range(300)])
        assert any(n.network.stats.bytes_sent > 0 for n in cluster.nodes)

    def test_import_time_reported(self, cluster, dataset):
        report = Dispatcher(dataset).import_data([{"i": i} for i in range(100)])
        assert report.seconds > 0

    def test_imported_data_cached_in_pool(self, cluster, dataset):
        """The paper's point: imported data is already in the buffer pool."""
        Dispatcher(dataset).import_data([{"i": i} for i in range(300)])
        before = sum(n.pool.stats.pageins for n in cluster.nodes)
        assert sorted(r["i"] for r in dataset.scan_records()) == list(range(300))
        after = sum(n.pool.stats.pageins for n in cluster.nodes)
        assert after == before  # no reload needed


class TestHashDispatch:
    def test_same_key_same_node(self, cluster, dataset):
        dispatcher = Dispatcher(dataset, policy="hash", key_fn=lambda r: r["k"])
        dispatcher.import_data([{"k": i % 10, "i": i} for i in range(200)])
        for shard in dataset.shards.values():
            keys_here = {r["k"] for p in shard.pages for r in p.records}
            for other in dataset.shards.values():
                if other is shard:
                    continue
                other_keys = {r["k"] for p in other.pages for r in p.records}
                assert not (keys_here & other_keys)

    def test_hash_requires_key_fn(self, cluster, dataset):
        with pytest.raises(ValueError):
            Dispatcher(dataset, policy="hash")

    def test_unknown_policy_rejected(self, cluster, dataset):
        with pytest.raises(ValueError):
            Dispatcher(dataset, policy="zigzag")


class TestPartitionerDispatch:
    def test_partitioned_import_registers_scheme(self, cluster, dataset):
        partitioner = HashPartitioner(lambda r: r["k"], 12, key_name="k")
        Dispatcher(dataset, policy=partitioner).import_data(
            [{"k": i} for i in range(120)]
        )
        assert dataset.partition_scheme == partitioner.scheme()
        assert dataset.partitioner is partitioner

    def test_partition_locality(self, cluster, dataset):
        partitioner = HashPartitioner(lambda r: r["k"], 12, key_name="k")
        Dispatcher(dataset, policy=partitioner).import_data(
            [{"k": i} for i in range(120)]
        )
        node_ids = sorted(dataset.shards)
        for node_id, shard in dataset.shards.items():
            for page in shard.pages:
                for record in page.records:
                    expected = node_ids[
                        partitioner.partition_of(record) % len(node_ids)
                    ]
                    assert expected == node_id
