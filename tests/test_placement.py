"""Tests for partitioners and the partition_set service."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import (
    HashPartitioner,
    PartitionComp,
    PartitionScheme,
    RangePartitioner,
    RoundRobinPartitioner,
    partition_set,
)
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=16 * MB))


class TestPartitioners:
    def test_hash_partitioner_stable(self):
        part = HashPartitioner(lambda r: r["k"], 8, key_name="k")
        record = {"k": 42}
        assert part.partition_of(record) == part.partition_of(record)
        assert 0 <= part.partition_of(record) < 8

    def test_hash_partition_of_key_matches_record(self):
        part = HashPartitioner(lambda r: r["k"], 8)
        assert part.partition_of({"k": "abc"}) == part.partition_of_key("abc")

    def test_range_partitioner_boundaries(self):
        part = RangePartitioner(lambda r: r, [10, 20], key_name="v")
        assert part.partition_of(5) == 0
        assert part.partition_of(10) == 1
        assert part.partition_of(15) == 1
        assert part.partition_of(25) == 2

    def test_round_robin_cycles(self):
        part = RoundRobinPartitioner(3)
        assert [part.partition_of(None) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            PartitionComp(lambda r: r, 0)

    def test_scheme_metadata(self):
        part = HashPartitioner(lambda r: r, 16, key_name="l_orderkey")
        scheme = part.scheme()
        assert scheme == PartitionScheme("hash", "l_orderkey", 16)

    def test_co_partitioned_requires_same_kind_and_count(self):
        a = PartitionScheme("hash", "x", 16)
        b = PartitionScheme("hash", "y", 16)
        c = PartitionScheme("hash", "x", 8)
        d = PartitionScheme("range", "x", 16)
        assert a.co_partitioned_with(b)
        assert not a.co_partitioned_with(c)
        assert not a.co_partitioned_with(d)
        assert not a.co_partitioned_with(None)


class TestPartitionSet:
    def test_records_preserved(self, cluster):
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        rows = [{"k": i} for i in range(300)]
        src.add_data(rows)
        dst = cluster.create_set("dst", page_size=1 * MB, object_bytes=100)
        partition_set(src, dst, HashPartitioner(lambda r: r["k"], 12, key_name="k"))
        got = sorted(r["k"] for r in dst.scan_records())
        assert got == list(range(300))

    def test_partition_locality(self, cluster):
        """All records of one partition land on that partition's node."""
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i} for i in range(300)])
        dst = cluster.create_set("dst", page_size=1 * MB, object_bytes=100)
        part = HashPartitioner(lambda r: r["k"], 12, key_name="k")
        partition_set(src, dst, part)
        node_ids = sorted(dst.shards)
        for node_id, shard in dst.shards.items():
            for page in shard.pages:
                for record in page.records:
                    expected = node_ids[part.partition_of(record) % len(node_ids)]
                    assert expected == node_id

    def test_scheme_registered_in_catalog(self, cluster):
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i} for i in range(10)])
        dst = cluster.create_set("dst", page_size=1 * MB, object_bytes=100)
        part = HashPartitioner(lambda r: r["k"], 6, key_name="k")
        partition_set(src, dst, part)
        assert dst.partition_scheme == part.scheme()
        assert dst.partitioner is part
        assert cluster.manager.statistics("dst").partition_scheme == part.scheme()

    def test_cross_node_moves_charge_network(self, cluster):
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i} for i in range(300)])
        dst = cluster.create_set("dst", page_size=1 * MB, object_bytes=100)
        partition_set(src, dst, HashPartitioner(lambda r: r["k"], 12, key_name="k"))
        assert any(n.network.stats.bytes_sent > 0 for n in cluster.nodes)

    def test_source_left_untouched(self, cluster):
        src = cluster.create_set("src", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i} for i in range(50)])
        dst = cluster.create_set("dst", page_size=1 * MB, object_bytes=100)
        partition_set(src, dst, HashPartitioner(lambda r: r["k"], 6, key_name="k"))
        assert src.num_objects == 50
        assert src.partition_scheme is None
