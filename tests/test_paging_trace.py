"""Tests for the paging eviction trace (observability)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.sim.devices import MB


def pressured_cluster(policy="data-aware"):
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB), policy=policy
    )
    cluster.nodes[0].paging.enable_trace()
    return cluster


class TestTrace:
    def test_disabled_by_default(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        assert cluster.nodes[0].paging.trace is None

    def test_records_evictions(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)
            shard.unpin_page(page)
        trace = cluster.nodes[0].paging.trace
        assert len(trace) >= 4
        assert all(e.set_name == "s" for e in trace)
        assert all(e.policy == "data-aware" for e in trace)

    def test_dirty_write_back_evictions_flush(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        for event in cluster.nodes[0].paging.trace:
            if event.was_dirty:
                assert event.flushed

    def test_write_through_evictions_need_no_flush(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-through", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)  # persisted at write time
            shard.unpin_page(page)
        assert all(not e.was_dirty for e in cluster.nodes[0].paging.trace)

    def test_dead_set_evicted_first_in_trace(self):
        cluster = pressured_cluster()
        dead = cluster.create_set("dead", durability="write-back", page_size=1 * MB)
        live = cluster.create_set("live", durability="write-back", page_size=1 * MB)
        for shard in (dead.shards[0], live.shards[0]):
            for _ in range(2):
                page = shard.new_page()
                shard.unpin_page(page)
        dead.end_lifetime()
        live.shards[0].new_page()  # force one eviction round
        trace = cluster.nodes[0].paging.trace
        assert trace[0].set_name == "dead"

    def test_mru_trace_order(self):
        cluster = pressured_cluster(policy="mru")
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        pages = []
        for _ in range(4):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        shard.new_page()  # eviction under MRU takes the newest unpinned
        trace = cluster.nodes[0].paging.trace
        assert trace[0].page_id == pages[-1].page_id

    def test_trace_is_bounded(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        cluster.nodes[0].paging.enable_trace(capacity=5)
        data = cluster.create_set("s", durability="write-back", page_size=256 * 1024)
        data.add_data(list(range(64)), nbytes_each=128 * 1024)
        assert len(cluster.nodes[0].paging.trace) <= 5

    def test_disable_trace(self):
        cluster = pressured_cluster()
        cluster.nodes[0].paging.disable_trace()
        assert cluster.nodes[0].paging.trace is None
