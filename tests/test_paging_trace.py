"""Tests for the paging eviction trace (observability)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.sim.devices import MB


def pressured_cluster(policy="data-aware"):
    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB), policy=policy
    )
    cluster.nodes[0].paging.enable_trace()
    return cluster


class TestTrace:
    def test_disabled_by_default(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        assert cluster.nodes[0].paging.trace is None

    def test_records_evictions(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)
            shard.unpin_page(page)
        trace = cluster.nodes[0].paging.trace
        assert len(trace) >= 4
        assert all(e.set_name == "s" for e in trace)
        assert all(e.policy == "data-aware" for e in trace)

    def test_dirty_write_back_evictions_flush(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        for event in cluster.nodes[0].paging.trace:
            if event.was_dirty:
                assert event.flushed

    def test_write_through_evictions_need_no_flush(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-through", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)  # persisted at write time
            shard.unpin_page(page)
        assert all(not e.was_dirty for e in cluster.nodes[0].paging.trace)

    def test_dead_set_evicted_first_in_trace(self):
        cluster = pressured_cluster()
        dead = cluster.create_set("dead", durability="write-back", page_size=1 * MB)
        live = cluster.create_set("live", durability="write-back", page_size=1 * MB)
        for shard in (dead.shards[0], live.shards[0]):
            for _ in range(2):
                page = shard.new_page()
                shard.unpin_page(page)
        dead.end_lifetime()
        live.shards[0].new_page()  # force one eviction round
        trace = cluster.nodes[0].paging.trace
        assert trace[0].set_name == "dead"

    def test_mru_trace_order(self):
        cluster = pressured_cluster(policy="mru")
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        pages = []
        for _ in range(4):
            page = shard.new_page()
            shard.unpin_page(page)
            pages.append(page)
        shard.new_page()  # eviction under MRU takes the newest unpinned
        trace = cluster.nodes[0].paging.trace
        assert trace[0].page_id == pages[-1].page_id

    def test_trace_is_bounded(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        cluster.nodes[0].paging.enable_trace(capacity=5)
        data = cluster.create_set("s", durability="write-back", page_size=256 * 1024)
        data.add_data(list(range(64)), nbytes_each=128 * 1024)
        assert len(cluster.nodes[0].paging.trace) <= 5

    def test_disable_trace(self):
        cluster = pressured_cluster()
        cluster.nodes[0].paging.disable_trace()
        assert cluster.nodes[0].paging.trace is None


class TestEvictionEventFields:
    def test_fields_are_fully_populated(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        known_ids = set()
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.seal_page(page)
            shard.unpin_page(page)
            known_ids.add(page.page_id)
        paging = cluster.nodes[0].paging
        assert len(paging.trace) > 0
        for event in paging.trace:
            assert event.tick > 0
            assert event.tick <= paging.current_tick
            assert event.set_name == "s"
            assert event.page_id in known_ids
            assert isinstance(event.was_dirty, bool)
            assert isinstance(event.flushed, bool)
            assert event.policy == "data-aware"

    def test_events_are_immutable(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        event = cluster.nodes[0].paging.trace[0]
        with pytest.raises(AttributeError):
            event.page_id = 999

    def test_flushed_implies_was_dirty(self):
        cluster = pressured_cluster()
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(8):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        for event in cluster.nodes[0].paging.trace:
            if event.flushed:
                assert event.was_dirty


class TestTraceRingBounds:
    def evict_n_times(self, cluster, n):
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(n):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)

    def test_enable_trace_default_capacity(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        cluster.nodes[0].paging.enable_trace()
        assert cluster.nodes[0].paging.trace.maxlen == 1024

    def test_ring_keeps_only_newest_events(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        cluster.nodes[0].paging.enable_trace(capacity=3)
        self.evict_n_times(cluster, 16)
        trace = cluster.nodes[0].paging.trace
        assert len(trace) == 3
        ticks = [event.tick for event in trace]
        assert ticks == sorted(ticks)
        assert ticks[-1] <= cluster.nodes[0].paging.current_tick

    def test_reenable_resets_the_ring(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        cluster.nodes[0].paging.enable_trace(capacity=64)
        self.evict_n_times(cluster, 8)
        assert len(cluster.nodes[0].paging.trace) > 0
        cluster.nodes[0].paging.enable_trace(capacity=2)
        assert len(cluster.nodes[0].paging.trace) == 0
        assert cluster.nodes[0].paging.trace.maxlen == 2

    def test_nonpositive_capacity_rejected(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        with pytest.raises(ValueError):
            cluster.nodes[0].paging.enable_trace(capacity=0)

    def test_trace_capacity_constructor_arg(self):
        from repro.core.paging import PagingSystem

        assert PagingSystem(trace_capacity=7).trace.maxlen == 7
        assert PagingSystem(trace_capacity=0).trace is None


class TestPagingStatsReset:
    def test_reset_zeroes_all_counters(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(6):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        stats = cluster.nodes[0].paging.stats
        assert stats.eviction_rounds > 0
        assert stats.pages_evicted > 0
        stats.reset()
        assert stats.eviction_rounds == 0
        assert stats.pages_evicted == 0

    def test_counters_resume_after_reset(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )
        data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
        shard = data.shards[0]
        for _ in range(4):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        cluster.nodes[0].paging.stats.reset()
        for _ in range(4):
            page = shard.new_page()
            page.append("x", 10)
            shard.unpin_page(page)
        assert cluster.nodes[0].paging.stats.pages_evicted > 0
