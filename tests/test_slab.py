"""Tests for the Memcached-style slab allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.slab import SlabAllocator, SlabExhaustedError, build_size_classes


class TestSizeClasses:
    def test_geometric_growth(self):
        classes = build_size_classes(chunk_min=80, growth_factor=1.25, chunk_max=1 << 20)
        assert classes[0] == 80
        assert classes[-1] == 1 << 20
        for a, b in zip(classes, classes[1:]):
            assert b > a

    def test_aligned_to_eight(self):
        for size in build_size_classes()[:-1]:
            assert size % 8 == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_size_classes(chunk_min=0)
        with pytest.raises(ValueError):
            build_size_classes(growth_factor=1.0)


class TestSlabAllocator:
    def test_alloc_free_roundtrip(self):
        slab = SlabAllocator(1 << 20)
        offset = slab.alloc(100)
        assert slab.used_bytes >= 100
        slab.free(offset, 100)
        assert slab.used_bytes == 0

    def test_same_class_reuses_chunk(self):
        slab = SlabAllocator(1 << 20)
        offset = slab.alloc(100)
        slab.free(offset, 100)
        assert slab.alloc(100) == offset

    def test_distinct_chunks(self):
        slab = SlabAllocator(1 << 20)
        offsets = {slab.alloc(64) for _ in range(100)}
        assert len(offsets) == 100

    def test_chunk_size_for(self):
        slab = SlabAllocator(1 << 20, chunk_min=80, growth_factor=1.25)
        assert slab.chunk_size_for(80) == 80
        assert slab.chunk_size_for(81) > 80

    def test_exhaustion_raises(self):
        slab = SlabAllocator(4096, slab_size=4096, chunk_min=1024, growth_factor=2.0)
        for _ in range(4):
            slab.alloc(1024)
        with pytest.raises(SlabExhaustedError):
            slab.alloc(1024)

    def test_oversized_request_rejected(self):
        slab = SlabAllocator(1 << 20, slab_size=1 << 16)
        with pytest.raises(ValueError):
            slab.alloc((1 << 16) + 1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SlabAllocator(1 << 20).alloc(0)

    def test_free_unknown_offset_rejected(self):
        with pytest.raises(ValueError):
            SlabAllocator(1 << 20).free(12345, 64)

    def test_free_bytes_accounting(self):
        slab = SlabAllocator(1 << 20)
        before = slab.free_bytes
        offset = slab.alloc(128)
        assert slab.free_bytes < before
        slab.free(offset, 128)
        assert slab.free_bytes == before

    def test_utilization_reflects_internal_fragmentation(self):
        slab = SlabAllocator(1 << 20, chunk_min=80, growth_factor=1.25)
        slab.alloc(81)  # lands in a larger class
        assert 0.0 < slab.utilization < 1.0

    def test_utilization_full_when_untouched(self):
        assert SlabAllocator(1 << 20).utilization == 1.0

    def test_better_utilization_than_naive_rounding(self):
        """The paper credits slab utilization for later spilling."""
        slab = SlabAllocator(1 << 22, chunk_min=80, growth_factor=1.25)
        for _ in range(1000):
            slab.alloc(100)
        # Chunk for 100 bytes is at most 25% larger than the request.
        assert slab.chunk_size_for(100) <= 128


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=2000)),
            st.tuples(st.just("free"), st.integers(min_value=0, max_value=40)),
        ),
        max_size=150,
    )
)
def test_slab_property_accounting(ops):
    """used/requested accounting stays consistent under any op sequence."""
    slab = SlabAllocator(1 << 18, slab_size=1 << 14)
    live: list[tuple[int, int]] = []
    for kind, value in ops:
        if kind == "alloc":
            try:
                offset = slab.alloc(value)
            except SlabExhaustedError:
                continue
            live.append((offset, value))
        elif live:
            offset, size = live.pop(value % len(live))
            slab.free(offset, size)
    assert slab.requested_bytes == sum(size for _, size in live)
    assert slab.used_bytes == sum(slab.chunk_size_for(size) for _, size in live)
    assert slab.used_bytes <= 1 << 18
