"""Property-based fuzzing of the query scheduler against a naive evaluator.

Random plans (filters, maps, joins of every type, aggregations) over
random tables must produce exactly what a direct in-memory evaluation
produces, whichever physical strategy the scheduler picks.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineProfile, PangeaCluster
from repro.query.operators import ScanNode
from repro.query.scheduler import QueryScheduler
from repro.sim.devices import MB


def build_cluster(left_rows, right_rows):
    cluster = PangeaCluster(
        num_nodes=3, profile=MachineProfile.tiny(pool_bytes=64 * MB)
    )
    left = cluster.create_set("left", page_size=1 * MB, object_bytes=64)
    right = cluster.create_set("right", page_size=1 * MB, object_bytes=64)
    left.add_data(left_rows)
    right.add_data(right_rows)
    return cluster


row = st.fixed_dictionaries(
    {
        "k": st.integers(min_value=0, max_value=12),
        "v": st.integers(min_value=-50, max_value=50),
    }
)


def freeze(rows):
    return sorted(
        (tuple(sorted(r.items())) for r in rows),
    )


@settings(max_examples=25, deadline=None)
@given(
    left_rows=st.lists(row, max_size=40),
    right_rows=st.lists(row, max_size=40),
    threshold=st.integers(min_value=-20, max_value=20),
    how=st.sampled_from(["inner", "left_semi", "left_anti", "left_outer"]),
    broadcast=st.booleans(),
)
def test_join_fuzz_matches_naive_evaluation(
    left_rows, right_rows, threshold, how, broadcast
):
    cluster = build_cluster(left_rows, right_rows)
    scheduler = QueryScheduler(
        cluster,
        broadcast_threshold=1 * MB if broadcast else 0,
        object_bytes=64,
    )
    plan = (
        ScanNode("left")
        .filter(lambda r: r["v"] > threshold)
        .join(
            ScanNode("right"),
            left_key=lambda r: r["k"],
            right_key=lambda r: r["k"],
            merge=lambda l, r: {
                "k": l["k"],
                "lv": l["v"],
                "rv": None if r is None else r["v"],
            },
            how=how,
        )
    )
    got = scheduler.execute(plan)

    # Naive evaluation.
    filtered = [r for r in left_rows if r["v"] > threshold]
    by_key: dict = {}
    for r in right_rows:
        by_key.setdefault(r["k"], []).append(r)
    want = []
    for l in filtered:
        matches = by_key.get(l["k"], [])
        if how == "inner":
            want.extend({"k": l["k"], "lv": l["v"], "rv": m["v"]} for m in matches)
        elif how == "left_semi":
            if matches:
                want.append(l)
        elif how == "left_anti":
            if not matches:
                want.append(l)
        else:
            if matches:
                want.extend(
                    {"k": l["k"], "lv": l["v"], "rv": m["v"]} for m in matches
                )
            else:
                want.append({"k": l["k"], "lv": l["v"], "rv": None})
    assert freeze(got) == freeze(want)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(row, max_size=60),
    modulus=st.integers(min_value=1, max_value=5),
)
def test_aggregate_fuzz_matches_naive_evaluation(rows, modulus):
    cluster = build_cluster(rows, [])
    scheduler = QueryScheduler(cluster, object_bytes=64)
    plan = (
        ScanNode("left")
        .map(lambda r: {"g": r["k"] % modulus, "v": r["v"]})
        .aggregate(
            key_fn=lambda r: r["g"],
            seed_fn=lambda r: (r["v"], 1),
            merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            final_fn=lambda g, acc: {"g": g, "sum": acc[0], "n": acc[1]},
        )
    )
    got = scheduler.execute(plan)
    want: dict = {}
    for r in rows:
        g = r["k"] % modulus
        total, n = want.get(g, (0, 0))
        want[g] = (total + r["v"], n + 1)
    expected = [{"g": g, "sum": t, "n": n} for g, (t, n) in want.items()]
    assert freeze(got) == freeze(expected)


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(row, min_size=1, max_size=50),
    limit=st.integers(min_value=1, max_value=10),
    reverse=st.booleans(),
)
def test_orderby_limit_fuzz(rows, limit, reverse):
    cluster = build_cluster(rows, [])
    scheduler = QueryScheduler(cluster, object_bytes=64)
    plan = (
        ScanNode("left")
        .order_by(lambda r: (r["v"], r["k"]), reverse=reverse)
        .limit(limit)
    )
    got = scheduler.execute(plan)
    want = sorted(rows, key=lambda r: (r["v"], r["k"]), reverse=reverse)[:limit]
    assert [(r["k"], r["v"]) for r in got] == [(r["k"], r["v"]) for r in want]
