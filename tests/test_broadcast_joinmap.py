"""Tests for the broadcast map and join map services."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.services.broadcast import broadcast_map
from repro.services.joinmap import build_join_map
from repro.services.shuffle import ShuffleService
from repro.sim.devices import KB, MB


@pytest.fixture
def cluster():
    return PangeaCluster(num_nodes=2, profile=MachineProfile.tiny(pool_bytes=16 * MB))


class TestBroadcastMap:
    def test_every_node_gets_full_map(self, cluster):
        dim = cluster.create_set("dim", page_size=1 * MB, object_bytes=50)
        dim.add_data([(i, f"v{i}") for i in range(50)])
        bmap = broadcast_map(dim, key_fn=lambda r: r[0])
        for node_id in (0, 1):
            assert bmap.num_keys(node_id) == 50
            assert bmap.lookup(node_id, 7) == [(7, "v7")]
        bmap.drop()

    def test_missing_key_returns_empty(self, cluster):
        dim = cluster.create_set("dim", page_size=1 * MB, object_bytes=50)
        dim.add_data([(1, "a")])
        bmap = broadcast_map(dim, key_fn=lambda r: r[0])
        assert bmap.lookup(0, 999) == []
        bmap.drop()

    def test_duplicate_keys_accumulate(self, cluster):
        dim = cluster.create_set("dim", page_size=1 * MB, object_bytes=50)
        dim.add_data([(1, "a"), (1, "b"), (2, "c")])
        bmap = broadcast_map(dim, key_fn=lambda r: r[0])
        assert sorted(v for _k, v in bmap.lookup(0, 1)) == ["a", "b"]
        bmap.drop()

    def test_broadcast_charges_network(self, cluster):
        dim = cluster.create_set("dim", page_size=1 * MB, object_bytes=50)
        dim.add_data([(i, "x") for i in range(100)])
        bmap = broadcast_map(dim, key_fn=lambda r: r[0])
        assert any(n.network.stats.bytes_sent > 0 for n in cluster.nodes)
        bmap.drop()

    def test_drop_frees_sets(self, cluster):
        dim = cluster.create_set("dim", page_size=1 * MB, object_bytes=50)
        dim.add_data([(1, "a")])
        bmap = broadcast_map(dim, key_fn=lambda r: r[0], name="bm")
        bmap.drop()
        assert not any(name.startswith("bm_") for name in cluster.manager.set_names())


class TestJoinMap:
    def _shuffled(self, cluster):
        service = ShuffleService(
            cluster, "jm_sh", num_partitions=2,
            page_size=1 * MB, small_page_size=64 * KB, object_bytes=60,
        )
        for i in range(200):
            service.buffer_for(0, i % 2).add_object({"key": i % 10, "v": i})
        service.finish_writing()
        return service

    def test_partitioned_tables_on_home_nodes(self, cluster):
        service = self._shuffled(cluster)
        jmap = build_join_map(service, key_fn=lambda r: r["key"], page_size=512 * KB)
        assert jmap.num_partitions == 2
        total = sum(jmap.num_keys(p) for p in range(2))
        assert total == 10  # keys split across the two partitions
        jmap.drop()
        service.drop()

    def test_lookup_returns_all_matches(self, cluster):
        service = self._shuffled(cluster)
        jmap = build_join_map(service, key_fn=lambda r: r["key"], page_size=512 * KB)
        found = []
        for partition in range(2):
            found.extend(jmap.lookup(partition, 3))
        assert len(found) == 20
        assert all(r["key"] == 3 for r in found)
        jmap.drop()
        service.drop()

    def test_drop_cleans_up(self, cluster):
        service = self._shuffled(cluster)
        jmap = build_join_map(service, key_fn=lambda r: r["key"],
                              name="jm", page_size=512 * KB)
        jmap.drop()
        service.drop()
        assert not any(
            name.startswith("jm_") for name in cluster.manager.set_names()
        )
