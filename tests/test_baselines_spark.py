"""Tests for the Spark-like engine baselines."""

import pytest

from repro.baselines.host import BaselineHost
from repro.baselines.spark import SparkKMeans, SparkShuffleSim
from repro.sim.devices import GB, MB
from repro.sim.profiles import MachineProfile


class TestSparkKMeans:
    def test_hdfs_backend_runs(self):
        report = SparkKMeans(num_nodes=10, backend="hdfs").run(1_000_000_000)
        assert not report.failed
        assert report.init_seconds > 0
        assert len(report.iteration_seconds) == 5

    def test_paper_calibration_hdfs(self):
        """Paper: 1B points -> init 146 s, 14 s per iteration."""
        report = SparkKMeans(num_nodes=10, backend="hdfs").run(1_000_000_000)
        assert 100 <= report.init_seconds <= 200
        assert 10 <= report.iteration_seconds[0] <= 20

    def test_paper_calibration_alluxio(self):
        """Paper: init 96 s (1.5x faster), iterations 37 s (3x slower)."""
        hdfs = SparkKMeans(num_nodes=10, backend="hdfs").run(1_000_000_000)
        alluxio = SparkKMeans(num_nodes=10, backend="alluxio").run(1_000_000_000)
        assert alluxio.init_seconds < hdfs.init_seconds
        assert alluxio.iteration_seconds[0] > 2 * hdfs.iteration_seconds[0]

    def test_alluxio_fails_at_two_billion(self):
        report = SparkKMeans(num_nodes=10, backend="alluxio").run(2_000_000_000)
        assert report.failed

    def test_ignite_fails_at_two_billion(self):
        ok = SparkKMeans(num_nodes=10, backend="ignite").run(1_000_000_000)
        bad = SparkKMeans(num_nodes=10, backend="ignite").run(2_000_000_000)
        assert not ok.failed
        assert bad.failed

    def test_ignite_slowest_at_one_billion(self):
        hdfs = SparkKMeans(num_nodes=10, backend="hdfs").run(1_000_000_000)
        ignite = SparkKMeans(num_nodes=10, backend="ignite").run(1_000_000_000)
        assert ignite.total_seconds > hdfs.total_seconds

    def test_memory_accounting_positive(self):
        report = SparkKMeans(num_nodes=10, backend="alluxio").run(1_000_000_000)
        assert report.memory_bytes > 100 * GB

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SparkKMeans(backend="cassandra")


class TestSparkShuffleSim:
    def make(self, cache=8 * GB):
        host = BaselineHost(MachineProfile.m3_xlarge())
        return SparkShuffleSim(host, cache_bytes=cache)

    def test_files_are_cores_times_partitions(self):
        sim = self.make()
        assert sim.num_files == 16

    def test_write_then_read(self):
        sim = self.make()
        write_s = sim.write(500 * MB)
        read_s = sim.read(500 * MB)
        assert write_s > 0
        assert read_s > 0
        assert read_s < write_s  # cached read is much cheaper

    def test_write_scales_linearly_in_memory(self):
        sim = self.make()
        t1 = sim.write(500 * MB)
        sim.cleanup()
        sim2 = self.make()
        t2 = sim2.write(1000 * MB)
        assert t2 == pytest.approx(2 * t1, rel=0.2)

    def test_read_degrades_past_memory(self):
        """The paper's read cliff between 3000 and 4000 MB/thread."""
        small = self.make(cache=8 * GB)
        small.write(1000 * MB)
        fast = small.read(1000 * MB)
        big = self.make(cache=8 * GB)
        big.write(4000 * MB)  # 16GB total > 8GB cache
        slow = big.read(4000 * MB)
        # 4x the data but >4x the time: the extra comes from cache misses
        # (the paper's ratio between 1000 and 4000 MB/thread is ~5x).
        assert slow > fast * 4.5

    def test_cleanup_removes_files(self):
        sim = self.make()
        sim.write(100 * MB)
        sim.cleanup()
        assert sim.fs.file_bytes(sim.file_name(0, 0)) == 0
