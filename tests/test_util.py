"""Tests for shared helpers."""

import pytest

from repro.util import estimate_bytes, stable_hash


class TestEstimateBytes:
    def test_primitives(self):
        assert estimate_bytes(True) == 1
        assert estimate_bytes(42) == 8
        assert estimate_bytes(3.14) == 8

    def test_strings_and_bytes(self):
        assert estimate_bytes("hello") == 5
        assert estimate_bytes(b"abc") == 3
        assert estimate_bytes("") == 1  # never zero

    def test_containers(self):
        assert estimate_bytes((1, 2)) == 8 + 16
        assert estimate_bytes([1, 2, 3]) == 8 + 24
        assert estimate_bytes({"a": 1}) == 8 + 1 + 8

    def test_unknown_objects_get_default(self):
        class Thing:
            pass

        assert estimate_bytes(Thing()) == 64

    def test_nested(self):
        value = {"k": [1, "xy"]}
        assert estimate_bytes(value) == 8 + 1 + (8 + 8 + 2)


class TestStableHash:
    def test_deterministic_across_calls(self):
        for value in (0, -17, "abc", b"abc", ("a", 1), 10 ** 18):
            assert stable_hash(value) == stable_hash(value)

    def test_int_and_string_differ(self):
        assert stable_hash(5) != stable_hash("5")

    def test_tuple_order_matters(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_distribution_over_partitions(self):
        counts = [0] * 8
        for i in range(8000):
            counts[stable_hash(i) % 8] += 1
        assert min(counts) > 800  # roughly uniform

    def test_string_distribution(self):
        counts = [0] * 8
        for i in range(4000):
            counts[stable_hash(f"key-{i}") % 8] += 1
        assert min(counts) > 350

    def test_negative_ints_bounded(self):
        assert 0 <= stable_hash(-12345) < 2 ** 64
