"""Golden-schema tests for the trace exporters (repro.obs.exporters)."""

import io
import json

from repro.obs.exporters import (
    CHROME_TRACE_FIELDS,
    JSONL_SCHEMA,
    chrome_events,
    to_chrome,
    to_jsonl,
)
from repro.obs.tracer import Tracer


def sample_tracer():
    tracer = Tracer()
    tracer.span("disk.read", "disk", node=0, ts=1.0, dur=0.5, tick=3, nbytes=64)
    tracer.instant("pool.pin", "buffer", node=1, ts=2.0, tick=4, page_id=7)
    tracer.counter("pool.used_bytes", "buffer", node=0, ts=3.0, used=42,
                   capacity=100)
    return tracer


class TestJsonlExport:
    def test_every_line_matches_schema_exactly(self):
        stream = io.StringIO()
        count = to_jsonl(sample_tracer(), stream)
        lines = stream.getvalue().splitlines()
        assert count == len(lines) == 3
        for line in lines:
            record = json.loads(line)
            # Exactly the documented keys, in the documented order.
            assert tuple(record) == JSONL_SCHEMA

    def test_values_round_trip(self):
        stream = io.StringIO()
        to_jsonl(sample_tracer(), stream)
        first = json.loads(stream.getvalue().splitlines()[0])
        assert first["ts"] == 1.0
        assert first["tick"] == 3
        assert first["ph"] == "X"
        assert first["cat"] == "disk"
        assert first["name"] == "disk.read"
        assert first["node"] == 0
        assert first["dur"] == 0.5
        assert first["args"] == {"nbytes": 64}

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "events.jsonl"
        count = to_jsonl(sample_tracer(), str(path))
        assert count == 3
        assert len(path.read_text().splitlines()) == 3


class TestChromeExport:
    def test_document_loads_and_has_trace_events(self, tmp_path):
        path = tmp_path / "trace.json"
        count = to_chrome(sample_tracer(), str(path))
        document = json.loads(path.read_text())
        assert count == 3
        assert len(document["traceEvents"]) == 3
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["clock"] == "simulated-seconds"
        assert document["otherData"]["emitted"] == 3
        assert document["otherData"]["dropped"] == 0

    def test_every_event_carries_required_fields(self):
        for event in chrome_events(sample_tracer()):
            for key in CHROME_TRACE_FIELDS:
                assert key in event

    def test_phase_mapping(self):
        events = chrome_events(sample_tracer())
        span, instant, counter = events
        assert span["ph"] == "X"
        assert span["dur"] == 0.5 * 1e6  # microseconds
        assert span["ts"] == 1.0 * 1e6
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert counter["ph"] == "C"
        assert counter["args"]["used"] == 42

    def test_pid_is_node_and_tid_is_category(self):
        events = chrome_events(sample_tracer())
        assert [e["pid"] for e in events] == [0, 1, 0]
        assert [e["tid"] for e in events] == ["disk", "buffer", "buffer"]

    def test_tick_preserved_in_args(self):
        events = chrome_events(sample_tracer())
        assert events[0]["args"]["tick"] == 3
        assert events[1]["args"]["tick"] == 4
