"""Seeded end-to-end chaos test (this PR's acceptance scenario).

One simulated TPC-H-style job runs under transient disk/network faults,
with one deliberately corrupted page image and one node crash mid-scan.
The replicated scan must return correct results at every stage, the
robustness counters must show the stack actually healed (retries,
read-repair, one automatic recovery), and replaying the same seed must
reproduce the identical fault schedule and statistics.

The seed comes from ``PANGEA_FAULT_SEED`` so CI can sweep a matrix of
schedules; any failure is reproducible locally by exporting the seed.
"""

import os

from repro import FaultConfig, FaultInjector, MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.replication import register_replica
from repro.sim.devices import MB
from repro.sim.metrics import aggregate_robustness

SEED = int(os.environ.get("PANGEA_FAULT_SEED", "20260805"))
ROWS = 600


def run_chaos(seed):
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.tiny(pool_bytes=32 * MB)
    )
    cluster.enable_self_healing()
    injector = FaultInjector(
        seed=seed,
        config=FaultConfig(
            disk_read_error_rate=0.08,
            disk_write_error_rate=0.08,
            disk_latency_spike_rate=0.05,
            net_drop_rate=0.08,
            net_slow_rate=0.05,
        ),
    ).attach(cluster)

    # A lineitem-style slice, loaded and partitioned two ways under
    # transient faults (every write/transfer below may be retried).
    rows = [
        {
            "id": i,
            "orderkey": i // 4,
            "suppkey": (i * 131) % 997,
            "qty": (i % 50) + 1,
        }
        for i in range(ROWS)
    ]
    src = cluster.create_set("lineitem", page_size=1 * MB, object_bytes=100)
    src.add_data(rows)
    rep_a = cluster.create_set("li_by_order", page_size=1 * MB, object_bytes=100)
    partition_set(
        src, rep_a, HashPartitioner(lambda r: r["orderkey"], 16, key_name="orderkey")
    )
    rep_b = cluster.create_set("li_by_supp", page_size=1 * MB, object_bytes=100)
    partition_set(
        src, rep_b, HashPartitioner(lambda r: r["suppkey"], 16, key_name="suppkey")
    )
    register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])

    # Spill the scan target so the job reads real (fault-prone) disk
    # images, then corrupt one of them.
    for node_id in sorted(rep_a.shards):
        shard = rep_a.shards[node_id]
        for page in shard.resident_unpinned_pages():
            shard.evict_page(page)
    victim = rep_a.shards[1]
    injector.corrupt_page(victim, victim.pages[0].page_id)

    expected_ids = list(range(ROWS))
    expected_qty = sum(r["qty"] for r in rows)

    def scan():
        ids, qty = [], 0
        for record in rep_a.scan_records():
            ids.append(record["id"])
            qty += record["qty"]
        return sorted(ids), qty

    # Stage 1: scan under transient faults; the corrupted image is
    # detected and read-repaired from the surviving replica.
    assert scan() == (expected_ids, expected_qty)

    # Stage 2: node 2 crashes mid-scan; the in-flight job still finishes.
    injector.schedule_crash("mid-scan", node_id=2, at_count=1)
    assert scan() == (expected_ids, expected_qty)
    assert cluster.nodes[2].failed

    # Stage 3: the detector notices the crash, auto-recovery re-dispatches
    # the lost shard, and the scan fails over transparently.
    assert scan() == (expected_ids, expected_qty)
    assert cluster.nodes[2].failed  # the node itself stays dead; data healed

    return (
        aggregate_robustness(cluster).as_dict(),
        injector.stats.as_dict(),
        round(cluster.simulated_seconds(), 9),
    )


class TestChaos:
    def test_chaos_job_survives_and_heals(self):
        stats, injected, _seconds = run_chaos(SEED)
        assert stats["retries"] >= 1
        assert stats["corruptions_detected"] >= 1
        assert stats["read_repairs"] >= 1
        assert stats["failovers"] >= 1
        assert stats["recoveries"] == 1
        assert injected["crashes"] == 1
        assert injected["corruptions_injected"] == 1

    def test_chaos_replay_is_bit_identical(self):
        assert run_chaos(SEED) == run_chaos(SEED)
