"""Failure-injection tests: behaviour while a node is down."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.recovery import recover_node
from repro.placement.replication import register_replica
from repro.services.sequential import NodeFailedError, SequentialWriter
from repro.sim.devices import MB


@pytest.fixture
def cluster():
    c = PangeaCluster(num_nodes=3, profile=MachineProfile.tiny(pool_bytes=16 * MB))
    data = c.create_set("s", page_size=1 * MB, object_bytes=100)
    data.add_data([{"i": i} for i in range(300)])
    return c


class TestFailedNodeVisibility:
    def test_scan_of_failed_shard_raises(self, cluster):
        cluster.nodes[1].fail()
        data = cluster.get_set("s")
        with pytest.raises(NodeFailedError):
            list(data.scan_records())

    def test_write_to_failed_shard_raises(self, cluster):
        cluster.nodes[1].fail()
        data = cluster.get_set("s")
        with pytest.raises(NodeFailedError):
            with SequentialWriter(data.shards[1]) as writer:
                writer.add_object("x", nbytes=10)

    def test_surviving_shards_still_readable(self, cluster):
        cluster.nodes[1].fail()
        data = cluster.get_set("s")
        from repro.services.sequential import make_shard_iterators

        seen = 0
        for node_id in (0, 2):
            for iterator in make_shard_iterators(data.shards[node_id]):
                for page in iterator:
                    seen += page.num_objects
        assert seen == 200

    def test_recovered_process_restores_access(self, cluster):
        cluster.nodes[1].fail()
        cluster.nodes[1].recover_process()
        data = cluster.get_set("s")
        assert len(list(data.scan_records())) == 300


class TestEndToEndFailureStory:
    def test_fail_recover_requery(self):
        """The full arc: replicate, lose a node, recover, query again."""
        cluster = PangeaCluster(
            num_nodes=4, profile=MachineProfile.tiny(pool_bytes=32 * MB)
        )
        src = cluster.create_set("facts", page_size=1 * MB, object_bytes=100)
        src.add_data([{"k": i, "id": i} for i in range(400)])
        rep_a = cluster.create_set("facts_a", page_size=1 * MB, object_bytes=100)
        partition_set(src, rep_a, HashPartitioner(lambda r: r["k"], 16, key_name="k"))
        rep_b = cluster.create_set("facts_b", page_size=1 * MB, object_bytes=100)
        partition_set(
            src, rep_b,
            HashPartitioner(lambda r: (r["k"] * 31) % 997, 16, key_name="k31"),
        )
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])

        recover_node(cluster, group, failed_node=2)
        # Post-recovery, surviving shards of rep_a hold everything.
        from repro.services.sequential import make_shard_iterators

        ids = set()
        for node_id, shard in rep_a.shards.items():
            if node_id == 2:
                continue
            for iterator in make_shard_iterators(shard):
                for page in iterator:
                    ids.update(r["id"] for r in page.records)
        assert ids == set(range(400))
