"""End-to-end integration tests across subsystems."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.ml.kmeans import PangeaKMeans, generate_points
from repro.placement.partitioner import HashPartitioner, partition_set
from repro.placement.recovery import recover_node
from repro.placement.replication import register_replica
from repro.query.operators import ScanNode
from repro.query.scheduler import QueryScheduler
from repro.services.shuffle import ShuffleService
from repro.sim.devices import GB, KB, MB


class TestSharedBufferPoolAcrossWorkloads:
    def test_user_job_shuffle_and_hash_data_share_one_pool(self):
        """The headline claim: all data types in one pool, coordinated."""
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=8 * MB)
        )
        user = cluster.create_set("user", durability="write-through",
                                  page_size=1 * MB, object_bytes=64 * KB)
        user.add_data(list(range(64)))  # 4MB of user data

        shuffle = ShuffleService(cluster, "sh", num_partitions=2,
                                 page_size=1 * MB, small_page_size=64 * KB,
                                 object_bytes=32 * KB)
        for i in range(128):  # 4MB of shuffle data
            shuffle.buffer_for(0, i % 2).add_object(i)
        shuffle.finish_writing()

        out = cluster.create_set("agg", durability="write-back", page_size=1 * MB)
        buffer = cluster.create_virtual_hash_buffer(out, num_root_partitions=2)
        buffer.combiner = lambda a, b: a + b
        for i in range(2000):
            buffer.insert(i % 100, 1, nbytes=60)

        # Everything coexists under pressure, nothing is lost.
        assert sorted(user.scan_records()) == list(range(64))
        total = sum(
            len(list(shuffle.partition_set(p).scan_records())) for p in range(2)
        )
        assert total == 128
        assert len(dict(buffer.items())) == 100
        for node in cluster.nodes:
            assert node.pool.used_bytes <= node.pool.capacity

    def test_transient_data_evicted_before_user_data_on_lifetime_end(self):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB)
        )
        job = cluster.create_set("job", durability="write-back", page_size=1 * MB)
        shard = job.shards[0]
        for _ in range(2):
            page = shard.new_page()
            shard.unpin_page(page)
        job.end_lifetime()
        user = cluster.create_set("user", durability="write-through",
                                  page_size=1 * MB, object_bytes=512 * KB)
        user.add_data(["x"] * 6)
        # The dead job data was dropped without a single disk write.
        assert all(not p.on_disk for p in shard.pages)
        assert cluster.nodes[0].fs.get_file("job").num_pages == 0


class TestQueryOverRecoveredData:
    def test_query_correct_after_node_failure_and_recovery(self):
        cluster = PangeaCluster(
            num_nodes=3, profile=MachineProfile.tiny(pool_bytes=64 * MB)
        )
        src = cluster.create_set("facts", page_size=1 * MB, object_bytes=64)
        src.add_data([{"k": i, "v": i % 5, "id": i} for i in range(600)])
        rep_a = cluster.create_set("facts_by_k", page_size=1 * MB, object_bytes=64)
        partition_set(src, rep_a, HashPartitioner(lambda r: r["k"], 12, key_name="k"))
        rep_b = cluster.create_set("facts_by_v", page_size=1 * MB, object_bytes=64)
        partition_set(src, rep_b, HashPartitioner(lambda r: r["v"], 12, key_name="v"))
        group = register_replica(rep_a, rep_b, object_id_fn=lambda r: r["id"])

        recover_node(cluster, group, failed_node=1)
        # Query the recovered replica directly (skip the failed node's shard).
        recovered_ids = set()
        for node_id, shard in rep_a.shards.items():
            if node_id == 1:
                continue
            for page in shard.pages:
                records = page.records
                if not records and page.on_disk:
                    records = shard.file.peek_records(page.page_id)
                recovered_ids.update(r["id"] for r in records)
        assert recovered_ids == set(range(600))


class TestKmeansWithQueriesInterleaved:
    def test_two_applications_share_imported_data(self):
        """Pangea's point: imported data is reusable across applications."""
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.r4_2xlarge(pool_bytes=1 * GB)
        )
        km = PangeaKMeans(cluster, k=3, dims=4, page_size=1 * MB)
        points = generate_points(300, dims=4, num_clusters=3)
        data = km.load_points(points, represent=1.0)
        first = km.run(data, represent=1.0, iterations=2)
        # Second application re-reads the same locality set: no re-import.
        pageins_before = sum(n.pool.stats.pageins for n in cluster.nodes)
        second = PangeaKMeans(cluster, k=3, dims=4, page_size=1 * MB)
        result = second.run(data, represent=1.0, iterations=1)
        assert result.centroids.shape == first.centroids.shape
        pageins_after = sum(n.pool.stats.pageins for n in cluster.nodes)
        assert pageins_after == pageins_before  # still fully cached

    def test_kmeans_then_query_on_same_cluster(self):
        cluster = PangeaCluster(
            num_nodes=2, profile=MachineProfile.tiny(pool_bytes=128 * MB)
        )
        table = cluster.create_set("t", page_size=1 * MB, object_bytes=64)
        table.add_data([{"g": i % 3, "x": i} for i in range(120)])
        km = PangeaKMeans(cluster, k=2, dims=4, page_size=1 * MB)
        pts = km.load_points(generate_points(100, dims=4), represent=1.0,
                             name="pts")
        km.run(pts, represent=1.0, iterations=1)
        scheduler = QueryScheduler(cluster, object_bytes=64)
        rows = scheduler.execute(
            ScanNode("t").aggregate(
                key_fn=lambda r: r["g"],
                seed_fn=lambda r: 1,
                merge_fn=lambda a, b: a + b,
                final_fn=lambda k, c: {"g": k, "n": c},
            )
        )
        assert {r["g"]: r["n"] for r in rows} == {0: 40, 1: 40, 2: 40}


class TestPolicyEndToEnd:
    @pytest.mark.parametrize("policy", ["data-aware", "lru", "mru", "dbmin-tuned"])
    def test_full_scan_workload_correct_under_policy(self, policy):
        cluster = PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=4 * MB), policy=policy
        )
        data = cluster.create_set("s", durability="write-back",
                                  page_size=512 * KB, object_bytes=64 * KB)
        records = list(range(256))  # 16MB over a 4MB pool
        data.add_data(records)
        for _ in range(3):
            assert sorted(data.scan_records()) == records

    def test_data_aware_beats_lru_on_mixed_workload(self):
        """The paper's core performance claim, end to end."""
        def run(policy):
            cluster = PangeaCluster(
                num_nodes=1,
                profile=MachineProfile.m3_xlarge(pool_bytes=8 * MB),
                policy=policy,
            )
            data = cluster.create_set("s", durability="write-back",
                                      page_size=1 * MB, object_bytes=128 * KB)
            data.add_data(list(range(128)))  # 16MB over an 8MB pool
            for _ in range(3):
                list(data.scan_records())
            return cluster.simulated_seconds()

        assert run("data-aware") < run("lru")
