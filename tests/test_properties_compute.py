"""Property tests for the compute-model data structures."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compute.circular import CircularBuffer, PageMeta


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=8),
    ops=st.lists(st.sampled_from(["put", "get"]), max_size=200),
)
def test_circular_buffer_is_a_bounded_fifo(capacity, ops):
    """Against a reference deque: same outputs, same occupancy, bounded."""
    ring = CircularBuffer(capacity)
    reference: deque = deque()
    next_id = 0
    for op in ops:
        if op == "put":
            accepted = ring.put(PageMeta(next_id, 0, 0, 0))
            if accepted:
                reference.append(next_id)
            else:
                assert len(reference) == capacity
            next_id += 1
        else:
            meta = ring.get()
            if meta is None:
                assert not reference
            else:
                assert meta.page_id == reference.popleft()
        assert ring.count == len(reference) <= capacity


@settings(max_examples=20, deadline=None)
@given(
    num_pages=st.integers(min_value=0, max_value=12),
    buffer_capacity=st.integers(min_value=1, max_value=6),
)
def test_data_proxy_serves_each_page_exactly_once(num_pages, buffer_capacity):
    from repro import MachineProfile, PangeaCluster
    from repro.compute import DataProxy
    from repro.sim.devices import MB

    cluster = PangeaCluster(
        num_nodes=1, profile=MachineProfile.tiny(pool_bytes=16 * MB)
    )
    data = cluster.create_set("s", durability="write-back", page_size=1 * MB)
    shard = data.shards[0]
    for _ in range(num_pages):
        page = shard.new_page()
        shard.unpin_page(page)
    proxy = DataProxy(shard, buffer_capacity=buffer_capacity)
    served = []
    while True:
        page = proxy.next_page()
        if page is None:
            break
        served.append(page.page_id)
        proxy.release_page(page)
    assert sorted(served) == sorted(p.page_id for p in shard.pages)
    assert proxy.drained
