"""Tests for the structured event tracer (repro.obs.tracer)."""

import pytest

from repro import MachineProfile, PangeaCluster
from repro.obs.tracer import DEFAULT_CAPACITY, NodeTracer, Tracer
from repro.sim.clock import SimClock, TickCounter
from repro.sim.devices import KB, MB


class TestTracer:
    def test_span_instant_counter_phases(self):
        tracer = Tracer()
        tracer.span("disk.read", "disk", node=0, ts=1.0, dur=0.5, nbytes=64)
        tracer.instant("pool.pin", "buffer", node=1, ts=2.0, page_id=7)
        tracer.counter("pool.used_bytes", "buffer", node=0, ts=3.0, used=42)
        events = tracer.events
        assert [e.ph for e in events] == ["X", "i", "C"]
        assert events[0].dur == 0.5
        assert events[0].args == {"nbytes": 64}
        assert events[1].node == 1
        assert events[2].args == {"used": 42}

    def test_ring_overflow_counts_drops(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant("e", "c", node=0, ts=float(i))
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        # Oldest events dropped first.
        assert [e.ts for e in tracer.events] == [6.0, 7.0, 8.0, 9.0]

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.instant("e", "c", node=0, ts=float(i))
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.dropped == 0

    def test_category_counts(self):
        tracer = Tracer()
        tracer.instant("a", "disk", node=0, ts=0.0)
        tracer.instant("b", "disk", node=0, ts=0.0)
        tracer.instant("c", "network", node=0, ts=0.0)
        assert tracer.category_counts() == {"disk": 2, "network": 1}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_default_capacity(self):
        assert Tracer().capacity == DEFAULT_CAPACITY


class TestNodeTracer:
    def test_stamps_node_clock_and_tick(self):
        tracer = Tracer()
        clock = SimClock()
        ticks = TickCounter()
        view = NodeTracer(tracer, node_id=3, clock=clock, ticks=ticks)
        clock.advance(1.5)
        ticks.next()
        ticks.next()
        view.instant("pool.pin", "buffer", page_id=1)
        event = tracer.events[0]
        assert event.node == 3
        assert event.ts == 1.5
        assert event.tick == 2

    def test_span_uses_explicit_start(self):
        tracer = Tracer()
        clock = SimClock()
        view = NodeTracer(tracer, node_id=0, clock=clock)
        start = view.now
        clock.advance(0.25)
        view.span("disk.read", "disk", start, clock.now - start)
        event = tracer.events[0]
        assert event.ts == 0.0
        assert event.dur == 0.25

    def test_now_tracks_clock(self):
        clock = SimClock()
        view = NodeTracer(Tracer(), node_id=0, clock=clock)
        clock.advance(2.0)
        assert view.now == 2.0


def _scan_workload(cluster):
    data = cluster.create_set("s", durability="write-back",
                              page_size=512 * KB, object_bytes=64 * KB)
    data.add_data(list(range(64)))  # 4MB over a 2MB pool
    for _ in range(2):
        list(data.scan_records())


class TestClusterTracing:
    def _cluster(self):
        return PangeaCluster(
            num_nodes=1, profile=MachineProfile.tiny(pool_bytes=2 * MB)
        )

    def test_tracing_disabled_by_default(self):
        cluster = self._cluster()
        node = cluster.nodes[0]
        assert cluster.tracer is None
        assert node.tracer is None
        assert node.disks.tracer is None
        assert node.network.tracer is None
        assert node.pool.tracer is None
        assert node.paging.tracer is None

    def test_enable_tracing_covers_hot_paths(self):
        cluster = self._cluster()
        tracer = cluster.enable_tracing()
        assert cluster.tracer is tracer
        _scan_workload(cluster)
        cats = tracer.category_counts()
        # The paging-heavy scan touches pool, paging, shard, and disk paths.
        assert cats.get("buffer", 0) > 0
        assert cats.get("paging", 0) > 0
        assert cats.get("shard", 0) > 0
        assert cats.get("disk", 0) > 0
        names = {e.name for e in tracer.events}
        assert "paging.make_room" in names
        assert "paging.victim" in names
        assert "shard.evict" in names
        assert "pool.place" in names

    def test_victim_events_carry_cost_model_inputs(self):
        cluster = self._cluster()
        tracer = cluster.enable_tracing()
        _scan_workload(cluster)
        victims = [e for e in tracer.events if e.name == "paging.victim"]
        assert victims
        for event in victims:
            assert set(event.args) >= {"set", "cost", "cw", "vr", "wr",
                                       "preuse", "age", "policy"}
            assert event.args["cost"] >= 0.0
            assert 0.0 <= event.args["preuse"] <= 1.0

    def test_disable_tracing_detaches_everywhere(self):
        cluster = self._cluster()
        tracer = cluster.enable_tracing()
        cluster.disable_tracing()
        node = cluster.nodes[0]
        assert cluster.tracer is None
        assert node.tracer is None
        assert node.disks.tracer is None
        assert node.network.tracer is None
        assert node.pool.tracer is None
        assert node.paging.tracer is None
        before = tracer.emitted
        _scan_workload(cluster)
        assert tracer.emitted == before  # nothing emitted after detach

    def test_tracing_does_not_change_simulated_time(self):
        """Observability must not perturb the cost model."""
        plain = self._cluster()
        _scan_workload(plain)
        traced = self._cluster()
        traced.enable_tracing()
        _scan_workload(traced)
        assert traced.simulated_seconds() == plain.simulated_seconds()

    def test_custom_capacity(self):
        cluster = self._cluster()
        tracer = cluster.enable_tracing(capacity=8)
        _scan_workload(cluster)
        assert len(tracer) <= 8
        assert tracer.dropped == tracer.emitted - len(tracer)
