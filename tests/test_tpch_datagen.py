"""Tests for the TPC-H data generator."""

import pytest

from repro.tpch.datagen import TpchGenerator
from repro.tpch.schema import (
    CURRENT_DATE,
    NATIONS,
    ORDER_PRIORITIES,
    REGIONS,
    SHIP_MODES,
    rows_for,
)


@pytest.fixture(scope="module")
def tables():
    return TpchGenerator(scale=0.002, seed=7).all_tables()


class TestCardinalities:
    def test_fixed_dimension_tables(self, tables):
        assert len(tables["region"]) == 5
        assert len(tables["nation"]) == 25

    def test_scaled_tables(self, tables):
        assert len(tables["orders"]) == rows_for("orders", 0.002)
        assert len(tables["customer"]) == rows_for("customer", 0.002)
        assert len(tables["part"]) == rows_for("part", 0.002)

    def test_lineitem_one_to_seven_per_order(self, tables):
        per_order: dict = {}
        for li in tables["lineitem"]:
            per_order[li["l_orderkey"]] = per_order.get(li["l_orderkey"], 0) + 1
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_partsupp_four_suppliers_per_part(self, tables):
        per_part: dict = {}
        for ps in tables["partsupp"]:
            per_part.setdefault(ps["ps_partkey"], set()).add(ps["ps_suppkey"])
        assert all(len(s) >= 1 for s in per_part.values())
        assert len(per_part) == len(tables["part"])


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = TpchGenerator(scale=0.001, seed=3).all_tables()
        b = TpchGenerator(scale=0.001, seed=3).all_tables()
        assert a == b

    def test_different_seed_different_data(self):
        a = TpchGenerator(scale=0.001, seed=3).orders()
        b = TpchGenerator(scale=0.001, seed=4).orders()
        assert a != b

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TpchGenerator(scale=0)


class TestReferentialIntegrity:
    def test_orders_reference_customers(self, tables):
        customers = {c["c_custkey"] for c in tables["customer"]}
        assert all(o["o_custkey"] in customers for o in tables["orders"])

    def test_lineitems_reference_orders_and_parts(self, tables):
        orders = {o["o_orderkey"] for o in tables["orders"]}
        parts = {p["p_partkey"] for p in tables["part"]}
        for li in tables["lineitem"]:
            assert li["l_orderkey"] in orders
            assert li["l_partkey"] in parts

    def test_nations_reference_regions(self, tables):
        regions = {r["r_regionkey"] for r in tables["region"]}
        assert all(n["n_regionkey"] in regions for n in tables["nation"])


class TestQueryCriticalDistributions:
    def test_date_relationships(self, tables):
        orders = {o["o_orderkey"]: o for o in tables["orders"]}
        for li in tables["lineitem"]:
            assert li["l_shipdate"] > orders[li["l_orderkey"]]["o_orderdate"]
            assert li["l_receiptdate"] > li["l_shipdate"]

    def test_divisible_by_three_customers_have_no_orders(self, tables):
        assert all(o["o_custkey"] % 3 != 0 for o in tables["orders"])

    def test_priorities_and_modes_from_spec(self, tables):
        assert {o["o_orderpriority"] for o in tables["orders"]} <= set(ORDER_PRIORITIES)
        assert {li["l_shipmode"] for li in tables["lineitem"]} <= set(SHIP_MODES)

    def test_returnflag_consistent_with_receiptdate(self, tables):
        for li in tables["lineitem"]:
            if li["l_returnflag"] == "N":
                assert li["l_receiptdate"] > CURRENT_DATE
            else:
                assert li["l_receiptdate"] <= CURRENT_DATE

    def test_promo_parts_exist(self, tables):
        assert any(p["p_type"].startswith("PROMO") for p in tables["part"])

    def test_phone_country_codes(self, tables):
        for c in tables["customer"]:
            code = int(c["c_phone"].split("-")[0])
            assert 10 <= code < 10 + len(NATIONS)
            assert code == c["c_nationkey"] + 10

    def test_region_names(self, tables):
        assert [r["r_name"] for r in tables["region"]] == REGIONS

    def test_special_requests_comments_exist(self):
        tables = TpchGenerator(scale=0.01, seed=7).all_tables()
        assert any(
            "special" in o["o_comment"] and "requests" in o["o_comment"]
            for o in tables["orders"]
        )
