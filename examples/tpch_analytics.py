"""TPC-H analytics with heterogeneous replicas (the paper's Fig. 5 story).

Loads TPC-H, registers the heterogeneous replicas (lineitem partitioned
by l_orderkey *and* by l_partkey, etc.), and shows the query scheduler
turning shuffled joins into local, pipelined co-partitioned joins.

Run:  python examples/tpch_analytics.py
"""

from repro import GB, MB, MachineProfile, PangeaCluster
from repro.query import QueryScheduler
from repro.tpch import QUERIES, REFERENCE_QUERIES, load_tpch, register_tpch_replicas


def main() -> None:
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.tiny(pool_bytes=1 * GB)
    )
    tables = load_tpch(cluster, scale=0.004)
    print(f"loaded TPC-H scale 0.004: {len(tables['lineitem'])} lineitems, "
          f"{len(tables['orders'])} orders")

    groups = register_tpch_replicas(cluster)
    print(f"registered heterogeneous replicas; lineitem group holds "
          f"{len(groups['lineitem'].members)} physical organizations "
          f"({groups['lineitem'].num_colliding} colliding objects protected)")
    print()

    print(f"{'query':6s} {'rows':>5s} {'seconds':>9s} {'strategy':>16s} {'correct':>8s}")
    for name, run in sorted(QUERIES.items()):
        scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB,
                                   object_bytes=144)
        start = cluster.simulated_seconds()
        rows = run(scheduler)
        seconds = cluster.simulated_seconds() - start
        if scheduler.metrics.copartitioned_joins:
            strategy = "co-partitioned"
        elif scheduler.metrics.broadcast_joins:
            strategy = "broadcast"
        else:
            strategy = "scan/agg"
        correct = "yes" if len(rows) == len(REFERENCE_QUERIES[name](tables)) else "NO"
        print(f"{name:6s} {len(rows):5d} {seconds:8.4f}s {strategy:>16s} {correct:>8s}")

    print()
    print("Q04/Q12/Q13/Q14/Q17/Q22 found co-partitioned replicas via the")
    print("statistics service and never shuffled a base table.")


if __name__ == "__main__":
    main()
