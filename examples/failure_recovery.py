"""Heterogeneous replication doing double duty (the paper's Sec. 7 story).

Two replicas of the same dataset, partitioned on *different* keys, serve
both co-partitioned joins and failure recovery — no extra copies needed.
Colliding objects (all copies on one node) are found at partitioning time
and protected in a separate set.

Run:  python examples/failure_recovery.py
"""

from repro import MB, MachineProfile, PangeaCluster
from repro.placement import (
    HashPartitioner,
    expected_colliding_objects,
    partition_set,
    recover_node,
    register_replica,
)


def main() -> None:
    cluster = PangeaCluster(
        num_nodes=5, profile=MachineProfile.tiny(pool_bytes=64 * MB)
    )
    sales = cluster.create_set("sales", page_size=1 * MB, object_bytes=100)
    sales.add_data(
        [{"order": i, "product": (i * 37) % 1000, "id": i} for i in range(5000)]
    )
    print(f"loaded {sales.num_objects} sales rows on {cluster.num_nodes} nodes")

    # Two physical organizations of the same data.
    by_order = cluster.create_set("sales_by_order", page_size=1 * MB,
                                  object_bytes=100)
    partition_set(sales, by_order,
                  HashPartitioner(lambda r: r["order"], 20, key_name="order"))
    by_product = cluster.create_set("sales_by_product", page_size=1 * MB,
                                    object_bytes=100)
    partition_set(sales, by_product,
                  HashPartitioner(lambda r: r["product"], 20, key_name="product"))
    group = register_replica(by_order, by_product, object_id_fn=lambda r: r["id"])

    expected = expected_colliding_objects(5000, cluster.num_nodes,
                                          num_replicas=len(group.members))
    print(f"replication group: {[m.name for m in group.members]}")
    print(f"colliding objects: {group.num_colliding} "
          f"(expected ~{expected:.0f} for random placement) — "
          f"protected in {group.colliding_set.name!r}")

    # Kill a node and recover.
    print("\nfailing node 2 ...")
    report = recover_node(cluster, group, failed_node=2)
    print(f"recovered {report.objects_recovered} objects "
          f"({report.colliding_recovered} from the colliding-object set) "
          f"in {report.seconds:.3f} simulated seconds")

    # Verify both replicas are complete again.
    for replica in (by_order, by_product):
        ids = set()
        for node_id, shard in replica.shards.items():
            if node_id == 2:
                continue
            for page in shard.pages:
                records = page.records or (
                    shard.file.peek_records(page.page_id)
                    if page.on_disk else []
                )
                ids.update(r["id"] for r in records)
        status = "complete" if ids == set(range(5000)) else "INCOMPLETE"
        print(f"  {replica.name}: {status}")


if __name__ == "__main__":
    main()
