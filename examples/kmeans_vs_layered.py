"""k-means on Pangea vs layered Spark stacks (the paper's Fig. 3 story).

Runs the same 1-billion-point workload (scaled down: each actual record
represents 250k logical points) on monolithic Pangea and on three layered
configurations, and prints the latency and memory comparison.

Run:  python examples/kmeans_vs_layered.py
"""

from repro import GB, MachineProfile, PangeaCluster
from repro.baselines.spark import SparkKMeans
from repro.ml.kmeans import PangeaKMeans, generate_points

NUM_LOGICAL = 1_000_000_000
NUM_ACTUAL = 4_000
NODES = 10


def run_pangea():
    cluster = PangeaCluster(
        num_nodes=NODES, profile=MachineProfile.r4_2xlarge(pool_bytes=50 * GB)
    )
    km = PangeaKMeans(cluster, k=10, dims=10, workers=8)
    points = generate_points(NUM_ACTUAL)
    represent = NUM_LOGICAL / NUM_ACTUAL
    data = km.load_points(points, represent=represent)
    result = km.run(data, represent=represent, iterations=5)
    return {
        "init": result.init_seconds,
        "iter": result.avg_iteration_seconds,
        "total": cluster.simulated_seconds(),
        "memory": result.peak_pool_bytes,
    }


def main() -> None:
    print(f"{'system':16s} {'init':>8s} {'iter':>8s} {'total':>9s} {'memory':>9s}")
    pangea = run_pangea()
    print(
        f"{'pangea':16s} {pangea['init']:7.1f}s {pangea['iter']:7.1f}s "
        f"{pangea['total']:8.1f}s {pangea['memory'] / GB:7.0f}GB"
    )
    for backend in ("hdfs", "alluxio", "ignite"):
        report = SparkKMeans(num_nodes=NODES, backend=backend).run(NUM_LOGICAL)
        if report.failed:
            print(f"{'spark-' + backend:16s} FAILED: {report.failure[:50]}")
            continue
        iters = sum(report.iteration_seconds) / len(report.iteration_seconds)
        print(
            f"{'spark-' + backend:16s} {report.init_seconds:7.1f}s {iters:7.1f}s "
            f"{report.total_seconds:8.1f}s {report.memory_bytes / GB:7.0f}GB"
        )
    print()
    print("The monolithic design wins on both axes: no (de)serialization at")
    print("layer boundaries, no redundant caching, coordinated paging.")


if __name__ == "__main__":
    main()
