"""Word count through Pangea's shuffle + hash services (Sec. 3.2's example).

The paper's code sketch — shuffle writers routing records by key into
per-partition locality sets, then readers aggregating each partition —
mapped onto the classic word-count job, with the cluster metrics report
at the end.

Run:  python examples/shuffle_wordcount.py
"""

from repro import MB, MachineProfile, PangeaCluster
from repro.services.hashsvc import VirtualHashBuffer
from repro.services.shuffle import ShuffleService
from repro.sim.metrics import collect, format_table
from repro.util import stable_hash

DOCUMENT = (
    "the monolithic storage manager holds all data in one buffer pool "
    "the buffer pool holds user data job data shuffle data and hash data "
    "one paging policy sees all the data so the pool evicts the right data"
).split()


def main() -> None:
    cluster = PangeaCluster(
        num_nodes=3, profile=MachineProfile.tiny(pool_bytes=32 * MB)
    )
    num_partitions = 3

    # Map phase: every worker routes words to partitions by hash, through
    # virtual shuffle buffers (concurrent-write locality sets).
    shuffle = ShuffleService(
        cluster, "words", num_partitions=num_partitions,
        page_size=1 * MB, small_page_size=64 * 1024, object_bytes=12,
    )
    corpus = DOCUMENT * 400  # ~30k words
    for worker_id, node in enumerate(cluster.nodes):
        share = corpus[worker_id::cluster.num_nodes]
        for word in share:
            partition = stable_hash(word) % num_partitions
            shuffle.buffer_for(worker_id, partition, worker_node=node).add_object(
                word
            )
    shuffle.finish_writing()
    print(f"shuffled {len(corpus)} words into {num_partitions} partition sets")

    # Reduce phase: each partition aggregates its words with the hash
    # service (random-mutable-write locality sets).
    counts: dict = {}
    for partition in range(num_partitions):
        partition_set = shuffle.partition_set(partition)
        home = sorted(partition_set.shards)[0]
        out = cluster.create_set(
            f"counts_p{partition}", durability="write-back",
            page_size=1 * MB, nodes=[home],
        )
        buffer = VirtualHashBuffer(out, num_root_partitions=2,
                                   combiner=lambda a, b: a + b)
        for word in partition_set.scan_records():
            buffer.insert(word, 1, nbytes=20)
        counts.update(dict(buffer.items()))

    top = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print("top words:", ", ".join(f"{w}={c}" for w, c in top))
    assert counts["data"] == DOCUMENT.count("data") * 400

    shuffle.drop()
    print()
    print(format_table(collect(cluster)))


if __name__ == "__main__":
    main()
