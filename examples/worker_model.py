"""Pangea's threading model vs waves of tasks (the paper's Fig. 2 story).

A job stage in Pangea starts long-living workers that pull pinned-page
metadata from a circular buffer fed by the storage process over a socket
— no per-block task scheduling, no all-or-nothing caching concern.

Run:  python examples/worker_model.py
"""

from repro import GB, MB, MachineProfile, PangeaCluster
from repro.compute import DataProxy, WavesOfTasks, WorkerPool


def main() -> None:
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.r4_2xlarge(pool_bytes=8 * GB)
    )
    data = cluster.create_set(
        "blocks", durability="write-back", page_size=64 * MB,
        object_bytes=16 * MB,
    )
    data.add_data(list(range(1024)))  # 16GB of blocks across 4 nodes
    print(f"{data.num_pages} pages of 64MB across {cluster.num_nodes} nodes")

    # Peek at the raw proxy flow on one shard.
    shard = data.shards[0]
    proxy = DataProxy(shard, buffer_capacity=8)
    served = 0
    while True:
        page = proxy.next_page()
        if page is None:
            break
        served += 1
        proxy.release_page(page)
    print(f"data proxy served {served} pages through a "
          f"{proxy.buffer.capacity}-slot circular buffer "
          f"({proxy.buffer.producer_stalls} producer stalls)")

    # Compare the two execution models on the same stage.
    def checksum(page):
        return page.num_objects

    workers = WorkerPool(cluster, workers_per_node=8).run_stage(
        data, page_fn=checksum, seconds_per_object=1e-4
    )
    waves = WavesOfTasks(cluster, cores_per_node=8).run_stage(
        data, page_fn=checksum, seconds_per_object=1e-4
    )
    assert sum(workers.all_results()) == sum(waves.all_results())
    print(f"long-living workers: {workers.seconds:8.3f}s "
          f"({workers.pages_processed} pages)")
    print(f"waves of tasks:      {waves.seconds:8.3f}s "
          f"({waves.tasks_scheduled} tasks scheduled by the driver)")
    print(f"scheduling overhead: "
          f"{100 * (waves.seconds / workers.seconds - 1):.0f}%")


if __name__ == "__main__":
    main()
