"""Data-aware paging vs the classics (the paper's Sec. 6 story).

A read-after-write loop over data twice the size of the buffer pool: LRU
evicts exactly the pages the loop needs next, while the data-aware policy
(like MRU for sequential sets) keeps a stable prefix resident.

Run:  python examples/paging_policies.py
"""

from repro import DbminBlockedError, MB, MachineProfile, PangeaCluster

POLICIES = ["data-aware", "dbmin-tuned", "mru", "lru", "dbmin-adaptive"]


def run(policy: str) -> "tuple[float, int] | None":
    cluster = PangeaCluster(
        num_nodes=1,
        profile=MachineProfile.m3_xlarge(pool_bytes=32 * MB),
        policy=policy,
    )
    node = cluster.nodes[0]
    data = cluster.create_set(
        "stream", durability="write-back", page_size=2 * MB,
        object_bytes=128 * 1024,
    )
    try:
        data.add_data(list(range(512)))  # 64MB over a 32MB pool
        for _ in range(3):
            for _record in data.scan_records(workers=4):
                pass
    except DbminBlockedError:
        return None
    return cluster.simulated_seconds(), node.pool.stats.bytes_paged_out // MB


def main() -> None:
    print(f"{'policy':>16s} {'seconds':>9s} {'paged out':>10s}")
    baseline = None
    for policy in POLICIES:
        outcome = run(policy)
        if outcome is None:
            print(f"{policy:>16s}    BLOCKED (desired size exceeds the pool)")
            continue
        seconds, paged_mb = outcome
        if policy == "data-aware":
            baseline = seconds
        ratio = f"({seconds / baseline:.1f}x)" if baseline else ""
        print(f"{policy:>16s} {seconds:8.3f}s {paged_mb:8d}MB {ratio}")
    print()
    print("LRU thrashes on loop-sequential data; DBMIN variants that trust")
    print("their size estimates block when the estimate exceeds memory.")


if __name__ == "__main__":
    main()
