"""Quickstart: locality sets, services, and the unified buffer pool.

Run:  python examples/quickstart.py
"""

from repro import MB, MachineProfile, PangeaCluster
from repro.services.hashsvc import VirtualHashBuffer


def main() -> None:
    # A 4-worker cluster with small pools so paging is easy to observe.
    cluster = PangeaCluster(
        num_nodes=4, profile=MachineProfile.tiny(pool_bytes=32 * MB)
    )

    # --- user data: a write-through locality set --------------------------
    events = cluster.create_set(
        "events", durability="write-through", page_size=1 * MB, object_bytes=120
    )
    events.add_data(
        [{"user": i % 500, "action": "click" if i % 3 else "buy", "amount": i % 40}
         for i in range(20_000)]
    )
    print(f"loaded {events.num_objects} events over {events.num_pages} pages "
          f"on {len(events.shards)} nodes")

    # --- sequential read service ------------------------------------------
    buys = sum(1 for r in events.scan_records(workers=8) if r["action"] == "buy")
    print(f"scan: {buys} purchase events")

    # --- hash service: aggregate revenue per user -------------------------
    agg_out = cluster.create_set("revenue", durability="write-back",
                                 page_size=1 * MB)
    buffer = VirtualHashBuffer(agg_out, num_root_partitions=8,
                               combiner=lambda a, b: a + b)
    for record in events.scan_records():
        if record["action"] == "buy":
            buffer.insert(record["user"], record["amount"], nbytes=24)
    revenue = dict(buffer.items())
    top_user = max(revenue, key=revenue.get)
    print(f"hash aggregation: {len(revenue)} users, top user {top_user} "
          f"spent {revenue[top_user]}")

    # --- what it all cost on the simulated hardware -----------------------
    print(f"simulated time: {cluster.simulated_seconds() * 1e3:.2f} ms")
    node = cluster.nodes[0]
    print(f"node 0 pool: {node.pool.used_bytes // MB} MB used of "
          f"{node.pool.capacity // MB} MB, "
          f"{node.pool.stats.evictions} evictions, "
          f"{node.pool.stats.pageouts} page-outs")


if __name__ == "__main__":
    main()
