"""Cost models for the devices the paper's experiments exercise.

All costs are returned in simulated seconds and also charged to the owning
:class:`~repro.sim.clock.SimClock` when one is attached.  Parameters default
to values calibrated against the hardware in the paper's evaluation (AWS
r4.2xlarge workers and an m3.xlarge micro-benchmark instance with SSD
instance-store disks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SimClock

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass
class DiskStats:
    """Byte and operation counters for one disk."""

    bytes_read: int = 0
    bytes_written: int = 0
    num_reads: int = 0
    num_writes: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.num_reads = 0
        self.num_writes = 0


class DiskDevice:
    """A single SSD with sequential bandwidth and per-I/O latency.

    The cost of one operation is ``latency + nbytes / bandwidth``; issuing
    many small I/Os therefore costs far more than a few large ones, which is
    what makes the paper's 64MB pages beat the OS VM's 4KB pages (Sec. 9.2.1).
    """

    def __init__(
        self,
        name: str = "ssd0",
        read_bandwidth: float = 450 * MB,
        write_bandwidth: float = 380 * MB,
        io_latency: float = 100e-6,
        clock: SimClock | None = None,
    ) -> None:
        if read_bandwidth <= 0 or write_bandwidth <= 0:
            raise ValueError("disk bandwidth must be positive")
        if io_latency < 0:
            raise ValueError("disk latency cannot be negative")
        self.name = name
        self.read_bandwidth = float(read_bandwidth)
        self.write_bandwidth = float(write_bandwidth)
        self.io_latency = float(io_latency)
        self.clock = clock
        self.stats = DiskStats()

    def _charge(self, seconds: float) -> float:
        if self.clock is not None:
            self.clock.advance(seconds)
        return seconds

    def read(self, nbytes: int, num_ios: int = 1) -> float:
        """Charge a read of ``nbytes`` spread over ``num_ios`` operations."""
        if nbytes < 0:
            raise ValueError("cannot read a negative number of bytes")
        num_ios = max(1, num_ios)
        self.stats.bytes_read += nbytes
        self.stats.num_reads += num_ios
        return self._charge(num_ios * self.io_latency + nbytes / self.read_bandwidth)

    def write(self, nbytes: int, num_ios: int = 1) -> float:
        """Charge a write of ``nbytes`` spread over ``num_ios`` operations."""
        if nbytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        num_ios = max(1, num_ios)
        self.stats.bytes_written += nbytes
        self.stats.num_writes += num_ios
        return self._charge(num_ios * self.io_latency + nbytes / self.write_bandwidth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiskDevice({self.name!r}, read={self.read_bandwidth / MB:.0f}MB/s)"


class DiskArray:
    """A set of disks a Pangea data file can be striped across.

    The paper shows 2-disk configurations roughly halving I/O time for
    large sequential transfers (Figs. 7-9, Tab. 3); striping across ``n``
    disks multiplies effective bandwidth by ``n`` while latency stays
    per-operation.
    """

    def __init__(self, disks: list[DiskDevice]) -> None:
        if not disks:
            raise ValueError("a disk array needs at least one disk")
        self.disks = list(disks)
        #: Optional fault hook ``(point, nbytes) -> extra_seconds``; installed
        #: by :meth:`repro.sim.faults.FaultInjector.attach`.  May raise
        #: :class:`~repro.sim.faults.TransientDiskError` (retried by the
        #: file layer) before any bytes are charged.
        self.fault_hook = None
        #: Optional :class:`~repro.obs.tracer.NodeTracer`; installed by
        #: :meth:`repro.cluster.node.WorkerNode.attach_tracer`.
        self.tracer = None

    @property
    def num_disks(self) -> int:
        return len(self.disks)

    def striped_chunks(self, nbytes: int) -> list[int]:
        """The per-disk byte shares of one striped transfer.

        Disk 0 absorbs the remainder so the chunks always sum to
        ``nbytes``; this is the split :meth:`read`/:meth:`write` charge
        and the cost model must price (a heterogeneous array's slowest
        disk bounds the whole transfer).
        """
        share = nbytes // self.num_disks
        remainder = nbytes - share * (self.num_disks - 1)
        return [remainder if i == 0 else share for i in range(self.num_disks)]

    def estimate_read_seconds(self, nbytes: int, num_ios: int = 1) -> float:
        """The seconds :meth:`read` would charge — no stats, clock, or
        faults.  Used by the paging cost model (``cr``)."""
        ios = max(1, num_ios // self.num_disks)
        return max(
            ios * disk.io_latency + chunk / disk.read_bandwidth
            for disk, chunk in zip(self.disks, self.striped_chunks(nbytes))
        )

    def estimate_write_seconds(self, nbytes: int, num_ios: int = 1) -> float:
        """The seconds :meth:`write` would charge — no stats, clock, or
        faults.  Used by the paging cost model (``cw``)."""
        ios = max(1, num_ios // self.num_disks)
        return max(
            ios * disk.io_latency + chunk / disk.write_bandwidth
            for disk, chunk in zip(self.disks, self.striped_chunks(nbytes))
        )

    def read(self, nbytes: int, num_ios: int = 1) -> float:
        """Striped read: each disk serves an equal share in parallel."""
        extra = 0.0
        if self.fault_hook is not None:
            extra = self.fault_hook("disk.read", nbytes)
        ios = max(1, num_ios // self.num_disks)
        for disk, chunk in zip(self.disks, self.striped_chunks(nbytes)):
            disk.stats.bytes_read += chunk
            disk.stats.num_reads += ios
        cost = self.estimate_read_seconds(nbytes, num_ios) + extra
        tracer = self.tracer
        if tracer is not None:
            tracer.span("disk.read", "disk", tracer.now, cost,
                        nbytes=nbytes, num_ios=num_ios)
        if self.disks[0].clock is not None:
            self.disks[0].clock.advance(cost)
        return cost

    def write(self, nbytes: int, num_ios: int = 1) -> float:
        """Striped write: each disk absorbs an equal share in parallel."""
        extra = 0.0
        if self.fault_hook is not None:
            extra = self.fault_hook("disk.write", nbytes)
        ios = max(1, num_ios // self.num_disks)
        for disk, chunk in zip(self.disks, self.striped_chunks(nbytes)):
            disk.stats.bytes_written += chunk
            disk.stats.num_writes += ios
        cost = self.estimate_write_seconds(nbytes, num_ios) + extra
        tracer = self.tracer
        if tracer is not None:
            tracer.span("disk.write", "disk", tracer.now, cost,
                        nbytes=nbytes, num_ios=num_ios)
        if self.disks[0].clock is not None:
            self.disks[0].clock.advance(cost)
        return cost

    def write_many(self, sizes: list[int], num_ios: int = 1) -> float:
        """One coalesced striped write covering several page images.

        The batched victim-flush path uses this to charge an N-page
        write-back of one locality set as a single sequential transfer
        (``num_ios`` operations total, default one) instead of N separate
        :meth:`write` calls — N seeks become one while the bytes moved
        stay identical.
        """
        if any(nbytes < 0 for nbytes in sizes):
            raise ValueError("cannot write a negative number of bytes")
        total = sum(sizes)
        extra = 0.0
        if self.fault_hook is not None:
            extra = self.fault_hook("disk.write", total)
        ios = max(1, num_ios // self.num_disks)
        for disk, chunk in zip(self.disks, self.striped_chunks(total)):
            disk.stats.bytes_written += chunk
            disk.stats.num_writes += ios
        cost = self.estimate_write_seconds(total, num_ios) + extra
        tracer = self.tracer
        if tracer is not None:
            tracer.span("disk.write_many", "disk", tracer.now, cost,
                        nbytes=total, pages=len(sizes), num_ios=num_ios)
        if self.disks[0].clock is not None:
            self.disks[0].clock.advance(cost)
        return cost

    def total_bytes_written(self) -> int:
        return sum(d.stats.bytes_written for d in self.disks)

    def total_bytes_read(self) -> int:
        return sum(d.stats.bytes_read for d in self.disks)

    def reset_stats(self) -> None:
        for disk in self.disks:
            disk.stats.reset()


@dataclass
class CpuProfile:
    """Per-node CPU cost model.

    ``memcpy_bandwidth`` covers raw in-memory moves; ``serialize_bandwidth``
    and ``deserialize_bandwidth`` cover object (de)objectification, the
    "interfacing overhead" the paper blames for much of the layered systems'
    slowdown; ``per_object_overhead`` charges fixed work per record (hashing,
    allocation bookkeeping).
    """

    cores: int = 8
    memcpy_bandwidth: float = 8 * GB
    serialize_bandwidth: float = 1.2 * GB
    deserialize_bandwidth: float = 1.0 * GB
    per_object_overhead: float = 25e-9
    clock: SimClock | None = field(default=None, repr=False)

    def _charge(self, seconds: float) -> float:
        if self.clock is not None:
            self.clock.advance(seconds)
        return seconds

    def parallel(self, seconds: float, workers: int = 1) -> float:
        """Charge CPU work shared by ``workers`` threads (capped at cores)."""
        if seconds < 0:
            raise ValueError("cannot charge negative CPU time")
        effective = max(1, min(workers, self.cores))
        return self._charge(seconds / effective)

    def memcpy(self, nbytes: int, workers: int = 1) -> float:
        return self.parallel(nbytes / self.memcpy_bandwidth, workers)

    def serialize(self, nbytes: int, workers: int = 1) -> float:
        return self.parallel(nbytes / self.serialize_bandwidth, workers)

    def deserialize(self, nbytes: int, workers: int = 1) -> float:
        return self.parallel(nbytes / self.deserialize_bandwidth, workers)

    def per_object(self, num_objects: int, workers: int = 1, factor: float = 1.0) -> float:
        return self.parallel(num_objects * self.per_object_overhead * factor, workers)

    def compute(self, seconds: float, workers: int = 1) -> float:
        """Charge arbitrary computation time (e.g. a UDF over records)."""
        return self.parallel(seconds, workers)
