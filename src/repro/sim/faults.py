"""Deterministic, seedable fault injection for the storage stack.

The paper's recovery experiments (Sec. 7, Fig. 6) kill nodes by hand; a
production storage manager also has to survive the quieter failures —
transient I/O errors, corrupted page images, latency spikes, dropped
network transfers — and it has to do so *reproducibly* under test.  This
module provides that layer:

* :class:`FaultInjector` attaches to a :class:`~repro.cluster.cluster.PangeaCluster`
  and injects faults at named points (``disk.read``, ``disk.write``,
  ``net.transfer``, ``net.message``, ``mid-write``, ``mid-scan``,
  ``mid-shuffle``, ``mid-recovery``).  Every probabilistic decision is
  drawn from one seeded RNG, so a failure schedule replays exactly when
  the same seed drives the same workload.
* :class:`RetryPolicy` bounds the retry-with-backoff loops the disk and
  network layers use to survive transient faults; backoff is charged as
  simulated time, so flaky devices show up in the cost model.
* :class:`RobustnessStats` counts what the stack *handled* (retries,
  corruptions detected, read-repairs, failovers, recoveries) as opposed
  to :class:`FaultStats`, which counts what the injector *did*.

Fault streaks are bounded by ``FaultConfig.max_consecutive_faults`` so a
bounded retry loop always wins against rate-based transient faults (the
default streak bound of 2 is below the default 5 retry attempts); set the
streak bound at or above ``max_attempts`` to test hard-failure paths.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.cluster.node import WorkerNode


class FaultError(RuntimeError):
    """Base class for every injected or detected storage fault."""


class TransientDiskError(FaultError):
    """A disk I/O failed transiently; retrying may succeed."""


class TransientNetworkError(FaultError):
    """A network transfer was dropped; retrying may succeed."""


class PageCorruptionError(FaultError):
    """A page image failed checksum verification on read."""


@dataclass
class RetryPolicy:
    """Bounded exponential backoff for transient disk/network faults.

    ``backoff(attempt)`` is the simulated seconds charged before retry
    number ``attempt`` (0-based); the total added latency of a fully
    retried operation is therefore bounded and part of the cost model.
    """

    max_attempts: int = 5
    base_backoff: float = 2e-3
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.base_backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be non-negative and non-decreasing")

    def backoff(self, attempt: int) -> float:
        return self.base_backoff * self.backoff_factor ** max(0, attempt)


@dataclass
class FaultConfig:
    """Rates and magnitudes for the probabilistic fault classes.

    All rates are per-operation probabilities in ``[0, 1]``.  Rates
    default to zero: an attached injector with a default config only
    fires explicitly scheduled faults (crashes, targeted corruption).
    """

    disk_read_error_rate: float = 0.0
    disk_write_error_rate: float = 0.0
    disk_latency_spike_rate: float = 0.0
    disk_latency_spike_seconds: float = 5e-3
    net_drop_rate: float = 0.0
    net_slow_rate: float = 0.0
    net_slow_seconds: float = 2e-3
    #: Probability that a just-written page image is silently corrupted.
    corruption_rate: float = 0.0
    #: Upper bound on consecutive rate-based faults at one (point, node)
    #: site.  Keep below RetryPolicy.max_attempts so bounded retries
    #: always succeed against transient faults.
    max_consecutive_faults: int = 2


@dataclass
class FaultStats:
    """What the injector did (one counter per fault class)."""

    disk_read_faults: int = 0
    disk_write_faults: int = 0
    latency_spikes: int = 0
    net_drops: int = 0
    net_slowdowns: int = 0
    corruptions_injected: int = 0
    crashes: int = 0

    def reset(self) -> None:
        self.disk_read_faults = 0
        self.disk_write_faults = 0
        self.latency_spikes = 0
        self.net_drops = 0
        self.net_slowdowns = 0
        self.corruptions_injected = 0
        self.crashes = 0

    def as_dict(self) -> dict:
        return {
            "disk_read_faults": self.disk_read_faults,
            "disk_write_faults": self.disk_write_faults,
            "latency_spikes": self.latency_spikes,
            "net_drops": self.net_drops,
            "net_slowdowns": self.net_slowdowns,
            "corruptions_injected": self.corruptions_injected,
            "crashes": self.crashes,
        }

    @property
    def total(self) -> int:
        return sum(self.as_dict().values())


@dataclass
class RobustnessStats:
    """What the stack survived (the self-healing counter surface)."""

    retries: int = 0
    corruptions_detected: int = 0
    read_repairs: int = 0
    failovers: int = 0
    recoveries: int = 0

    def reset(self) -> None:
        self.retries = 0
        self.corruptions_detected = 0
        self.read_repairs = 0
        self.failovers = 0
        self.recoveries = 0

    def merge(self, other: "RobustnessStats") -> "RobustnessStats":
        self.retries += other.retries
        self.corruptions_detected += other.corruptions_detected
        self.read_repairs += other.read_repairs
        self.failovers += other.failovers
        self.recoveries += other.recoveries
        return self

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "corruptions_detected": self.corruptions_detected,
            "read_repairs": self.read_repairs,
            "failovers": self.failovers,
            "recoveries": self.recoveries,
        }


#: The named points the stack instruments.  Rate-based faults fire only at
#: the device points; the ``mid-*`` points exist for scheduled crashes.
DEVICE_POINTS = ("disk.read", "disk.write", "net.transfer", "net.message")
NAMED_POINTS = ("mid-write", "mid-scan", "mid-shuffle", "mid-recovery")


class FaultInjector:
    """Injects deterministic faults into an attached cluster.

    >>> injector = FaultInjector(seed=7, config=FaultConfig(
    ...     disk_write_error_rate=0.05))           # doctest: +SKIP
    >>> injector.attach(cluster)                   # doctest: +SKIP
    >>> injector.schedule_crash("mid-scan", node_id=2, at_count=3)  # doctest: +SKIP

    Every decision is drawn from one ``random.Random(seed)``; in the
    (deterministic, simulated-time) single-threaded mode the same seed and
    workload replay the same fault schedule exactly.
    """

    def __init__(self, seed: int = 0, config: FaultConfig | None = None) -> None:
        self.seed = seed
        self.config = config or FaultConfig()
        self.rng = random.Random(seed)
        self.stats = FaultStats()
        self.enabled = True
        self.cluster: "PangeaCluster | None" = None
        #: (point, node_id) -> fire-count at which the node crashes
        self._crash_schedule: dict[tuple[str, int], int] = {}
        #: (set_name, node_id|None) -> write-count at which to corrupt
        self._corruption_schedule: dict[tuple[str, "int | None"], int] = {}
        self._point_counts: dict[tuple[str, int], int] = {}
        self._write_counts: dict[tuple[str, int], int] = {}
        self._streaks: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------

    def attach(self, cluster: "PangeaCluster") -> "FaultInjector":
        """Wire this injector into every node's devices and fault points."""
        self.cluster = cluster
        for node in cluster.nodes:
            node.fault_injector = self

            def hook(point: str, nbytes: int, _node=node) -> float:
                return self.fire(point, _node, nbytes)

            node.disks.fault_hook = hook
            node.network.fault_hook = hook
            node.network.retry_policy = node.retry_policy
            node.network.robustness = node.robustness
        return self

    def detach(self) -> None:
        if self.cluster is None:
            return
        for node in self.cluster.nodes:
            if node.fault_injector is self:
                node.fault_injector = None
                node.disks.fault_hook = None
                node.network.fault_hook = None
        self.cluster = None

    # ------------------------------------------------------------------
    # scheduling (deterministic, count-based)
    # ------------------------------------------------------------------

    def schedule_crash(self, point: str, node_id: int, at_count: int = 1) -> None:
        """Crash ``node_id`` on its ``at_count``-th firing of ``point``."""
        if at_count < 1:
            raise ValueError("at_count is 1-based and must be positive")
        self._crash_schedule[(point, node_id)] = at_count

    def schedule_corruption(
        self, set_name: str, node_id: "int | None" = None, at_write: int = 1
    ) -> None:
        """Corrupt the ``at_write``-th page image written for ``set_name``
        (optionally restricted to one node)."""
        if at_write < 1:
            raise ValueError("at_write is 1-based and must be positive")
        self._corruption_schedule[(set_name, node_id)] = at_write

    def corrupt_page(self, shard, page_id: int) -> None:
        """Deterministically corrupt one existing on-disk page image."""
        shard.file.corrupt_image(page_id)
        self.stats.corruptions_injected += 1

    # ------------------------------------------------------------------
    # the fire path (called from instrumented code)
    # ------------------------------------------------------------------

    def fire(self, point: str, node: "WorkerNode", nbytes: int = 0) -> float:
        """Evaluate faults at ``point`` on ``node``.

        Returns extra latency (simulated seconds) for the caller to charge;
        raises :class:`TransientDiskError` / :class:`TransientNetworkError`
        for transient failures; crashes the node when a scheduled crash
        count is reached (crashes mark the node failed without raising —
        the failure detector and failover paths take it from there).
        """
        if not self.enabled:
            return 0.0
        key = (point, node.node_id)
        count = self._point_counts.get(key, 0) + 1
        self._point_counts[key] = count
        crash_at = self._crash_schedule.get(key)
        if crash_at is not None and count >= crash_at:
            del self._crash_schedule[key]
            self._crash(node)
        cfg = self.config
        extra = 0.0
        if point == "disk.read":
            if self._roll(cfg.disk_read_error_rate, key):
                self.stats.disk_read_faults += 1
                raise TransientDiskError(
                    f"injected transient read error on node {node.node_id}"
                )
            extra += self._spike(
                cfg.disk_latency_spike_rate, cfg.disk_latency_spike_seconds, key
            )
        elif point == "disk.write":
            if self._roll(cfg.disk_write_error_rate, key):
                self.stats.disk_write_faults += 1
                raise TransientDiskError(
                    f"injected transient write error on node {node.node_id}"
                )
            extra += self._spike(
                cfg.disk_latency_spike_rate, cfg.disk_latency_spike_seconds, key
            )
        elif point == "net.transfer":
            if self._roll(cfg.net_drop_rate, key):
                self.stats.net_drops += 1
                raise TransientNetworkError(
                    f"injected dropped transfer on node {node.node_id}"
                )
            if cfg.net_slow_rate > 0 and self.rng.random() < cfg.net_slow_rate:
                self.stats.net_slowdowns += 1
                extra += cfg.net_slow_seconds
        return extra

    def should_corrupt(self, set_name: str, node: "WorkerNode", page_id: int) -> bool:
        """Decide whether the page image just written should be corrupted."""
        if not self.enabled:
            return False
        triggered = False
        for scope in ((set_name, node.node_id), (set_name, None)):
            count = self._write_counts.get(scope, 0) + 1
            self._write_counts[scope] = count
            at_write = self._corruption_schedule.get(scope)
            if at_write is not None and count >= at_write:
                del self._corruption_schedule[scope]
                triggered = True
        if not triggered and self.config.corruption_rate > 0:
            triggered = self.rng.random() < self.config.corruption_rate
        if triggered:
            self.stats.corruptions_injected += 1
        return triggered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _crash(self, node: "WorkerNode") -> None:
        if not node.failed:
            node.fail()
            self.stats.crashes += 1

    def _roll(self, rate: float, streak_key: tuple[str, int]) -> bool:
        """One RNG draw; streaks are capped so bounded retries succeed.

        The draw is consumed whenever ``rate > 0`` regardless of the streak
        state, which keeps the RNG stream (and therefore the replay)
        independent of how faults were handled.
        """
        if rate <= 0:
            return False
        hit = self.rng.random() < rate
        if not hit:
            self._streaks[streak_key] = 0
            return False
        streak = self._streaks.get(streak_key, 0)
        if streak >= self.config.max_consecutive_faults:
            self._streaks[streak_key] = 0
            return False
        self._streaks[streak_key] = streak + 1
        return True

    def _spike(self, rate: float, seconds: float, streak_key: tuple[str, int]) -> float:
        if rate <= 0:
            return 0.0
        if self.rng.random() < rate:
            self.stats.latency_spikes += 1
            return seconds
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(seed={self.seed}, injected={self.stats.total}, "
            f"attached={self.cluster is not None})"
        )


def fire_point(node, point: str, nbytes: int = 0) -> float:
    """Fire a named fault point if ``node`` has an injector attached.

    The instrumented call sites (sequential writer, page iterator, shuffle
    flush, recovery loop) use this helper so an un-instrumented cluster
    pays only one attribute check.
    """
    injector = getattr(node, "fault_injector", None)
    if injector is None:
        return 0.0
    return injector.fire(point, node, nbytes)
