"""Network cost model for the distributed benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.devices import GB


@dataclass
class NetworkStats:
    bytes_sent: int = 0
    num_messages: int = 0

    def reset(self) -> None:
        self.bytes_sent = 0
        self.num_messages = 0


class NetworkLink:
    """A full-duplex link between a node and the cluster fabric.

    AWS r4.2xlarge instances have "up to 10 Gigabit" networking; we default
    to an effective 1.0 GB/s with a per-message latency.  Shuffle and
    broadcast services charge transfers here; the data proxy's metadata
    messages (paper Sec. 5) charge only the latency term.
    """

    def __init__(
        self,
        bandwidth: float = 1.0 * GB,
        latency: float = 150e-6,
        clock: SimClock | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("network bandwidth must be positive")
        if latency < 0:
            raise ValueError("network latency cannot be negative")
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.clock = clock
        self.stats = NetworkStats()

    def _charge(self, seconds: float) -> float:
        if self.clock is not None:
            self.clock.advance(seconds)
        return seconds

    def transfer(self, nbytes: int, num_messages: int = 1) -> float:
        """Charge a bulk transfer of ``nbytes`` in ``num_messages`` messages."""
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        num_messages = max(1, num_messages)
        self.stats.bytes_sent += nbytes
        self.stats.num_messages += num_messages
        return self._charge(num_messages * self.latency + nbytes / self.bandwidth)

    def message(self, num_messages: int = 1) -> float:
        """Charge control-plane messages (page pin/unpin metadata etc.)."""
        self.stats.num_messages += num_messages
        return self._charge(num_messages * self.latency)
