"""Network cost model for the distributed benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.devices import GB
from repro.sim.faults import RetryPolicy, TransientNetworkError


@dataclass
class NetworkStats:
    bytes_sent: int = 0
    num_messages: int = 0
    #: Receive-side accounting, credited by the *sender's* ``transfer``
    #: call when it names the destination link via ``peer=``.
    bytes_received: int = 0
    messages_received: int = 0

    def reset(self) -> None:
        self.bytes_sent = 0
        self.num_messages = 0
        self.bytes_received = 0
        self.messages_received = 0


class NetworkLink:
    """A full-duplex link between a node and the cluster fabric.

    AWS r4.2xlarge instances have "up to 10 Gigabit" networking; we default
    to an effective 1.0 GB/s with a per-message latency.  Shuffle and
    broadcast services charge transfers here; the data proxy's metadata
    messages (paper Sec. 5) charge only the latency term.
    """

    def __init__(
        self,
        bandwidth: float = 1.0 * GB,
        latency: float = 150e-6,
        clock: SimClock | None = None,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("network bandwidth must be positive")
        if latency < 0:
            raise ValueError("network latency cannot be negative")
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.clock = clock
        self.stats = NetworkStats()
        #: Optional fault hook ``(point, nbytes) -> extra_seconds``; installed
        #: by :meth:`repro.sim.faults.FaultInjector.attach`.  May raise
        #: :class:`~repro.sim.faults.TransientNetworkError`, which the
        #: built-in bounded retry loop absorbs (charging backoff time).
        self.fault_hook = None
        self.retry_policy: RetryPolicy | None = None
        #: The owning node's RobustnessStats (set at injector attach time)
        #: so network retries are counted on the node that performed them.
        self.robustness = None
        #: Optional :class:`~repro.obs.tracer.NodeTracer`; installed by
        #: :meth:`repro.cluster.node.WorkerNode.attach_tracer`.
        self.tracer = None

    def _charge(self, seconds: float) -> float:
        if self.clock is not None:
            self.clock.advance(seconds)
        return seconds

    def _fire_with_retries(self, point: str, nbytes: int) -> float:
        """Fire the fault hook, retrying dropped sends with backoff."""
        if self.fault_hook is None:
            return 0.0
        policy = self.retry_policy or RetryPolicy()
        attempt = 0
        while True:
            try:
                return self.fault_hook(point, nbytes)
            except TransientNetworkError:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                if self.robustness is not None:
                    self.robustness.retries += 1
                # Backoff is charged immediately; the successful attempt's
                # extra latency (if any) is returned to the caller.
                self._charge(policy.backoff(attempt - 1))

    def transfer(
        self,
        nbytes: int,
        num_messages: int = 1,
        peer: "NetworkLink | None" = None,
    ) -> float:
        """Charge a bulk transfer of ``nbytes`` in ``num_messages`` messages.

        Transfers survive injected transient drops transparently: each
        dropped attempt charges exponential backoff as simulated time and
        is retried up to the attached :class:`RetryPolicy`'s bound.

        ``peer`` names the destination node's link when the caller knows
        it; the receiver's ``bytes_received``/``messages_received``
        counters are credited (no extra time is charged — the link cost
        model already covers the full transfer).
        """
        if nbytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        extra = self._fire_with_retries("net.transfer", nbytes)
        num_messages = max(1, num_messages)
        self.stats.bytes_sent += nbytes
        self.stats.num_messages += num_messages
        if peer is not None and peer is not self:
            peer.stats.bytes_received += nbytes
            peer.stats.messages_received += num_messages
        cost = num_messages * self.latency + nbytes / self.bandwidth + extra
        tracer = self.tracer
        if tracer is not None:
            tracer.span("net.transfer", "network", tracer.now, cost,
                        nbytes=nbytes, num_messages=num_messages)
        return self._charge(cost)

    def message(self, num_messages: int = 1) -> float:
        """Charge control-plane messages (page pin/unpin metadata etc.)."""
        extra = self._fire_with_retries("net.message", 0)
        self.stats.num_messages += num_messages
        cost = num_messages * self.latency + extra
        tracer = self.tracer
        if tracer is not None:
            tracer.span("net.message", "network", tracer.now, cost,
                        num_messages=num_messages)
        return self._charge(cost)
