"""Calibrated machine profiles matching the paper's evaluation hardware."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.devices import GB, MB, CpuProfile, DiskDevice
from repro.sim.network import NetworkLink


@dataclass
class DiskSpec:
    """Parameters used to instantiate one disk on each worker node."""

    read_bandwidth: float = 450 * MB
    write_bandwidth: float = 380 * MB
    io_latency: float = 100e-6

    def build(self, name: str) -> DiskDevice:
        return DiskDevice(
            name=name,
            read_bandwidth=self.read_bandwidth,
            write_bandwidth=self.write_bandwidth,
            io_latency=self.io_latency,
        )


@dataclass
class MachineProfile:
    """Everything needed to build one simulated worker node.

    ``memory_bytes`` is the RAM the machine has; ``pool_bytes`` is the share
    given to the Pangea buffer pool (the paper uses 50GB of the r4.2xlarge's
    61GB, and ~14GB of the m3.xlarge's 15GB).
    """

    name: str = "custom"
    cores: int = 8
    memory_bytes: int = 61 * GB
    pool_bytes: int = 50 * GB
    num_disks: int = 1
    disk: DiskSpec = field(default_factory=DiskSpec)
    network_bandwidth: float = 1.0 * GB
    network_latency: float = 150e-6
    cpu_memcpy_bandwidth: float = 8 * GB
    cpu_serialize_bandwidth: float = 1.2 * GB
    cpu_deserialize_bandwidth: float = 1.0 * GB
    cpu_per_object_overhead: float = 25e-9

    @classmethod
    def r4_2xlarge(cls, pool_bytes: int = 50 * GB) -> "MachineProfile":
        """The distributed-benchmark worker: 8 cores, 61GB RAM, one 200GB SSD."""
        return cls(
            name="r4.2xlarge",
            cores=8,
            memory_bytes=61 * GB,
            pool_bytes=pool_bytes,
            num_disks=1,
        )

    @classmethod
    def m3_xlarge(cls, num_disks: int = 2, pool_bytes: int = 14 * GB) -> "MachineProfile":
        """The micro-benchmark box: 4 cores, 15GB RAM, two SSD instance disks."""
        return cls(
            name="m3.xlarge",
            cores=4,
            memory_bytes=15 * GB,
            pool_bytes=pool_bytes,
            num_disks=num_disks,
        )

    @classmethod
    def tiny(cls, pool_bytes: int = 64 * MB, num_disks: int = 1) -> "MachineProfile":
        """A small profile for unit tests: 4 cores, tiny pool, fast maths."""
        return cls(
            name="tiny",
            cores=4,
            memory_bytes=4 * pool_bytes,
            pool_bytes=pool_bytes,
            num_disks=num_disks,
        )

    def build_disks(self, node_id: int = 0) -> list[DiskDevice]:
        return [
            self.disk.build(name=f"node{node_id}-ssd{i}") for i in range(self.num_disks)
        ]

    def build_cpu(self) -> CpuProfile:
        return CpuProfile(
            cores=self.cores,
            memcpy_bandwidth=self.cpu_memcpy_bandwidth,
            serialize_bandwidth=self.cpu_serialize_bandwidth,
            deserialize_bandwidth=self.cpu_deserialize_bandwidth,
            per_object_overhead=self.cpu_per_object_overhead,
        )

    def build_network(self) -> NetworkLink:
        return NetworkLink(
            bandwidth=self.network_bandwidth, latency=self.network_latency
        )
