"""Logical clocks for the simulated-time substrate."""

from __future__ import annotations

import threading


class SimClock:
    """A monotonically advancing accumulator of simulated seconds.

    Each worker node owns one clock.  Every device operation (disk I/O,
    memory copy, serialization, network transfer) charges its cost here.
    Cluster-wide stage barriers synchronize all node clocks to the maximum,
    which models the bulk-synchronous execution used by the paper's
    distributed benchmarks.

    Thread-safe: the threaded :class:`~repro.compute.workers.WorkerPool`
    runs several OS threads per node, all charging the same clock, so the
    read-modify-write in :meth:`advance` is guarded by a leaf lock (held
    for the increment only, never while calling out).
    """

    def __init__(self, now: float = 0.0) -> None:
        if now < 0:
            raise ValueError(f"clock cannot start at negative time: {now}")
        self._now = float(now)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Charge ``seconds`` of simulated time and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, when: float) -> float:
        """Move the clock forward to ``when`` (no-op if already past it)."""
        with self._lock:
            if when > self._now:
                self._now = when
            return self._now

    def reset(self) -> None:
        """Rewind to time zero (used between benchmark runs)."""
        with self._lock:
            self._now = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class TickCounter:
    """A discrete access-sequence counter.

    The paging model in the paper measures page recency in "time ticks",
    which are buffer-pool access events rather than seconds.  The paging
    system increments this counter on every page access and stores the tick
    of the last reference on each page.

    Thread-safe: concurrent workers touching pages race on :meth:`next`;
    the leaf lock makes each tick unique and strictly increasing.
    """

    def __init__(self) -> None:
        self._tick = 0
        self._lock = threading.Lock()

    @property
    def now(self) -> int:
        return self._tick

    def next(self) -> int:
        """Advance by one access event and return the new tick."""
        with self._lock:
            self._tick += 1
            return self._tick

    def reset(self) -> None:
        with self._lock:
            self._tick = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TickCounter(now={self._tick})"
