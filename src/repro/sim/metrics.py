"""Cluster metrics collection and reporting.

Gathers the per-node counters every component maintains (clock, disks,
network, buffer pool, paging) into one snapshot — handy for examples,
benchmarks, and debugging cost-model questions.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.sim.devices import MB
from repro.sim.faults import RobustnessStats

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster


@dataclass
class NodeMetrics:
    """One worker's counters at snapshot time."""

    node_id: int
    seconds: float
    pool_used_bytes: int
    pool_capacity_bytes: int
    disk_bytes_read: int
    disk_bytes_written: int
    network_bytes_sent: int
    evictions: int
    pageouts: int
    pageins: int
    bytes_paged_out: int
    bytes_paged_in: int
    #: Self-healing counters (0 on clusters with no fault injection).
    retries: int = 0
    corruptions_detected: int = 0
    read_repairs: int = 0

    @property
    def pool_utilization(self) -> float:
        if self.pool_capacity_bytes == 0:
            return 0.0
        return self.pool_used_bytes / self.pool_capacity_bytes


@dataclass
class ClusterMetrics:
    """A whole-cluster snapshot."""

    nodes: list = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return max((n.seconds for n in self.nodes), default=0.0)

    @property
    def total_disk_bytes(self) -> int:
        return sum(n.disk_bytes_read + n.disk_bytes_written for n in self.nodes)

    @property
    def total_network_bytes(self) -> int:
        return sum(n.network_bytes_sent for n in self.nodes)

    @property
    def total_evictions(self) -> int:
        return sum(n.evictions for n in self.nodes)

    def skew(self) -> float:
        """Max-over-mean of per-node simulated time (1.0 = perfectly even)."""
        if not self.nodes:
            return 1.0
        times = [n.seconds for n in self.nodes]
        mean = sum(times) / len(times)
        if mean == 0:
            return 1.0
        return max(times) / mean


def collect(cluster: "PangeaCluster") -> ClusterMetrics:
    """Snapshot every node's counters."""
    snapshot = ClusterMetrics()
    for node in cluster.nodes:
        snapshot.nodes.append(
            NodeMetrics(
                node_id=node.node_id,
                seconds=node.clock.now,
                pool_used_bytes=node.pool.used_bytes,
                pool_capacity_bytes=node.pool.capacity,
                disk_bytes_read=node.disks.total_bytes_read(),
                disk_bytes_written=node.disks.total_bytes_written(),
                network_bytes_sent=node.network.stats.bytes_sent,
                evictions=node.pool.stats.evictions,
                pageouts=node.pool.stats.pageouts,
                pageins=node.pool.stats.pageins,
                bytes_paged_out=node.pool.stats.bytes_paged_out,
                bytes_paged_in=node.pool.stats.bytes_paged_in,
                retries=node.robustness.retries,
                corruptions_detected=node.robustness.corruptions_detected,
                read_repairs=node.robustness.read_repairs,
            )
        )
    return snapshot


def aggregate_robustness(cluster: "PangeaCluster") -> RobustnessStats:
    """Merge every node's self-healing counters with the cluster's own
    (failovers and automatic recoveries are counted cluster-side)."""
    total = RobustnessStats()
    for node in cluster.nodes:
        total.merge(node.robustness)
    total.merge(cluster.robustness)
    return total


def format_table(metrics: ClusterMetrics) -> str:
    """Render the snapshot as a fixed-width table."""
    lines = [
        f"{'node':>5s} {'seconds':>9s} {'pool':>12s} {'disk r/w (MB)':>16s} "
        f"{'net (MB)':>9s} {'evict':>6s} {'out/in':>9s}"
    ]
    for n in metrics.nodes:
        pool = f"{n.pool_used_bytes // MB}/{n.pool_capacity_bytes // MB}MB"
        disk = f"{n.disk_bytes_read // MB}/{n.disk_bytes_written // MB}"
        lines.append(
            f"{n.node_id:5d} {n.seconds:8.3f}s {pool:>12s} {disk:>16s} "
            f"{n.network_bytes_sent // MB:8d} {n.evictions:6d} "
            f"{n.pageouts:4d}/{n.pageins:<4d}"
        )
    lines.append(
        f"total: {metrics.simulated_seconds:.3f}s simulated, "
        f"{metrics.total_disk_bytes // MB}MB disk, "
        f"{metrics.total_network_bytes // MB}MB network, "
        f"skew {metrics.skew():.2f}"
    )
    retries = sum(n.retries for n in metrics.nodes)
    repairs = sum(n.read_repairs for n in metrics.nodes)
    corruptions = sum(n.corruptions_detected for n in metrics.nodes)
    if retries or repairs or corruptions:
        lines.append(
            f"robustness: {retries} retries, {corruptions} corruptions "
            f"detected, {repairs} read-repairs"
        )
    return "\n".join(lines)
