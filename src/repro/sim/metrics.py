"""Cluster metrics collection and reporting.

Gathers the per-node counters every component maintains (clock, disks,
network, buffer pool, paging) plus the per-locality-set registry
(:mod:`repro.obs.registry`) into one snapshot — the foundation every
benchmark number and tuning decision rests on.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.obs.registry import SetMetrics, merge_set_metrics
from repro.sim.devices import MB
from repro.sim.faults import RobustnessStats

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster


@dataclass
class NodeMetrics:
    """One worker's counters at snapshot time."""

    node_id: int
    seconds: float
    pool_used_bytes: int
    pool_capacity_bytes: int
    disk_bytes_read: int
    disk_bytes_written: int
    network_bytes_sent: int
    evictions: int
    pageouts: int
    pageins: int
    bytes_paged_out: int
    bytes_paged_in: int
    #: Self-healing counters (0 on clusters with no fault injection).
    retries: int = 0
    corruptions_detected: int = 0
    read_repairs: int = 0
    #: Receive-side network accounting (credited by peer-aware transfers).
    network_bytes_received: int = 0
    network_messages_sent: int = 0
    network_messages_received: int = 0
    #: Victim-selection counters from PagingSystem.stats.
    eviction_rounds: int = 0
    pages_evicted: int = 0
    #: Victim-index maintenance counters (see PagingStats): candidate-heap
    #: rebuilds and cost-term cache activity of the data-aware policy.
    index_rebuilds: int = 0
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    #: Per-locality-set registry entries on this node (live + retired).
    sets: "dict[str, SetMetrics]" = field(default_factory=dict)

    @property
    def pool_utilization(self) -> float:
        if self.pool_capacity_bytes == 0:
            return 0.0
        return self.pool_used_bytes / self.pool_capacity_bytes


@dataclass
class ClusterMetrics:
    """A whole-cluster snapshot."""

    nodes: list = field(default_factory=list)

    @property
    def simulated_seconds(self) -> float:
        return max((n.seconds for n in self.nodes), default=0.0)

    @property
    def total_disk_bytes(self) -> int:
        return sum(n.disk_bytes_read + n.disk_bytes_written for n in self.nodes)

    @property
    def total_network_bytes(self) -> int:
        return sum(n.network_bytes_sent for n in self.nodes)

    @property
    def total_network_bytes_received(self) -> int:
        return sum(n.network_bytes_received for n in self.nodes)

    @property
    def total_evictions(self) -> int:
        return sum(n.evictions for n in self.nodes)

    @property
    def total_eviction_rounds(self) -> int:
        return sum(n.eviction_rounds for n in self.nodes)

    def set_totals(self) -> "dict[str, SetMetrics]":
        """Per-set counters merged across every node, keyed by set name."""
        totals: dict[str, SetMetrics] = {}
        for node in self.nodes:
            merge_set_metrics(totals, node.sets)
        return totals

    def skew(self) -> float:
        """Max-over-mean of per-node simulated time (1.0 = perfectly even)."""
        if not self.nodes:
            return 1.0
        times = [n.seconds for n in self.nodes]
        mean = sum(times) / len(times)
        if mean == 0:
            return 1.0
        return max(times) / mean


def collect(cluster: "PangeaCluster") -> ClusterMetrics:
    """Snapshot every node's counters."""
    snapshot = ClusterMetrics()
    for node in cluster.nodes:
        snapshot.nodes.append(
            NodeMetrics(
                node_id=node.node_id,
                seconds=node.clock.now,
                pool_used_bytes=node.pool.used_bytes,
                pool_capacity_bytes=node.pool.capacity,
                disk_bytes_read=node.disks.total_bytes_read(),
                disk_bytes_written=node.disks.total_bytes_written(),
                network_bytes_sent=node.network.stats.bytes_sent,
                evictions=node.pool.stats.evictions,
                pageouts=node.pool.stats.pageouts,
                pageins=node.pool.stats.pageins,
                bytes_paged_out=node.pool.stats.bytes_paged_out,
                bytes_paged_in=node.pool.stats.bytes_paged_in,
                retries=node.robustness.retries,
                corruptions_detected=node.robustness.corruptions_detected,
                read_repairs=node.robustness.read_repairs,
                network_bytes_received=node.network.stats.bytes_received,
                network_messages_sent=node.network.stats.num_messages,
                network_messages_received=node.network.stats.messages_received,
                eviction_rounds=node.paging.stats.eviction_rounds,
                pages_evicted=node.paging.stats.pages_evicted,
                index_rebuilds=node.paging.stats.index_rebuilds,
                cost_cache_hits=node.paging.stats.cost_cache_hits,
                cost_cache_misses=node.paging.stats.cost_cache_misses,
                sets=node.paging.set_metrics(),
            )
        )
    return snapshot


def aggregate_robustness(cluster: "PangeaCluster") -> RobustnessStats:
    """Merge every node's self-healing counters with the cluster's own
    (failovers and automatic recoveries are counted cluster-side)."""
    total = RobustnessStats()
    for node in cluster.nodes:
        total.merge(node.robustness)
    total.merge(cluster.robustness)
    return total


#: ``(header, width)`` pairs for the per-node table; every cell — header
#: and data alike — is right-aligned into its column width, which is what
#: the alignment regression test asserts.
NODE_COLUMNS = (
    ("node", 5),
    ("seconds", 9),
    ("pool", 13),
    ("disk(r/w,MB)", 13),
    ("net(tx/rx,MB)", 13),
    ("evict", 6),
    ("rounds", 6),
    ("out/in", 9),
)


def _render_row(cells: "list[str]", widths: "list[int]") -> str:
    return " ".join(f"{cell:>{width}}" for cell, width in zip(cells, widths))


def format_table(metrics: ClusterMetrics) -> str:
    """Render the snapshot as a fixed-width table."""
    widths = [width for _name, width in NODE_COLUMNS]
    lines = [_render_row([name for name, _w in NODE_COLUMNS], widths)]
    for n in metrics.nodes:
        cells = [
            str(n.node_id),
            f"{n.seconds:.3f}s",
            f"{n.pool_used_bytes // MB}/{n.pool_capacity_bytes // MB}MB",
            f"{n.disk_bytes_read // MB}/{n.disk_bytes_written // MB}",
            f"{n.network_bytes_sent // MB}/{n.network_bytes_received // MB}",
            str(n.evictions),
            str(n.eviction_rounds),
            f"{n.pageouts}/{n.pageins}",
        ]
        lines.append(_render_row(cells, widths))
    lines.append(
        f"total: {metrics.simulated_seconds:.3f}s simulated, "
        f"{metrics.total_disk_bytes // MB}MB disk, "
        f"{metrics.total_network_bytes // MB}MB network, "
        f"{metrics.total_eviction_rounds} eviction rounds, "
        f"skew {metrics.skew():.2f}"
    )
    retries = sum(n.retries for n in metrics.nodes)
    repairs = sum(n.read_repairs for n in metrics.nodes)
    corruptions = sum(n.corruptions_detected for n in metrics.nodes)
    if retries or repairs or corruptions:
        lines.append(
            f"robustness: {retries} retries, {corruptions} corruptions "
            f"detected, {repairs} read-repairs"
        )
    return "\n".join(lines)


#: ``(header, width)`` pairs for the per-locality-set table.
SET_COLUMNS = (
    ("set", 20),
    ("strategy", 8),
    ("pins", 8),
    ("hit%", 7),
    ("evict", 6),
    ("flushed(MB)", 11),
    ("pagein(MB)", 10),
    ("avg-cost", 9),
    ("avg-preuse", 10),
    ("cache(h/m)", 10),
)


def format_set_table(metrics: ClusterMetrics) -> str:
    """Render the per-locality-set registry, one row per set."""
    widths = [width for _name, width in SET_COLUMNS]
    lines = [_render_row([name for name, _w in SET_COLUMNS], widths)]
    totals = metrics.set_totals()
    for name in sorted(totals):
        s = totals[name]
        cells = [
            name if len(name) <= 20 else name[:17] + "...",
            s.strategy or "-",
            str(s.pins),
            f"{s.hit_ratio * 100:.1f}",
            str(s.evictions),
            f"{s.flushed_bytes / MB:.1f}",
            f"{s.bytes_paged_in / MB:.1f}",
            f"{s.mean_eviction_cost:.4f}" if s.cost_samples else "-",
            f"{s.mean_preuse:.4f}" if s.cost_samples else "-",
            (
                f"{s.cost_cache_hits}/{s.cost_cache_misses}"
                if s.cost_cache_hits or s.cost_cache_misses
                else "-"
            ),
        ]
        lines.append(_render_row(cells, widths))
    return "\n".join(lines)


#: ``(header, width)`` pairs for the query-scheduler summary table.
SCHEDULER_COLUMNS = (
    ("joins(c/b/r)", 12),
    ("repl-subs", 9),
    ("agg", 5),
    ("shuffle(MB)", 11),
    ("batches", 8),
    ("fill", 7),
    ("stages(par)", 11),
    ("par", 5),
)


def format_scheduler_table(metrics) -> str:
    """Render one :class:`~repro.query.scheduler.SchedulerMetrics` snapshot.

    Strategy decisions on the left, vectorized-engine counters (batches
    processed, mean batch fill, stage counts with how many ran node-parallel,
    mean per-stage parallelism) on the right; the batch columns read zero
    for a record-at-a-time run.
    """
    widths = [width for _name, width in SCHEDULER_COLUMNS]
    lines = [_render_row([name for name, _w in SCHEDULER_COLUMNS], widths)]
    cells = [
        f"{metrics.copartitioned_joins}/{metrics.broadcast_joins}"
        f"/{metrics.repartition_joins}",
        str(metrics.replica_substitutions),
        str(metrics.local_agg_stages),
        f"{metrics.shuffled_bytes / MB:.1f}",
        str(metrics.batches_processed),
        f"{metrics.mean_batch_fill:.1f}",
        f"{metrics.stages_run}({metrics.parallel_stages})",
        f"{metrics.mean_stage_parallelism:.1f}",
    ]
    lines.append(_render_row(cells, widths))
    return "\n".join(lines)


def reconcile(metrics: ClusterMetrics) -> "list[str]":
    """Cross-check the per-set registry against PoolStats, per node.

    Returns a list of human-readable mismatch descriptions — empty when
    the two accounting paths agree exactly (the invariant the registry
    maintains; see :mod:`repro.obs.registry`).
    """
    problems: list[str] = []
    for node in metrics.nodes:
        sets = node.sets.values()
        checks = (
            ("evictions", sum(s.evictions for s in sets), node.evictions),
            ("flushed pages", sum(s.flushed_pages for s in sets), node.pageouts),
            ("flushed bytes", sum(s.flushed_bytes for s in sets), node.bytes_paged_out),
            ("page-ins", sum(s.misses for s in sets), node.pageins),
            ("paged-in bytes", sum(s.bytes_paged_in for s in sets), node.bytes_paged_in),
            ("pages evicted (paging)", sum(s.evictions for s in sets), node.pages_evicted),
            (
                "cost-cache hits",
                sum(s.cost_cache_hits for s in sets),
                node.cost_cache_hits,
            ),
            (
                "cost-cache misses",
                sum(s.cost_cache_misses for s in sets),
                node.cost_cache_misses,
            ),
        )
        for label, per_set, pool in checks:
            if per_set != pool:
                problems.append(
                    f"node {node.node_id}: per-set {label} {per_set} != "
                    f"node counter {pool}"
                )
    return problems
