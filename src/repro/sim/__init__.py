"""Simulated-time substrate.

The paper evaluates Pangea on real AWS clusters (r4.2xlarge workers with
local SSDs, an m3.xlarge micro-benchmark box).  A pure-Python reproduction
cannot measure those effects with wall-clock time, so every component in this
repository charges *simulated seconds* to a :class:`SimClock` instead.  Costs
are computed from device profiles (disk bandwidth and latency, memory-copy
bandwidth, serialization throughput, network links) calibrated to the paper's
hardware, which preserves the shape of every experiment: who wins, by what
rough factor, and where the crossover points fall.
"""

from repro.sim.clock import SimClock
from repro.sim.devices import CpuProfile, DiskArray, DiskDevice
from repro.sim.faults import (
    FaultConfig,
    FaultInjector,
    PageCorruptionError,
    RetryPolicy,
    RobustnessStats,
    TransientDiskError,
    TransientNetworkError,
)
from repro.sim.network import NetworkLink
from repro.sim.profiles import MachineProfile

__all__ = [
    "SimClock",
    "CpuProfile",
    "DiskDevice",
    "DiskArray",
    "NetworkLink",
    "MachineProfile",
    "FaultConfig",
    "FaultInjector",
    "PageCorruptionError",
    "RetryPolicy",
    "RobustnessStats",
    "TransientDiskError",
    "TransientNetworkError",
]
