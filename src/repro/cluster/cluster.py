"""The cluster façade applications program against."""

from __future__ import annotations

import typing

from repro.cluster.auth import KeyPair, verify_bootstrap
from repro.cluster.manager import HeartbeatFailureDetector, Manager
from repro.cluster.node import WorkerNode
from repro.core.attributes import DurabilityType, LocalitySetAttributes
from repro.core.locality_set import LocalitySet
from repro.sim.devices import MB
from repro.sim.faults import RobustnessStats
from repro.sim.profiles import MachineProfile

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.services.hashsvc import VirtualHashBuffer

DEFAULT_PAGE_SIZE = 256 * MB


class PangeaCluster:
    """One manager plus ``num_nodes`` workers.

    This is the public entry point: create locality sets, access them
    through the services, and read the simulated elapsed time with
    :meth:`simulated_seconds`.
    """

    def __init__(
        self,
        num_nodes: int = 1,
        profile: MachineProfile | None = None,
        policy: str = "data-aware",
        pool_allocator: str = "tlsf",
        authorized_key: KeyPair | None = None,
        private_key: str | None = None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a cluster needs at least one worker node")
        verify_bootstrap(authorized_key, private_key)
        self.profile = profile or MachineProfile.r4_2xlarge()
        self.manager = Manager()
        self.nodes = [
            WorkerNode(i, self.profile, policy=policy, pool_allocator=pool_allocator)
            for i in range(num_nodes)
        ]
        #: Cluster-level self-healing counters (failovers, recoveries);
        #: per-node counters live on each WorkerNode.robustness.
        self.robustness = RobustnessStats()
        #: Shared structured tracer; None until enable_tracing() is called.
        self.tracer = None

    # ------------------------------------------------------------------
    # set management
    # ------------------------------------------------------------------

    def create_set(
        self,
        name: str,
        durability: "DurabilityType | str" = DurabilityType.WRITE_THROUGH,
        page_size: int = DEFAULT_PAGE_SIZE,
        nodes: "list[int] | None" = None,
        object_bytes: int = 100,
        **attribute_overrides,
    ) -> LocalitySet:
        """Create a locality set sharded over ``nodes`` (default: all).

        ``durability`` follows the paper's default: write-through unless
        ``"write-back"`` is requested for transient data.  ``object_bytes``
        is the logical size charged per record unless a writer overrides it.
        """
        attributes = LocalitySetAttributes(
            durability=DurabilityType.parse(durability), **attribute_overrides
        )
        dataset = LocalitySet(
            set_id=self.manager.next_set_id(),
            name=name,
            cluster=self,
            page_size=page_size,
            attributes=attributes,
            object_bytes=object_bytes,
        )
        self.manager.register_set(dataset)
        target_nodes = self.nodes if nodes is None else [self.nodes[i] for i in nodes]
        for node in target_nodes:
            shard = dataset.add_shard(node)
            node.fs.create_file(name)
            node.paging.register_shard(shard)
        return dataset

    def get_set(self, name: str) -> LocalitySet:
        return self.manager.get_set(name)

    def drop_set(self, name: str) -> None:
        """Remove a set: pages, disk images, paging registration, catalog."""
        dataset = self.manager.get_set(name)
        for shard in dataset.shards.values():
            shard.clear()
            shard.node.paging.unregister_shard(shard)
            shard.node.fs.drop_file(name)
        self.manager.drop_set(name)

    def create_virtual_hash_buffer(
        self, output_set: LocalitySet, num_root_partitions: int = 16
    ) -> "VirtualHashBuffer":
        """Attach the hash service to ``output_set`` (paper Sec. 8)."""
        from repro.services.hashsvc import VirtualHashBuffer

        return VirtualHashBuffer(output_set, num_root_partitions)

    # ------------------------------------------------------------------
    # time and synchronization
    # ------------------------------------------------------------------

    def enable_tracing(self, capacity: "int | None" = None) -> "object":
        """Install one shared structured tracer across every node.

        Hot paths (pool placement, pins, evictions, disk and network I/O,
        paging decisions) start emitting :class:`~repro.obs.tracer.TraceEvent`
        records timestamped off each node's simulated clock.  Returns the
        :class:`~repro.obs.tracer.Tracer`; export it with
        :func:`repro.obs.to_jsonl` / :func:`repro.obs.to_chrome`.
        """
        from repro.obs.tracer import DEFAULT_CAPACITY, Tracer

        tracer = Tracer(capacity or DEFAULT_CAPACITY)
        for node in self.nodes:
            node.attach_tracer(tracer)
        self.tracer = tracer
        return tracer

    def disable_tracing(self) -> None:
        """Detach the tracer; hook sites revert to zero-cost no-ops."""
        for node in self.nodes:
            node.detach_tracer()
        self.tracer = None

    def enable_self_healing(
        self,
        interval: float = 0.5,
        miss_threshold: int = 3,
        auto_recover: bool = True,
    ) -> HeartbeatFailureDetector:
        """Install a heartbeat failure detector polled at every barrier.

        With ``auto_recover`` (the default) a detected crash immediately
        re-dispatches the dead node's shards over the survivors for every
        recoverable replication group, so later scans heal transparently.
        """
        detector = HeartbeatFailureDetector(
            self,
            interval=interval,
            miss_threshold=miss_threshold,
            auto_recover=auto_recover,
        )
        return self.manager.attach_failure_detector(detector)

    def barrier(self) -> float:
        """Synchronize all node clocks to the max (stage boundary).

        Stage boundaries are where the manager hears about missed
        heartbeats, so an attached failure detector is polled here.
        """
        if self.manager.failure_detector is not None:
            self.manager.failure_detector.poll()
        latest = max(node.clock.now for node in self.nodes)
        for node in self.nodes:
            node.clock.advance_to(latest)
        return latest

    def simulated_seconds(self) -> float:
        return max(node.clock.now for node in self.nodes)

    def reset_clocks(self) -> None:
        for node in self.nodes:
            node.clock.reset()
            node.reset_stats()
        self.robustness.reset()

    # ------------------------------------------------------------------
    # policies and introspection
    # ------------------------------------------------------------------

    def set_policy(self, policy: str) -> None:
        for node in self.nodes:
            node.paging.set_policy(policy)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def alive_nodes(self) -> list[WorkerNode]:
        return [n for n in self.nodes if not n.failed]

    def total_pool_bytes_used(self) -> int:
        return sum(node.pool.used_bytes for node in self.nodes)

    def total_bytes_on_disk(self) -> int:
        return sum(node.fs.bytes_on_disk for node in self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PangeaCluster(nodes={self.num_nodes}, profile={self.profile.name}, "
            f"sets={len(self.manager.set_names())})"
        )
