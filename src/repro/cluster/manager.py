"""The Pangea manager node: catalog and statistics database.

The manager is deliberately light-weight (paper Sec. 4): it stores locality
set metadata — database/set names, page sizes, attributes, partition
schemes, replica groups — while per-page metadata lives in the meta files
on each worker.  The statistics service exposed here is what the query
scheduler consults to pick a well-partitioned replica (paper Sec. 9.1.2).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet
    from repro.placement.replication import ReplicationGroup


class HeartbeatFailureDetector:
    """Simulated heartbeat-based failure detection (self-healing, Sec. 7).

    Workers are modeled as heartbeating the manager every ``interval``
    simulated seconds; a node is declared dead after ``miss_threshold``
    missed beats, so detection charges ``interval * miss_threshold``
    seconds of cluster time.  With ``auto_recover`` on, declaring a node
    dead immediately re-dispatches its lost shards over the survivors via
    :func:`~repro.placement.recovery.recover_node` for every replication
    group that can recover (>= 2 members and a registered ``object_id_fn``).

    ``poll`` is re-entrancy-guarded: recovery itself synchronizes via
    ``cluster.barrier()``, which polls the detector again.
    """

    def __init__(
        self,
        cluster: "PangeaCluster",
        interval: float = 0.5,
        miss_threshold: int = 3,
        auto_recover: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        self.cluster = cluster
        self.interval = interval
        self.miss_threshold = miss_threshold
        self.auto_recover = auto_recover
        #: node ids already declared dead (and, if possible, recovered)
        self.handled: set[int] = set()
        self._polling = False

    @property
    def detection_delay(self) -> float:
        return self.interval * self.miss_threshold

    def poll(self) -> list[int]:
        """Check every node's liveness; returns newly detected failures."""
        if self._polling:
            return []
        self._polling = True
        try:
            detected: list[int] = []
            for node in self.cluster.nodes:
                if node.failed and node.node_id not in self.handled:
                    self.handled.add(node.node_id)
                    detected.append(node.node_id)
                elif not node.failed and node.node_id in self.handled:
                    # The process restarted (e.g. recover_process in a test);
                    # forget it so a second crash is detected again.
                    self.handled.discard(node.node_id)
            if detected:
                # Heartbeats take miss_threshold intervals to time out.
                latest = self.cluster.barrier() + self.detection_delay
                for node in self.cluster.nodes:
                    node.clock.advance_to(latest)
                for node in self.cluster.nodes:
                    if node.tracer is not None and not node.failed:
                        node.tracer.instant(
                            "failover.detected", "recovery",
                            dead_nodes=list(detected),
                            auto_recover=self.auto_recover,
                        )
                        break
                if self.auto_recover:
                    for node_id in detected:
                        self._recover(node_id)
            return detected
        finally:
            self._polling = False

    def _recover(self, node_id: int) -> None:
        from repro.placement.recovery import recover_node

        for group in self.cluster.manager.replica_groups():
            if len(group.members) < 2 or group.object_id_fn is None:
                continue
            if node_id in group.recovered_nodes:
                continue
            if not any(node_id in member.shards for member in group.members):
                continue
            recover_node(self.cluster, group, node_id)


@dataclass
class SetStatistics:
    """Statistics-database entry for one locality set."""

    name: str
    num_objects: int = 0
    logical_bytes: int = 0
    partition_scheme: "object | None" = None
    replica_group_id: int | None = None
    extra: dict = field(default_factory=dict)


class Manager:
    """Catalog + statistics database + replica registry."""

    def __init__(self) -> None:
        self._sets: dict[str, "LocalitySet"] = {}
        self._set_counter = 0
        self._groups: dict[int, "ReplicationGroup"] = {}
        self._group_counter = 0
        self._stats: dict[str, SetStatistics] = {}
        #: Installed by PangeaCluster.enable_self_healing; None otherwise.
        self.failure_detector: "HeartbeatFailureDetector | None" = None

    def attach_failure_detector(
        self, detector: "HeartbeatFailureDetector"
    ) -> "HeartbeatFailureDetector":
        self.failure_detector = detector
        return detector

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def next_set_id(self) -> int:
        self._set_counter += 1
        return self._set_counter

    def register_set(self, dataset: "LocalitySet") -> None:
        if dataset.name in self._sets:
            raise ValueError(f"a set named {dataset.name!r} already exists")
        self._sets[dataset.name] = dataset
        self._stats[dataset.name] = SetStatistics(name=dataset.name)

    def get_set(self, name: str) -> "LocalitySet":
        try:
            return self._sets[name]
        except KeyError:
            raise KeyError(f"no set named {name!r}") from None

    def drop_set(self, name: str) -> None:
        self._sets.pop(name, None)
        self._stats.pop(name, None)

    def has_set(self, name: str) -> bool:
        return name in self._sets

    def set_names(self) -> list[str]:
        return sorted(self._sets)

    # ------------------------------------------------------------------
    # replication groups
    # ------------------------------------------------------------------

    def register_replica_group(self, group: "ReplicationGroup") -> int:
        self._group_counter += 1
        group_id = self._group_counter
        self._groups[group_id] = group
        for member in group.members:
            member.replica_group_id = group_id
            stats = self._stats.get(member.name)
            if stats is not None:
                stats.replica_group_id = group_id
        return group_id

    def replica_group(self, group_id: int) -> "ReplicationGroup":
        try:
            return self._groups[group_id]
        except KeyError:
            raise KeyError(f"no replication group {group_id}") from None

    def replica_groups(self) -> "list[ReplicationGroup]":
        return [self._groups[gid] for gid in sorted(self._groups)]

    def replicas_of(self, name: str) -> "list[LocalitySet]":
        """All members of the set's replication group (including itself)."""
        dataset = self.get_set(name)
        if dataset.replica_group_id is None:
            return [dataset]
        return list(self._groups[dataset.replica_group_id].members)

    # ------------------------------------------------------------------
    # statistics service
    # ------------------------------------------------------------------

    def update_statistics(self, dataset: "LocalitySet") -> SetStatistics:
        stats = self._stats.setdefault(dataset.name, SetStatistics(name=dataset.name))
        stats.num_objects = dataset.num_objects
        stats.logical_bytes = dataset.logical_bytes
        stats.partition_scheme = dataset.partition_scheme
        stats.replica_group_id = dataset.replica_group_id
        return stats

    def statistics(self, name: str) -> SetStatistics:
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no statistics for set {name!r}") from None
