"""The Pangea manager node: catalog and statistics database.

The manager is deliberately light-weight (paper Sec. 4): it stores locality
set metadata — database/set names, page sizes, attributes, partition
schemes, replica groups — while per-page metadata lives in the meta files
on each worker.  The statistics service exposed here is what the query
scheduler consults to pick a well-partitioned replica (paper Sec. 9.1.2).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.locality_set import LocalitySet
    from repro.placement.replication import ReplicationGroup


@dataclass
class SetStatistics:
    """Statistics-database entry for one locality set."""

    name: str
    num_objects: int = 0
    logical_bytes: int = 0
    partition_scheme: "object | None" = None
    replica_group_id: int | None = None
    extra: dict = field(default_factory=dict)


class Manager:
    """Catalog + statistics database + replica registry."""

    def __init__(self) -> None:
        self._sets: dict[str, "LocalitySet"] = {}
        self._set_counter = 0
        self._groups: dict[int, "ReplicationGroup"] = {}
        self._group_counter = 0
        self._stats: dict[str, SetStatistics] = {}

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    def next_set_id(self) -> int:
        self._set_counter += 1
        return self._set_counter

    def register_set(self, dataset: "LocalitySet") -> None:
        if dataset.name in self._sets:
            raise ValueError(f"a set named {dataset.name!r} already exists")
        self._sets[dataset.name] = dataset
        self._stats[dataset.name] = SetStatistics(name=dataset.name)

    def get_set(self, name: str) -> "LocalitySet":
        try:
            return self._sets[name]
        except KeyError:
            raise KeyError(f"no set named {name!r}") from None

    def drop_set(self, name: str) -> None:
        self._sets.pop(name, None)
        self._stats.pop(name, None)

    def has_set(self, name: str) -> bool:
        return name in self._sets

    def set_names(self) -> list[str]:
        return sorted(self._sets)

    # ------------------------------------------------------------------
    # replication groups
    # ------------------------------------------------------------------

    def register_replica_group(self, group: "ReplicationGroup") -> int:
        self._group_counter += 1
        group_id = self._group_counter
        self._groups[group_id] = group
        for member in group.members:
            member.replica_group_id = group_id
            stats = self._stats.get(member.name)
            if stats is not None:
                stats.replica_group_id = group_id
        return group_id

    def replica_group(self, group_id: int) -> "ReplicationGroup":
        try:
            return self._groups[group_id]
        except KeyError:
            raise KeyError(f"no replication group {group_id}") from None

    def replicas_of(self, name: str) -> "list[LocalitySet]":
        """All members of the set's replication group (including itself)."""
        dataset = self.get_set(name)
        if dataset.replica_group_id is None:
            return [dataset]
        return list(self._groups[dataset.replica_group_id].members)

    # ------------------------------------------------------------------
    # statistics service
    # ------------------------------------------------------------------

    def update_statistics(self, dataset: "LocalitySet") -> SetStatistics:
        stats = self._stats.setdefault(dataset.name, SetStatistics(name=dataset.name))
        stats.num_objects = dataset.num_objects
        stats.logical_bytes = dataset.logical_bytes
        stats.partition_scheme = dataset.partition_scheme
        stats.replica_group_id = dataset.replica_group_id
        return stats

    def statistics(self, name: str) -> SetStatistics:
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no statistics for set {name!r}") from None
