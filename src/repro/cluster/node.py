"""One Pangea worker node."""

from __future__ import annotations

import threading

from repro.buffer.pool import BufferPool
from repro.core.paging import PagingSystem
from repro.fs.node_fs import PangeaNodeFS
from repro.sim.clock import SimClock
from repro.sim.devices import DiskArray
from repro.sim.faults import RetryPolicy, RobustnessStats
from repro.sim.profiles import MachineProfile


class WorkerNode:
    """A worker: clock, CPU, disks, network, buffer pool, paging, and FS.

    On real hardware this is one storage process (owning the shared-memory
    buffer pool) plus forked computation processes; here the node bundles
    the simulated devices and charges every operation to its own clock.
    """

    def __init__(
        self,
        node_id: int,
        profile: MachineProfile,
        policy: str = "data-aware",
        pool_allocator: str = "tlsf",
    ) -> None:
        self.node_id = node_id
        self.profile = profile
        self.clock = SimClock()
        self.cpu = profile.build_cpu()
        self.cpu.clock = self.clock
        disks = profile.build_disks(node_id)
        for disk in disks:
            disk.clock = self.clock
        self.disks = DiskArray(disks)
        self.network = profile.build_network()
        self.network.clock = self.clock
        self.pool = BufferPool(profile.pool_bytes, allocator=pool_allocator)
        self.paging = PagingSystem(policy)
        self.pool.evictor = self.paging.make_room
        self.fs = PangeaNodeFS(self.disks, owner=self)
        self._page_counter = 0
        self._page_counter_lock = threading.Lock()
        self.failed = False
        #: Self-healing counters (retries, read-repairs, ...) for this node.
        self.robustness = RobustnessStats()
        #: Bounded backoff for transient disk/network faults.
        self.retry_policy = RetryPolicy()
        #: Set by FaultInjector.attach; None on a healthy cluster.
        self.fault_injector = None
        #: Per-node view of the cluster tracer; None while tracing is
        #: disabled so every hook site stays a single is-None check.
        self.tracer = None

    def attach_tracer(self, tracer) -> "object":
        """Bind a shared :class:`~repro.obs.tracer.Tracer` to this node.

        Installs the node-bound view on every subsystem that hooks the
        trace: the disk array, the network link, the buffer pool, and the
        paging system.  Returns the :class:`~repro.obs.tracer.NodeTracer`.
        """
        from repro.obs.tracer import NodeTracer

        view = NodeTracer(tracer, self.node_id, self.clock, self.paging._ticks)
        self.tracer = view
        self.disks.tracer = view
        self.network.tracer = view
        self.pool.tracer = view
        self.paging.tracer = view
        return view

    def detach_tracer(self) -> None:
        self.tracer = None
        self.disks.tracer = None
        self.network.tracer = None
        self.pool.tracer = None
        self.paging.tracer = None

    def next_page_id(self) -> int:
        """Node-local page ids; globally unique as (node_id, page_id)."""
        with self._page_counter_lock:
            self._page_counter += 1
            return self._page_counter

    def fail(self) -> None:
        """Simulate a node crash (used by the recovery benchmarks)."""
        self.failed = True

    def recover_process(self) -> None:
        self.failed = False

    @property
    def now(self) -> float:
        return self.clock.now

    def reset_stats(self) -> None:
        self.pool.stats.reset()
        self.paging.stats.reset()
        self.paging.reset_set_metrics()
        self.disks.reset_stats()
        self.network.stats.reset()
        self.robustness.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerNode(id={self.node_id}, profile={self.profile.name}, "
            f"policy={self.paging.policy.name})"
        )
