"""The distributed layer: worker nodes, the manager, and the cluster façade."""

from repro.cluster.auth import AuthError, KeyPair
from repro.cluster.cluster import PangeaCluster
from repro.cluster.manager import Manager, SetStatistics
from repro.cluster.node import WorkerNode

__all__ = [
    "PangeaCluster",
    "WorkerNode",
    "Manager",
    "SetStatistics",
    "KeyPair",
    "AuthError",
]
