"""Bootstrap authentication (paper Sec. 3.3, deployment & security).

Pangea delegates authority to remote worker processes through a public/
private key pair: the user submits the private key when bootstrapping, the
manager uses it to access workers, and a non-valid key terminates the whole
system.  We model the handshake with an HMAC-style challenge so the control
flow (valid key → cluster boots; invalid key → hard failure) is faithful
without shipping a real crypto deployment.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass


class AuthError(RuntimeError):
    """Raised when bootstrap is attempted with an invalid private key."""


@dataclass(frozen=True)
class KeyPair:
    """A user's deployment credentials."""

    public_key: str
    private_key: str

    @classmethod
    def generate(cls) -> "KeyPair":
        private = secrets.token_hex(32)
        public = hashlib.sha256(private.encode("ascii")).hexdigest()
        return cls(public_key=public, private_key=private)

    def matches(self, private_key: str) -> bool:
        derived = hashlib.sha256(private_key.encode("ascii")).hexdigest()
        return hmac.compare_digest(derived, self.public_key)


def verify_bootstrap(authorized: KeyPair | None, private_key: str | None) -> None:
    """Validate a bootstrap attempt; raise :class:`AuthError` on mismatch.

    When no key pair is configured the cluster runs in open (test) mode,
    mirroring a deployment without the security feature enabled.
    """
    if authorized is None:
        return
    if private_key is None or not authorized.matches(private_key):
        raise AuthError(
            "bootstrap rejected: the submitted private key does not match the "
            "deployment's public key; terminating"
        )
