"""Cluster checkpoint/restore: the restart durability story.

A checkpoint captures the manager's catalog plus every **write-through**
locality set's pages, preserving per-node placement and page boundaries.
Transient (write-back) sets are deliberately excluded — their lifetime
does not span restarts, exactly as the paper's durability model says.

Callables (partitioners, object-id functions) cannot be serialized; the
checkpoint stores partition-scheme *metadata*, and recovery-capable
groups need their functions re-attached after restore.
"""

from __future__ import annotations

import json
import os
import pickle
import typing

from repro.core.attributes import DurabilityType
from repro.placement.partitioner import PartitionScheme

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster

MANIFEST = "manifest.json"
PAYLOADS = "payloads.pkl"
FORMAT_VERSION = 1


def checkpoint(cluster: "PangeaCluster", directory: str) -> dict:
    """Write the catalog + durable data to ``directory``; returns the manifest."""
    os.makedirs(directory, exist_ok=True)
    manifest: dict = {
        "version": FORMAT_VERSION,
        "num_nodes": cluster.num_nodes,
        "sets": [],
    }
    payloads: dict = {}
    for name in cluster.manager.set_names():
        dataset = cluster.get_set(name)
        if dataset.attributes.durability is not DurabilityType.WRITE_THROUGH:
            continue
        scheme = dataset.partition_scheme
        manifest["sets"].append(
            {
                "name": name,
                "page_size": dataset.page_size,
                "object_bytes": dataset.object_bytes,
                "nodes": sorted(dataset.shards),
                "partition_scheme": (
                    {
                        "kind": scheme.kind,
                        "key_name": scheme.key_name,
                        "num_partitions": scheme.num_partitions,
                    }
                    if scheme is not None
                    else None
                ),
                "replica_group_id": dataset.replica_group_id,
            }
        )
        shard_payloads: dict = {}
        for node_id in sorted(dataset.shards):
            shard = dataset.shards[node_id]
            pages = []
            for page in shard.pages:
                records = page.records
                if not records and page.on_disk:
                    records, _cost = shard.file.read_page(page.page_id)
                pages.append(
                    {"records": list(records), "used_bytes": page.used_bytes}
                )
            shard_payloads[node_id] = pages
        payloads[name] = shard_payloads
    with open(os.path.join(directory, MANIFEST), "w") as handle:
        json.dump(manifest, handle, indent=2)
    with open(os.path.join(directory, PAYLOADS), "wb") as handle:
        pickle.dump(payloads, handle)
    return manifest


def restore(cluster: "PangeaCluster", directory: str) -> list:
    """Recreate checkpointed sets into a fresh cluster; returns set names.

    The target cluster must have at least as many nodes as the
    checkpoint used and must not already contain same-named sets.
    """
    with open(os.path.join(directory, MANIFEST)) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {manifest.get('version')!r}"
        )
    if cluster.num_nodes < manifest["num_nodes"]:
        raise ValueError(
            f"checkpoint spans {manifest['num_nodes']} nodes; the target "
            f"cluster has only {cluster.num_nodes}"
        )
    with open(os.path.join(directory, PAYLOADS), "rb") as handle:
        payloads = pickle.load(handle)
    restored = []
    for meta in manifest["sets"]:
        name = meta["name"]
        dataset = cluster.create_set(
            name,
            durability="write-through",
            page_size=meta["page_size"],
            object_bytes=meta["object_bytes"],
            nodes=meta["nodes"],
        )
        if meta["partition_scheme"] is not None:
            dataset.partition_scheme = PartitionScheme(**meta["partition_scheme"])
        for node_id_str, pages in payloads[name].items():
            node_id = int(node_id_str)
            shard = dataset.shards[node_id]
            for page_payload in pages:
                page = shard.new_page(pin=True)
                records = page_payload["records"]
                used = page_payload["used_bytes"]
                per_record = used // max(1, len(records)) if records else 0
                for index, record in enumerate(records):
                    # Give the last record the rounding remainder so the
                    # page's logical fill level is restored exactly.
                    nbytes = (
                        used - per_record * (len(records) - 1)
                        if index == len(records) - 1
                        else per_record
                    )
                    page.append(record, max(0, nbytes) or 0)
                page.used_bytes = used
                shard.seal_page(page)
                shard.unpin_page(page)
        cluster.manager.update_statistics(dataset)
        restored.append(name)
    cluster.barrier()
    return restored
