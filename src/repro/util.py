"""Small shared helpers."""

from __future__ import annotations


def estimate_bytes(obj: object) -> int:
    """Logical wire size of a record, used when the caller gives no size.

    This is the *paper-scale* size charged to the cost model (e.g. an
    80-byte character array stays 80 bytes), not Python's in-memory size.
    """
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, int):
        return 8
    if isinstance(obj, float):
        return 8
    if isinstance(obj, str):
        return max(1, len(obj))
    if isinstance(obj, bytes):
        return max(1, len(obj))
    if isinstance(obj, (tuple, list)):
        return 8 + sum(estimate_bytes(item) for item in obj)
    if isinstance(obj, dict):
        return 8 + sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in obj.items()
        )
    return 64


def stable_hash(value: object) -> int:
    """A deterministic, seed-independent hash for partitioning.

    Python randomizes ``hash(str)`` per process; partition placement (and
    therefore colliding-object counts) must be reproducible across runs.
    """
    if isinstance(value, int):
        return value * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
    if isinstance(value, tuple):
        acc = 0x345678
        for item in value:
            acc = (acc ^ stable_hash(item)) * 0x100000001B3 & 0xFFFFFFFFFFFFFFFF
        return acc
    data = value if isinstance(value, bytes) else str(value).encode("utf-8")
    acc = 0xCBF29CE484222325
    for byte in data:
        acc = ((acc ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc
