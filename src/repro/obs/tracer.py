"""The structured event tracer.

One :class:`Tracer` is shared by every node of a cluster; each node gets a
:class:`NodeTracer` view that stamps events with the node id, the node's
simulated clock, and its paging tick counter.  Events live in a bounded
ring (oldest dropped first, with a drop counter) so a runaway trace cannot
exhaust memory.

Event phases follow the Chrome trace-event vocabulary so the exporter is a
straight mapping:

* ``"X"`` — a *complete span*: an operation with a simulated duration
  (disk I/O, network transfer, eviction with flush, page-in reload);
* ``"i"`` — an *instant*: a point event (pin, placement, victim choice);
* ``"C"`` — a *counter sample*: named values at a point in time.
"""

from __future__ import annotations

import threading
import typing
from collections import deque
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.clock import SimClock, TickCounter

#: Default event-ring capacity; ~200k events cover the smoke scenarios.
DEFAULT_CAPACITY = 200_000

VALID_PHASES = ("X", "i", "C")


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record (immutable once emitted)."""

    name: str
    cat: str
    ph: str
    ts: float  # simulated seconds at event start
    node: int
    tick: int
    dur: float = 0.0  # simulated seconds (spans only)
    args: dict = field(default_factory=dict)


class Tracer:
    """A bounded, thread-safe sink of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._events: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        #: Total events ever emitted (monotonic, survives ring overflow).
        self.emitted = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)
            self.emitted += 1

    def span(
        self,
        name: str,
        cat: str,
        node: int,
        ts: float,
        dur: float,
        tick: int = 0,
        **args,
    ) -> None:
        self.record(TraceEvent(name, cat, "X", ts, node, tick, dur, args))

    def instant(
        self, name: str, cat: str, node: int, ts: float, tick: int = 0, **args
    ) -> None:
        self.record(TraceEvent(name, cat, "i", ts, node, tick, 0.0, args))

    def counter(
        self, name: str, cat: str, node: int, ts: float, tick: int = 0, **values
    ) -> None:
        self.record(TraceEvent(name, cat, "C", ts, node, tick, 0.0, values))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        """A stable snapshot of the ring (oldest first)."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow."""
        with self._lock:
            return self.emitted - len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.emitted = 0

    def category_counts(self) -> dict[str, int]:
        """``{category: event count}`` over the retained ring."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(events={len(self)}, emitted={self.emitted})"


class NodeTracer:
    """A per-node view binding a shared :class:`Tracer` to one worker.

    Hook sites hold a reference to this object (or ``None`` when tracing
    is disabled) and stamp events with the node's own simulated clock and
    paging tick — callers never pass timestamps for instants/counters.
    Spans pass an explicit ``start`` (the clock reading before the charged
    operation) and the operation's simulated ``duration``.
    """

    __slots__ = ("tracer", "node_id", "_clock", "_ticks")

    def __init__(
        self,
        tracer: Tracer,
        node_id: int,
        clock: "SimClock",
        ticks: "TickCounter | None" = None,
    ) -> None:
        self.tracer = tracer
        self.node_id = node_id
        self._clock = clock
        self._ticks = ticks

    def _tick(self) -> int:
        return self._ticks.now if self._ticks is not None else 0

    def span(self, name: str, cat: str, start: float, duration: float, **args) -> None:
        self.tracer.span(
            name, cat, self.node_id, start, duration, tick=self._tick(), **args
        )

    def instant(self, name: str, cat: str, **args) -> None:
        self.tracer.instant(
            name, cat, self.node_id, self._clock.now, tick=self._tick(), **args
        )

    def counter(self, name: str, cat: str, **values) -> None:
        self.tracer.counter(
            name, cat, self.node_id, self._clock.now, tick=self._tick(), **values
        )

    @property
    def now(self) -> float:
        """The node clock, for span start timestamps."""
        return self._clock.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeTracer(node={self.node_id})"
