"""Trace exporters: JSONL streams and Chrome trace-event JSON.

The JSONL stream has one object per line, every line carrying exactly the
keys in :data:`JSONL_SCHEMA` (stable order, suitable for ``jq``/pandas).
The Chrome export is a ``{"traceEvents": [...]}`` document loadable by
``chrome://tracing`` / Perfetto: simulated seconds become microseconds,
the node id becomes the ``pid`` track and the event category the ``tid``.
"""

from __future__ import annotations

import json
import typing

from repro.obs.tracer import Tracer

#: Every JSONL line is an object with exactly these keys, in this order.
JSONL_SCHEMA = ("ts", "tick", "ph", "cat", "name", "node", "dur", "args")

#: Keys every exported Chrome trace event carries ("X" events add "dur").
CHROME_TRACE_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid", "args")


def _open_maybe(path_or_file, mode: str = "w"):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode), True


def to_jsonl(tracer: Tracer, path_or_file) -> int:
    """Write one JSON object per event; returns the number of lines."""
    stream, owned = _open_maybe(path_or_file)
    try:
        count = 0
        for event in tracer.events:
            record = {
                "ts": event.ts,
                "tick": event.tick,
                "ph": event.ph,
                "cat": event.cat,
                "name": event.name,
                "node": event.node,
                "dur": event.dur,
                "args": event.args,
            }
            stream.write(json.dumps(record, sort_keys=False) + "\n")
            count += 1
        return count
    finally:
        if owned:
            stream.close()


def chrome_events(tracer: Tracer) -> "list[dict]":
    """The Chrome trace-event list (without the enclosing document)."""
    out: list[dict] = []
    for event in tracer.events:
        record: dict[str, typing.Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts * 1e6,  # chrome://tracing wants microseconds
            "pid": event.node,
            "tid": event.cat,
            "args": dict(event.args, tick=event.tick),
        }
        if event.ph == "X":
            record["dur"] = event.dur * 1e6
        elif event.ph == "i":
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return out


def to_chrome(tracer: Tracer, path_or_file) -> int:
    """Write a ``chrome://tracing``-loadable JSON document; returns the
    number of events exported."""
    events = chrome_events(tracer)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated-seconds",
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
        },
    }
    stream, owned = _open_maybe(path_or_file)
    try:
        json.dump(document, stream)
        return len(events)
    finally:
        if owned:
            stream.close()
