"""A canonical traced workload for demos, CLI commands, and CI smoke runs.

``run_smoke`` builds a small cluster, runs a paging-heavy scan plus a
shuffle (so every hot path — pool, paging, disks, network, services —
fires at least once), and returns the cluster, tracer, and metrics
snapshot together so callers can export traces or print tables without
re-deriving the workload.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.obs.tracer import Tracer
from repro.sim import metrics as metrics_mod
from repro.sim.devices import KB, MB

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster


@dataclass
class SmokeReport:
    """Everything ``run_smoke`` produced."""

    cluster: "PangeaCluster"
    tracer: "Tracer | None"
    metrics: "metrics_mod.ClusterMetrics"
    records_scanned: int
    records_shuffled: int

    @property
    def mismatches(self) -> "list[str]":
        return metrics_mod.reconcile(self.metrics)


def run_smoke(
    nodes: int = 2,
    pool_mb: int = 8,
    trace: bool = True,
    policy: str = "data-aware",
    trace_capacity: "int | None" = None,
) -> SmokeReport:
    """Run the traced smoke scenario and collect a metrics snapshot.

    The scan set is sized to twice the pool so the paging system must
    evict (exercising the cost model), and the shuffle crosses nodes so
    both network send and receive counters move.
    """
    from repro.cluster.cluster import PangeaCluster
    from repro.services.shuffle import ShuffleService
    from repro.sim.profiles import MachineProfile

    cluster = PangeaCluster(
        num_nodes=nodes,
        profile=MachineProfile.tiny(pool_bytes=pool_mb * MB),
        policy=policy,
    )
    tracer = cluster.enable_tracing(capacity=trace_capacity) if trace else None

    data = cluster.create_set(
        "smoke_scan", durability="write-back",
        page_size=512 * KB, object_bytes=64 * KB,
    )
    records = list(range(pool_mb * 32 * nodes))  # 2x each node's pool
    data.add_data(records)
    scanned = 0
    for _ in range(2):
        scanned += sum(1 for _record in data.scan_records(workers=4))

    shuffle = ShuffleService(
        cluster, "smoke_sh", num_partitions=nodes,
        page_size=512 * KB, small_page_size=64 * KB, object_bytes=16 * KB,
    )
    shuffled = 4 * nodes * 8
    for i in range(shuffled):
        worker = i % nodes
        shuffle.buffer_for(
            worker, i % nodes, worker_node=cluster.nodes[worker]
        ).add_object(i)
    shuffle.finish_writing()
    for p in range(nodes):
        for _record in shuffle.partition_set(p).scan_records():
            pass
    shuffle.drop()

    snapshot = metrics_mod.collect(cluster)
    return SmokeReport(
        cluster=cluster,
        tracer=tracer,
        metrics=snapshot,
        records_scanned=scanned,
        records_shuffled=shuffled,
    )
