"""Per-locality-set metrics: the counters behind every tuning decision.

Each :class:`~repro.core.locality_set.LocalShard` owns one
:class:`SetMetrics` instance, updated inline by the page lifecycle (pin,
page-in, evict, flush) and by the paging system when the data-aware policy
records the cost-model inputs it chose a victim by.  These counters are
always on — they are plain integer/float increments on paths that already
charge simulated I/O — and reconcile exactly with the node-level
:class:`~repro.buffer.pool.PoolStats`:

* ``sum(per-set evictions)   == pool.stats.evictions``
* ``sum(per-set flushed_*)   == pool.stats.pageouts / bytes_paged_out``
* ``sum(per-set misses/bytes_paged_in) == pool.stats.pageins / bytes_paged_in``

Shards of dropped sets are merged into the paging system's retired
accumulator (:attr:`~repro.core.paging.PagingSystem.retired_set_metrics`)
so the reconciliation holds across set lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class SetMetrics:
    """Counters for one locality set on one node (or merged across nodes)."""

    set_name: str = ""
    #: Pin requests served (pin_page calls; page creations count separately).
    pins: int = 0
    #: Pins that found the page evicted and reloaded it from disk.
    misses: int = 0
    bytes_paged_in: int = 0
    #: Pages newly created in this set.
    created_pages: int = 0
    evictions: int = 0
    #: Evictions that actually wrote the page image out (the ``cw`` term).
    flushed_pages: int = 0
    flushed_bytes: int = 0
    read_repairs: int = 0
    #: Data-aware cost-term cache activity for this set: candidate
    #: evaluations that reused the cached ``(cw, vr, wr)`` terms vs. ones
    #: that recomputed them.  Reconciles with the node-level
    #: ``PagingStats.cost_cache_hits/misses``.
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0
    #: Cost-model samples recorded when the data-aware policy picked this
    #: set's next victim: running sums of ``cw + preuse*cr`` and ``preuse``.
    cost_samples: int = 0
    cost_sum: float = 0.0
    preuse_sum: float = 0.0
    #: Eviction strategy in force at snapshot time ("lru"/"mru").
    strategy: str = ""

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Pins served straight from the buffer pool."""
        return self.pins - self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of pins that needed no page-in (1.0 with no pins)."""
        if self.pins == 0:
            return 1.0
        return self.hits / self.pins

    @property
    def mean_eviction_cost(self) -> float:
        if self.cost_samples == 0:
            return 0.0
        return self.cost_sum / self.cost_samples

    @property
    def mean_preuse(self) -> float:
        if self.cost_samples == 0:
            return 0.0
        return self.preuse_sum / self.cost_samples

    # ------------------------------------------------------------------
    # recording and merging
    # ------------------------------------------------------------------

    def note_cost_sample(self, cost: float, preuse: float) -> None:
        self.cost_samples += 1
        self.cost_sum += cost
        self.preuse_sum += preuse

    def merge(self, other: "SetMetrics") -> None:
        """Accumulate ``other`` into this record (name/strategy keep ours
        unless unset)."""
        if not self.set_name:
            self.set_name = other.set_name
        if not self.strategy:
            self.strategy = other.strategy
        self.pins += other.pins
        self.misses += other.misses
        self.bytes_paged_in += other.bytes_paged_in
        self.created_pages += other.created_pages
        self.evictions += other.evictions
        self.flushed_pages += other.flushed_pages
        self.flushed_bytes += other.flushed_bytes
        self.read_repairs += other.read_repairs
        self.cost_cache_hits += other.cost_cache_hits
        self.cost_cache_misses += other.cost_cache_misses
        self.cost_samples += other.cost_samples
        self.cost_sum += other.cost_sum
        self.preuse_sum += other.preuse_sum

    def copy(self) -> "SetMetrics":
        return replace(self)

    def reset(self) -> None:
        name = self.set_name
        self.__init__(set_name=name)


def merge_set_metrics(
    into: "dict[str, SetMetrics]", items: "list[SetMetrics] | dict[str, SetMetrics]"
) -> "dict[str, SetMetrics]":
    """Merge per-shard records into a by-name dictionary (copies on first
    sight so callers never alias live counters)."""
    values = items.values() if isinstance(items, dict) else items
    for metrics in values:
        existing = into.get(metrics.set_name)
        if existing is None:
            into[metrics.set_name] = metrics.copy()
        else:
            existing.merge(metrics)
    return into
