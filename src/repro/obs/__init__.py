"""Unified observability: structured tracing, per-set metrics, exporters.

The tracer records *spans* (operations with a simulated duration, e.g. one
striped disk read), *instants* (point events, e.g. a page pin) and
*counters* (sampled values, e.g. pool occupancy), all timestamped off the
owning node's :class:`~repro.sim.clock.SimClock` and paging tick counter.

Tracing is **zero-cost when disabled**: every hook site is guarded by a
single ``if tracer is not None`` check on an attribute that defaults to
``None``; no event objects, closures, or context managers are created
unless :meth:`~repro.cluster.cluster.PangeaCluster.enable_tracing` was
called.

The per-locality-set metrics registry (:class:`SetMetrics`) is always on —
it is a handful of integer increments on paths that already perform
simulated I/O — and is what ``python -m repro metrics`` and
:func:`repro.sim.metrics.collect` report.
"""

from repro.obs.exporters import (
    CHROME_TRACE_FIELDS,
    JSONL_SCHEMA,
    to_chrome,
    to_jsonl,
)
from repro.obs.registry import SetMetrics, merge_set_metrics
from repro.obs.tracer import NodeTracer, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "NodeTracer",
    "TraceEvent",
    "SetMetrics",
    "merge_set_metrics",
    "to_jsonl",
    "to_chrome",
    "JSONL_SCHEMA",
    "CHROME_TRACE_FIELDS",
]
