"""Command-line entry points: ``python -m repro <command>``.

Commands:

* ``info``                — version, module inventory, device defaults
* ``tpch-gen``            — generate TPC-H tables and print row counts
* ``tpch-run``            — load TPC-H, run the queries, report timings
* ``kmeans``              — run the k-means comparison (Fig. 3 story)
* ``policies``            — compare paging policies on a scan workload
* ``metrics``             — run the smoke workload, print per-node and
  per-set metrics tables, and reconcile them against the pool counters
* ``trace``               — run the smoke workload with tracing on and
  export the event stream (Chrome trace JSON or JSONL)
"""

from __future__ import annotations

import argparse
import sys


def cmd_info(args: argparse.Namespace) -> int:
    import repro
    from repro.sim.devices import GB, MB
    from repro.sim.profiles import MachineProfile

    print(f"repro (Pangea reproduction) version {repro.__version__}")
    print()
    for name in ("r4_2xlarge", "m3_xlarge"):
        profile = getattr(MachineProfile, name)()
        print(
            f"profile {profile.name:12s}: {profile.cores} cores, "
            f"{profile.memory_bytes / GB:.0f}GB RAM, "
            f"{profile.pool_bytes / GB:.0f}GB pool, "
            f"{profile.num_disks} disk(s) @ "
            f"{profile.disk.read_bandwidth / MB:.0f}/"
            f"{profile.disk.write_bandwidth / MB:.0f} MB/s"
        )
    print()
    print("subpackages: sim buffer core fs cluster services placement "
          "query tpch ml baselines")
    return 0


def cmd_tpch_gen(args: argparse.Namespace) -> int:
    from repro.tpch.datagen import TpchGenerator

    generator = TpchGenerator(scale=args.scale, seed=args.seed)
    tables = generator.all_tables()
    print(f"TPC-H at fractional scale {args.scale} (seed {args.seed}):")
    for name, rows in tables.items():
        print(f"  {name:10s} {len(rows):10,d} rows")
    return 0


def cmd_tpch_run(args: argparse.Namespace) -> int:
    from repro import GB, MB, MachineProfile, PangeaCluster
    from repro.query.scheduler import QueryScheduler
    from repro.tpch import (
        EXTRA_QUERIES,
        FULL_QUERIES,
        QUERIES,
        load_tpch,
        register_tpch_replicas,
    )

    cluster = PangeaCluster(
        num_nodes=args.nodes, profile=MachineProfile.tiny(pool_bytes=1 * GB)
    )
    load_tpch(cluster, scale=args.scale)
    if args.replicas:
        register_tpch_replicas(cluster)
        print("heterogeneous replicas registered")
    queries = dict(QUERIES)
    if args.extended:
        queries.update(EXTRA_QUERIES)
        queries.update(FULL_QUERIES)
    print(f"{'query':6s} {'rows':>6s} {'seconds':>10s}")
    for name, run in sorted(queries.items()):
        scheduler = QueryScheduler(cluster, broadcast_threshold=4 * MB,
                                   object_bytes=144)
        start = cluster.simulated_seconds()
        rows = run(scheduler)
        seconds = cluster.simulated_seconds() - start
        print(f"{name:6s} {len(rows):6d} {seconds:9.4f}s")
    return 0


def cmd_kmeans(args: argparse.Namespace) -> int:
    from repro import GB, MachineProfile, PangeaCluster
    from repro.baselines.spark import SparkKMeans
    from repro.ml.kmeans import PangeaKMeans, generate_points

    points = args.points
    actual = min(8000, max(1000, points // 250_000))
    represent = points / actual
    cluster = PangeaCluster(
        num_nodes=args.nodes,
        profile=MachineProfile.r4_2xlarge(pool_bytes=50 * GB),
        policy=args.policy,
    )
    km = PangeaKMeans(cluster, k=10, dims=10, workers=8)
    data = km.load_points(generate_points(actual), represent=represent)
    result = km.run(data, represent=represent, iterations=args.iterations)
    print(f"pangea ({args.policy}): init={result.init_seconds:.1f}s "
          f"iter={result.avg_iteration_seconds:.1f}s "
          f"total={cluster.simulated_seconds():.1f}s")
    if args.compare:
        for backend in ("hdfs", "alluxio", "ignite"):
            report = SparkKMeans(num_nodes=args.nodes, backend=backend).run(
                points, iterations=args.iterations
            )
            if report.failed:
                print(f"spark-{backend}: FAILED ({report.failure[:50]})")
            else:
                print(f"spark-{backend}: init={report.init_seconds:.1f}s "
                      f"total={report.total_seconds:.1f}s")
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    from repro import DbminBlockedError, MB, MachineProfile, PangeaCluster

    print(f"{'policy':>16s} {'seconds':>9s}")
    for policy in args.policies.split(","):
        cluster = PangeaCluster(
            num_nodes=1,
            profile=MachineProfile.m3_xlarge(pool_bytes=args.pool_mb * MB),
            policy=policy.strip(),
        )
        data = cluster.create_set(
            "stream", durability="write-back", page_size=2 * MB,
            object_bytes=128 * 1024,
        )
        try:
            data.add_data(list(range(args.pool_mb * 16)))  # 2x the pool
            for _ in range(3):
                for _record in data.scan_records(workers=4):
                    pass
            print(f"{policy.strip():>16s} {cluster.simulated_seconds():8.3f}s")
        except DbminBlockedError:
            print(f"{policy.strip():>16s}   BLOCKED")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.report import run_smoke
    from repro.sim.metrics import format_set_table, format_table

    report = run_smoke(
        nodes=args.nodes, pool_mb=args.pool_mb, trace=False, policy=args.policy
    )
    print(format_table(report.metrics))
    print()
    print(format_set_table(report.metrics))
    mismatches = report.mismatches
    if mismatches:
        print()
        print("RECONCILIATION FAILED:")
        for problem in mismatches:
            print(f"  {problem}")
        return 1
    print()
    print("per-set metrics reconcile exactly with the pool counters")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.exporters import to_chrome, to_jsonl
    from repro.obs.report import run_smoke

    report = run_smoke(nodes=args.nodes, pool_mb=args.pool_mb, trace=True,
                       policy=args.policy)
    tracer = report.tracer
    if args.format == "chrome":
        count = to_chrome(tracer, args.out)
    else:
        count = to_jsonl(tracer, args.out)
    print(f"wrote {count} events to {args.out} ({args.format} format)")
    print(f"emitted {tracer.emitted}, dropped {tracer.dropped} "
          f"(ring capacity {tracer.capacity})")
    for cat, n in sorted(tracer.category_counts().items()):
        print(f"  {cat:10s} {n:7d}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Pangea reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and environment summary")

    p = sub.add_parser("tpch-gen", help="generate TPC-H tables")
    p.add_argument("--scale", type=float, default=0.001)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("tpch-run", help="run TPC-H queries on a cluster")
    p.add_argument("--scale", type=float, default=0.002)
    p.add_argument("--nodes", type=int, default=3)
    p.add_argument("--replicas", action="store_true")
    p.add_argument("--extended", action="store_true",
                   help="run all 22 TPC-H queries, not just the paper's nine")

    p = sub.add_parser("kmeans", help="k-means comparison")
    p.add_argument("--points", type=int, default=1_000_000_000)
    p.add_argument("--nodes", type=int, default=10)
    p.add_argument("--iterations", type=int, default=5)
    p.add_argument("--policy", default="data-aware")
    p.add_argument("--compare", action="store_true",
                   help="also run the Spark baselines")

    p = sub.add_parser("policies", help="compare paging policies")
    p.add_argument("--policies",
                   default="data-aware,dbmin-tuned,mru,lru,greedy-dual,lru-2")
    p.add_argument("--pool-mb", type=int, default=32)

    p = sub.add_parser("metrics",
                       help="smoke workload + metrics tables + reconciliation")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--pool-mb", type=int, default=8)
    p.add_argument("--policy", default="data-aware")

    p = sub.add_parser("trace", help="smoke workload with tracing, exported")
    p.add_argument("--nodes", type=int, default=2)
    p.add_argument("--pool-mb", type=int, default=8)
    p.add_argument("--policy", default="data-aware")
    p.add_argument("--out", default="trace.json")
    p.add_argument("--format", choices=("chrome", "jsonl"), default="chrome")

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "tpch-gen": cmd_tpch_gen,
        "tpch-run": cmd_tpch_run,
        "kmeans": cmd_kmeans,
        "policies": cmd_policies,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
