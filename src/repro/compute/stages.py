"""Per-node stage execution on real threads.

The query scheduler's stages are embarrassingly parallel across nodes:
every task touches only its own node's shards, clock, CPU and network
(remote shuffle flushes credit the peer's *stats*, never its clock), and
the PR-1 storage path is thread-safe.  Running one thread per node
therefore charges exactly the simulated costs of the serial loop — each
node's charge sequence is untouched, only the wall-clock interleaving
changes — which is what the golden equivalence suite pins down.

The executor degrades to the serial loop when any node has an enabled
fault injector: rate-based faults draw from one shared seeded RNG whose
draw order is defined by the *global* event order, which threads would
scramble.
"""

from __future__ import annotations

import threading
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster


class StageExecutor:
    """Run one thunk per worker node, concurrently when that is safe.

    ``run`` takes ``{node_id: thunk}`` and returns ``{node_id: result}``
    in sorted node order.  Exceptions propagate: the lowest-node failure
    re-raises after every thread has joined.  When a node has a tracer
    attached, each task is wrapped in one ``query.stage`` span stamped
    off that node's simulated clock.
    """

    def __init__(self, cluster: "PangeaCluster", parallel: bool = True) -> None:
        self.cluster = cluster
        self.parallel = parallel
        #: Whether the most recent :meth:`run` used threads.
        self.last_parallel = False

    def _faults_active(self) -> bool:
        for node in self.cluster.nodes:
            injector = getattr(node, "fault_injector", None)
            if injector is not None and injector.enabled:
                return True
        return False

    def run(self, stage: str, tasks: dict) -> dict:
        order = sorted(tasks)
        use_threads = self.parallel and len(order) > 1 and not self._faults_active()
        self.last_parallel = use_threads
        if not use_threads:
            return {
                node_id: self._run_one(stage, node_id, tasks[node_id])
                for node_id in order
            }
        results: dict = {}
        errors: dict = {}
        lock = threading.Lock()

        def work(node_id, thunk):
            try:
                value = self._run_one(stage, node_id, thunk)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    errors[node_id] = exc
            else:
                with lock:
                    results[node_id] = value

        threads = [
            threading.Thread(
                target=work,
                args=(node_id, tasks[node_id]),
                name=f"stage-{stage}-n{node_id}",
            )
            for node_id in order
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[min(errors)]
        return {node_id: results[node_id] for node_id in order}

    def _run_one(self, stage: str, node_id: int, thunk):
        tracer = self.cluster.nodes[node_id].tracer
        if tracer is None:
            return thunk()
        start = tracer.now
        value = thunk()
        tracer.span(
            "query.stage", "query", start, tracer.now - start, stage=stage
        )
        return value
