"""The computation-process side of Pangea (paper Sec. 5, Fig. 2).

A computation process does not read files: its *data proxy* exchanges
page metadata with the storage process over a socket, the metadata lands
in a thread-safe circular buffer, and **long-living worker threads** pull
pages from that buffer and access the data through shared memory.  This
contrasts with the "waves of tasks" model of Spark/Hadoop, where a task
is scheduled per block of data — and with it the all-or-nothing caching
concern of PACMan, which Pangea's model sidesteps entirely.
"""

from repro.compute.circular import CircularBuffer
from repro.compute.proxy import DataProxy
from repro.compute.stages import StageExecutor
from repro.compute.workers import StageResult, WavesOfTasks, WorkerPool

__all__ = [
    "CircularBuffer",
    "DataProxy",
    "WorkerPool",
    "WavesOfTasks",
    "StageResult",
    "StageExecutor",
]
