"""The thread-safe circular buffer of pinned-page metadata (paper Fig. 2)."""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class PageMeta:
    """What the storage process sends for each pinned page: enough to
    locate it in shared memory."""

    page_id: int
    offset: int
    size: int
    num_objects: int


class CircularBuffer:
    """A bounded ring buffer of :class:`PageMeta`.

    The storage process produces entries as it pins pages; computation
    workers consume them.  When the ring is full the producer stalls
    (counted in :attr:`producer_stalls` — a sign the workers are the
    bottleneck); when empty, consumers stall (:attr:`consumer_stalls`).

    All operations are thread-safe: a single mutex guards the ring and a
    condition variable wakes blocked producers/consumers.  The historical
    :meth:`put`/:meth:`get` pair stays non-blocking (the simulated mode's
    cooperative fill/drain loop relies on that); real worker threads use
    :meth:`put_wait`/:meth:`get_wait`, which block until space/data is
    available or the ring is closed.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("circular buffer capacity must be positive")
        self.capacity = capacity
        self._slots: list = [None] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self.producer_stalls = 0
        self.consumer_stalls = 0
        self._closed = False
        self._lock = threading.Lock()
        self._state_changed = threading.Condition(self._lock)

    @property
    def count(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def empty(self) -> bool:
        return self._count == 0

    # ------------------------------------------------------------------
    # lock-internal helpers (call with self._lock held)
    # ------------------------------------------------------------------

    def _put_locked(self, meta: PageMeta) -> None:
        self._slots[self._tail] = meta
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        self._state_changed.notify_all()

    def _get_locked(self) -> "PageMeta":
        meta = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        self._state_changed.notify_all()
        return meta

    # ------------------------------------------------------------------
    # non-blocking API (simulated mode)
    # ------------------------------------------------------------------

    def put(self, meta: PageMeta) -> bool:
        """Producer side; returns False (and counts a stall) when full."""
        with self._lock:
            if self._closed:
                raise ValueError("cannot put into a closed buffer")
            if self._count == self.capacity:
                self.producer_stalls += 1
                return False
            self._put_locked(meta)
            return True

    def get(self) -> "PageMeta | None":
        """Consumer side; returns None (and counts a stall) when empty."""
        with self._lock:
            if self._count == 0:
                if not self._closed:
                    self.consumer_stalls += 1
                return None
            return self._get_locked()

    # ------------------------------------------------------------------
    # blocking API (threaded mode)
    # ------------------------------------------------------------------

    def put_wait(self, meta: PageMeta, timeout: float | None = None) -> bool:
        """Block until there is room, then enqueue; ``False`` on timeout.

        Raises :class:`ValueError` if the buffer is closed while waiting —
        a closed ring can never make room for a producer again.
        """
        with self._lock:
            while True:
                if self._closed:
                    raise ValueError("cannot put into a closed buffer")
                if self._count < self.capacity:
                    self._put_locked(meta)
                    return True
                self.producer_stalls += 1
                if not self._state_changed.wait(timeout):
                    return False

    def get_wait(self, timeout: float | None = None) -> "PageMeta | None":
        """Block until an entry arrives; ``None`` once closed and drained.

        A ``None`` return after a timeout is indistinguishable from
        NoMorePage only if the caller ignores :attr:`drained`; check it
        when using finite timeouts.
        """
        with self._lock:
            while True:
                if self._count > 0:
                    return self._get_locked()
                if self._closed:
                    return None
                self.consumer_stalls += 1
                if not self._state_changed.wait(timeout):
                    return None

    def close(self) -> None:
        """Producer signals NoMorePage (paper Fig. 2)."""
        with self._lock:
            self._closed = True
            self._state_changed.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._closed and self._count == 0

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"CircularBuffer({self._count}/{self.capacity}, {state})"
