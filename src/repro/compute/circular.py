"""The thread-safe circular buffer of pinned-page metadata (paper Fig. 2)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PageMeta:
    """What the storage process sends for each pinned page: enough to
    locate it in shared memory."""

    page_id: int
    offset: int
    size: int
    num_objects: int


class CircularBuffer:
    """A bounded ring buffer of :class:`PageMeta`.

    The storage process produces entries as it pins pages; computation
    workers consume them.  When the ring is full the producer stalls
    (counted in :attr:`producer_stalls` — a sign the workers are the
    bottleneck); when empty, consumers stall (:attr:`consumer_stalls`).
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("circular buffer capacity must be positive")
        self.capacity = capacity
        self._slots: list = [None] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0
        self.producer_stalls = 0
        self.consumer_stalls = 0
        self._closed = False

    @property
    def count(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    @property
    def empty(self) -> bool:
        return self._count == 0

    def put(self, meta: PageMeta) -> bool:
        """Producer side; returns False (and counts a stall) when full."""
        if self._closed:
            raise ValueError("cannot put into a closed buffer")
        if self.full:
            self.producer_stalls += 1
            return False
        self._slots[self._tail] = meta
        self._tail = (self._tail + 1) % self.capacity
        self._count += 1
        return True

    def get(self) -> "PageMeta | None":
        """Consumer side; returns None (and counts a stall) when empty."""
        if self.empty:
            if not self._closed:
                self.consumer_stalls += 1
            return None
        meta = self._slots[self._head]
        self._slots[self._head] = None
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return meta

    def close(self) -> None:
        """Producer signals NoMorePage (paper Fig. 2)."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def drained(self) -> bool:
        return self._closed and self.empty

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"CircularBuffer({self._count}/{self.capacity}, {state})"
