"""The data proxy: socket metadata, shared-memory data (paper Fig. 2)."""

from __future__ import annotations

import threading
import typing

from repro.compute.circular import CircularBuffer, PageMeta

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.buffer.page import Page
    from repro.core.locality_set import LocalShard


class DataProxy:
    """The computation process's gateway to the storage process.

    Metadata (page offsets in the shared memory pool) crosses a socket;
    the data itself never moves — computations read pages in place.  The
    proxy drives the GetSetPages flow: the storage process pins pages and
    streams their metadata into a circular buffer while workers drain it.

    Thread-safe: several worker threads may call :meth:`next_page` and
    :meth:`release_page` on one proxy concurrently (the threaded
    :class:`~repro.compute.workers.WorkerPool` does exactly that).  The
    proxy's own reentrant lock makes fill+get atomic, so a ``None`` from
    :meth:`next_page` always means the set is drained, never that another
    thread raced the refill.  Lock order: proxy → storage (pool) lock.
    """

    def __init__(self, shard: "LocalShard", buffer_capacity: int = 16) -> None:
        self.shard = shard
        self.buffer = CircularBuffer(buffer_capacity)
        self._pinned: dict[int, Page] = {}
        self._pending: "list[Page]" = []
        self._started = False
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # the GetSetPages flow
    # ------------------------------------------------------------------

    def request_set_pages(self) -> None:
        """Send GetSetPages; the storage process starts pinning."""
        with self._lock:
            if self._started:
                raise RuntimeError("GetSetPages already sent for this proxy")
            self._started = True
            self.shard.node.network.message(1)
            self._pending = list(self.shard.pages)

    def _storage_fill(self) -> None:
        """Storage-side: pin pages and push their metadata until the ring
        is full or the set is exhausted."""
        while self._pending and not self.buffer.full:
            page = self._pending.pop(0)
            self.shard.pin_page(page)  # reload charged if spilled
            self._pinned[page.page_id] = page
            # One PagePinned message per page (paper Fig. 2).
            self.shard.node.network.message(1)
            self.buffer.put(
                PageMeta(
                    page_id=page.page_id,
                    offset=page.offset if page.offset is not None else 0,
                    size=page.size,
                    num_objects=page.num_objects,
                )
            )
        if not self._pending and not self.buffer.closed:
            self.buffer.close()  # NoMorePage

    def next_page(self) -> "Page | None":
        """Worker-side: pull the next pinned page (None when drained)."""
        with self._lock:
            if not self._started:
                self.request_set_pages()
            self._storage_fill()
            meta = self.buffer.get()
            if meta is None:
                return None
            return self._pinned[meta.page_id]

    def release_page(self, page: "Page") -> None:
        """Worker finished with a page: unpin it in the storage process."""
        with self._lock:
            pinned = self._pinned.pop(page.page_id, None)
            if pinned is None:
                raise ValueError(
                    f"page {page.page_id} was not served by this proxy"
                )
            self.shard.unpin_page(page)

    def close(self) -> None:
        """Release anything still pinned (worker crash / early exit)."""
        with self._lock:
            for page in list(self._pinned.values()):
                self.release_page(page)

    @property
    def drained(self) -> bool:
        with self._lock:
            return self._started and self.buffer.drained and not self._pinned
