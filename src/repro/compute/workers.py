"""Long-living workers vs waves of tasks (paper Sec. 5).

:class:`WorkerPool` is Pangea's model: a job stage starts N workers per
node which live until all input pages are processed, each pulling pages
from the data proxy's circular buffer in a loop.  There is no per-block
scheduling and no "all-or-nothing" cache-locality concern.

With ``threaded=True`` the workers are real OS threads — one
:class:`threading.Thread` per worker per node, all pulling from the same
thread-safe :class:`~repro.compute.proxy.DataProxy`.  The simulated-cost
accounting is unchanged (the node clocks are thread-safe), so the two
modes produce identical per-node results; the threaded mode additionally
exercises the storage path's locking for real.

:class:`WavesOfTasks` is the Spark/Hadoop model the paper contrasts: one
task per data block, scheduled by a driver wave by wave, paying a fixed
scheduling cost per task.
"""

from __future__ import annotations

import threading
import typing
from dataclasses import dataclass, field

from repro.compute.proxy import DataProxy
from repro.services.sequential import resolve_readable_source

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet


@dataclass
class StageResult:
    """Output of one job stage."""

    per_node: dict = field(default_factory=dict)
    pages_processed: int = 0
    seconds: float = 0.0
    tasks_scheduled: int = 0
    #: Distinct OS thread idents that processed at least one page
    #: (threaded mode only; empty in simulated mode).
    os_threads_used: set = field(default_factory=set)

    def all_results(self) -> list:
        merged: list = []
        for node_id in sorted(self.per_node):
            merged.extend(self.per_node[node_id])
        return merged


class WorkerPool:
    """Pangea's threading model: long-living workers pulling pages."""

    def __init__(self, cluster: "PangeaCluster", workers_per_node: int = 8,
                 buffer_capacity: int = 16, threaded: bool = False) -> None:
        if workers_per_node < 1:
            raise ValueError("need at least one worker per node")
        self.cluster = cluster
        self.workers_per_node = workers_per_node
        self.buffer_capacity = buffer_capacity
        self.threaded = threaded

    def run_stage(
        self,
        dataset: "LocalitySet",
        page_fn: "typing.Callable[[object], object]",
        seconds_per_object: float = 0.0,
    ) -> StageResult:
        """Apply ``page_fn`` to every page of ``dataset``.

        Workers on each node share one proxy; per-object compute time is
        divided across the workers (they run concurrently on the cores).
        In threaded mode the workers really are concurrent OS threads;
        outputs are re-ordered to the shard's page order afterwards so
        both modes return identical results.

        Dead shards fail over the same way a scan does (see
        :func:`~repro.services.sequential.resolve_readable_source`): the
        stage reads the healed survivors or a fully-live replica member
        instead of the crashed node's orphaned pages.
        """
        if self.threaded:
            return self._run_stage_threaded(dataset, page_fn, seconds_per_object)
        start = self.cluster.barrier()
        result = StageResult()
        source, node_ids = resolve_readable_source(dataset)
        for node_id in node_ids:
            shard = source.shards[node_id]
            node = shard.node
            proxy = DataProxy(shard, buffer_capacity=self.buffer_capacity)
            outputs: list = []
            try:
                while True:
                    page = proxy.next_page()
                    if page is None:
                        break
                    outputs.append(page_fn(page))
                    node.cpu.per_object(
                        page.num_objects, workers=self.workers_per_node
                    )
                    if seconds_per_object:
                        node.cpu.parallel(
                            page.num_objects * seconds_per_object,
                            self.workers_per_node,
                        )
                    proxy.release_page(page)
                    result.pages_processed += 1
            finally:
                proxy.close()
            result.per_node[node_id] = outputs
        result.seconds = self.cluster.barrier() - start
        return result

    # ------------------------------------------------------------------
    # threaded mode
    # ------------------------------------------------------------------

    def _run_stage_threaded(
        self,
        dataset: "LocalitySet",
        page_fn: "typing.Callable[[object], object]",
        seconds_per_object: float,
    ) -> StageResult:
        start = self.cluster.barrier()
        result = StageResult()
        result_lock = threading.Lock()
        errors: list[BaseException] = []
        threads: list[threading.Thread] = []
        proxies: list[DataProxy] = []
        stop = threading.Event()

        def drain(node, proxy, order, outputs):
            try:
                while not stop.is_set():
                    page = proxy.next_page()
                    if page is None:
                        return
                    try:
                        out = page_fn(page)
                        node.cpu.per_object(
                            page.num_objects, workers=self.workers_per_node
                        )
                        if seconds_per_object:
                            node.cpu.parallel(
                                page.num_objects * seconds_per_object,
                                self.workers_per_node,
                            )
                    finally:
                        # Unpin even when page_fn crashes, so a worker
                        # failure cannot wedge the pool for its siblings.
                        proxy.release_page(page)
                    with result_lock:
                        outputs.append((order[page.page_id], out))
                        result.pages_processed += 1
                        result.os_threads_used.add(threading.get_ident())
            except BaseException as exc:  # propagate to the caller after join
                stop.set()
                with result_lock:
                    errors.append(exc)

        per_node_outputs: dict[int, list] = {}
        source, node_ids = resolve_readable_source(dataset)
        for node_id in node_ids:
            shard = source.shards[node_id]
            node = shard.node
            proxy = DataProxy(shard, buffer_capacity=self.buffer_capacity)
            proxies.append(proxy)
            order = {page.page_id: i for i, page in enumerate(shard.pages)}
            outputs: list = []
            per_node_outputs[node_id] = outputs
            for _ in range(self.workers_per_node):
                threads.append(
                    threading.Thread(
                        target=drain,
                        args=(node, proxy, order, outputs),
                        name=f"pangea-worker-n{node_id}",
                        daemon=True,
                    )
                )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for proxy in proxies:
            proxy.close()
        if errors:
            raise errors[0]
        for node_id, outputs in per_node_outputs.items():
            result.per_node[node_id] = [out for _, out in sorted(outputs)]
        result.seconds = self.cluster.barrier() - start
        return result


class WavesOfTasks:
    """The layered engines' model: one scheduled task per page.

    The driver dispatches tasks in waves of ``cores`` per node; every
    task pays ``task_overhead`` of driver/scheduler time (serialization
    of the closure, scheduling decision, launch) before doing the same
    work a Pangea worker would.
    """

    def __init__(
        self,
        cluster: "PangeaCluster",
        cores_per_node: int = 8,
        task_overhead: float = 2e-3,
    ) -> None:
        self.cluster = cluster
        self.cores_per_node = cores_per_node
        self.task_overhead = task_overhead

    def run_stage(
        self,
        dataset: "LocalitySet",
        page_fn: "typing.Callable[[object], object]",
        seconds_per_object: float = 0.0,
    ) -> StageResult:
        start = self.cluster.barrier()
        result = StageResult()
        driver = self.cluster.nodes[0]
        source, node_ids = resolve_readable_source(dataset)
        for node_id in node_ids:
            shard = source.shards[node_id]
            node = shard.node
            outputs: list = []
            for page in list(shard.pages):
                # The driver schedules one task for this block.
                driver.clock.advance(self.task_overhead)
                result.tasks_scheduled += 1
                shard.pin_page(page)
                try:
                    outputs.append(page_fn(page))
                    node.cpu.per_object(
                        page.num_objects, workers=self.cores_per_node
                    )
                    if seconds_per_object:
                        node.cpu.parallel(
                            page.num_objects * seconds_per_object,
                            self.cores_per_node,
                        )
                finally:
                    shard.unpin_page(page)
                result.pages_processed += 1
            result.per_node[node_id] = outputs
        result.seconds = self.cluster.barrier() - start
        return result
