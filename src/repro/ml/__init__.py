"""Machine-learning workloads built on Pangea (the paper's k-means)."""

from repro.ml.kmeans import KMeansResult, PangeaKMeans, generate_points

__all__ = ["PangeaKMeans", "KMeansResult", "generate_points"]
