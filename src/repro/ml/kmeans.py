"""k-means clustering on Pangea (paper Sec. 9.1.1, Figs. 3-4).

The implementation mirrors the paper's: a write-through locality set holds
the input points; the initialization step computes norms into a write-back
set (enlarging the working set, which is what forces paging at 2 billion
points); each of five iterations broadcasts the centroids, assigns every
point through the sequential read service, and aggregates per-cluster sums
through the hash service.

Scale-down: each actual record *represents* ``represent`` paper-scale
points.  Logical page sizes, I/O volumes and CPU charges all use the
paper-scale counts, so paging behaviour and timing shape match the paper
while the Python process only touches thousands of numpy rows.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

from repro.services.hashsvc import VirtualHashBuffer
from repro.services.sequential import SequentialWriter, make_shard_iterators
from repro.sim.devices import MB

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet

#: Paper-scale logical bytes per point: 1 billion 10-d points = 120GB.
POINT_BYTES = 120
#: The norms set stores the point plus its squared norm.
POINT_WITH_NORM_BYTES = 128
#: Per-point CPU time for the initialization step: norm computation plus
#: first-touch costs (object iteration, tuple construction, dispatch).
#: Calibrated so 1 billion points on 10 workers initialize in ~43 s, the
#: paper's measured Pangea init time.
NORM_SECONDS_PER_POINT = 3.2e-6
#: Per-point CPU time for one assignment against k=10 centroids.
ASSIGN_SECONDS_PER_POINT = 800e-9


def generate_points(
    num_actual: int, dims: int = 10, num_clusters: int = 10, seed: int = 11
) -> np.ndarray:
    """Deterministic synthetic points around ``num_clusters`` true centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10.0, 10.0, size=(num_clusters, dims))
    assignments = rng.integers(0, num_clusters, size=num_actual)
    return centers[assignments] + rng.normal(0.0, 0.5, size=(num_actual, dims))


@dataclass
class KMeansResult:
    """Timing breakdown and convergence output of one run."""

    centroids: np.ndarray
    init_seconds: float
    iteration_seconds: list = field(default_factory=list)
    peak_pool_bytes: int = 0
    policy: str = ""

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + sum(self.iteration_seconds)

    @property
    def avg_iteration_seconds(self) -> float:
        if not self.iteration_seconds:
            return 0.0
        return sum(self.iteration_seconds) / len(self.iteration_seconds)


class PangeaKMeans:
    """The paper's k-means implemented directly on Pangea services."""

    def __init__(
        self,
        cluster: "PangeaCluster",
        k: int = 10,
        dims: int = 10,
        workers: int = 8,
        page_size: int = 256 * MB,
    ) -> None:
        self.cluster = cluster
        self.k = k
        self.dims = dims
        self.workers = workers
        self.page_size = page_size
        self._peak_pool = 0

    # ------------------------------------------------------------------
    # data loading
    # ------------------------------------------------------------------

    def load_points(
        self,
        points: np.ndarray,
        represent: float = 1.0,
        name: str = "points",
    ) -> "LocalitySet":
        """Load actual points, each representing ``represent`` logical ones."""
        dataset = self.cluster.create_set(
            name,
            durability="write-through",
            page_size=self.page_size,
            object_bytes=max(1, int(POINT_BYTES * represent)),
        )
        dataset.add_data([points[i] for i in range(len(points))])
        self._track_peak()
        self.cluster.barrier()
        return dataset

    # ------------------------------------------------------------------
    # the computation
    # ------------------------------------------------------------------

    def run(
        self,
        input_set: "LocalitySet",
        represent: float = 1.0,
        iterations: int = 5,
    ) -> KMeansResult:
        start = self.cluster.barrier()
        norms_set, centroids = self._initialize(input_set, represent)
        after_init = self.cluster.barrier()
        iteration_seconds = []
        for _ in range(iterations):
            iter_start = self.cluster.barrier()
            centroids = self._iterate(norms_set, centroids, represent)
            iteration_seconds.append(self.cluster.barrier() - iter_start)
        # The norms set is transient job data: end its lifetime and drop it
        # so re-running on the same input starts clean.
        norms_set.end_lifetime()
        self.cluster.drop_set(norms_set.name)
        return KMeansResult(
            centroids=centroids,
            init_seconds=after_init - start,
            iteration_seconds=iteration_seconds,
            peak_pool_bytes=self._peak_pool,
            policy=self.cluster.nodes[0].paging.policy.name,
        )

    def _initialize(self, input_set, represent: float):
        """Compute norms into a write-back set and sample initial centroids."""
        norms_set = self.cluster.create_set(
            f"{input_set.name}_norms",
            durability="write-back",
            page_size=self.page_size,
            object_bytes=max(1, int(POINT_WITH_NORM_BYTES * represent)),
        )
        sample: list = []
        for node_id in sorted(input_set.shards):
            shard = input_set.shards[node_id]
            writer = SequentialWriter(norms_set.shards[node_id], workers=self.workers)
            writer.attach()
            try:
                for iterator in make_shard_iterators(shard, 1):
                    for page in iterator:
                        logical = page.num_objects * represent
                        shard.node.cpu.compute(
                            logical * NORM_SECONDS_PER_POINT, workers=self.workers
                        )
                        for point in page.records:
                            norm = float(np.dot(point, point))
                            writer.add_object((point, norm))
                            if len(sample) < self.k:
                                sample.append(np.array(point))
            finally:
                writer.flush()
                writer.close()
            self._track_peak()
        self.cluster.barrier()
        if len(sample) < self.k:
            raise ValueError(
                f"need at least k={self.k} points to seed centroids, "
                f"got {len(sample)}"
            )
        return norms_set, np.stack(sample[: self.k])

    def _iterate(self, norms_set, centroids: np.ndarray, represent: float) -> np.ndarray:
        # Broadcast the centroids (tiny, but it crosses the network).
        centroid_bytes = centroids.size * 8
        num_nodes = self.cluster.num_nodes
        if num_nodes > 1:
            self.cluster.nodes[0].network.transfer(centroid_bytes * (num_nodes - 1))
        self.cluster.barrier()
        centroid_norms = np.sum(centroids * centroids, axis=1)

        # Per-node local aggregation through the hash service.
        agg_name = f"{norms_set.name}_agg"
        partials: list = []
        for node_id in sorted(norms_set.shards):
            shard = norms_set.shards[node_id]
            temp = self.cluster.create_set(
                f"{agg_name}_n{node_id}",
                durability="write-back",
                page_size=4 * MB,
                nodes=[node_id],
                object_bytes=self.dims * 8 + 16,
            )
            buffer = VirtualHashBuffer(
                temp,
                num_root_partitions=2,
                combiner=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            )
            for iterator in make_shard_iterators(shard, 1):
                for page in iterator:
                    logical = page.num_objects * represent
                    shard.node.cpu.compute(
                        logical * ASSIGN_SECONDS_PER_POINT, workers=self.workers
                    )
                    for point, norm in page.records:
                        # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2 (norms trick)
                        scores = norm - 2.0 * centroids @ point + centroid_norms
                        best = int(np.argmin(scores))
                        buffer.insert(
                            best,
                            (np.array(point) * represent, represent),
                            nbytes=self.dims * 8 + 16,
                        )
            partials.append(dict(buffer.items()))
            buffer.release()
            temp.end_lifetime()
            self.cluster.drop_set(temp.name)
            self._track_peak()
        self.cluster.barrier()

        # Final stage: merge per-cluster partials (k tiny records per node).
        if num_nodes > 1:
            for node in self.cluster.nodes:
                node.network.transfer(self.k * (self.dims * 8 + 16))
        sums = np.zeros_like(centroids)
        counts = np.zeros(self.k)
        for partial in partials:
            for cluster_id, (vec_sum, count) in partial.items():
                sums[cluster_id] += vec_sum
                counts[cluster_id] += count
        new_centroids = centroids.copy()
        nonzero = counts > 0
        new_centroids[nonzero] = sums[nonzero] / counts[nonzero, None]
        self.cluster.barrier()
        return new_centroids

    def _track_peak(self) -> None:
        used = self.cluster.total_pool_bytes_used()
        if used > self._peak_pool:
            self._peak_pool = used
