"""Pangea: monolithic distributed storage for data analytics.

A full Python reproduction of Zou, Iyengar & Jermaine (VLDB 2019).  See
DESIGN.md for the system inventory and EXPERIMENTS.md for the paper-vs-
measured record of every table and figure.

Quickstart::

    from repro import PangeaCluster, MachineProfile, MB

    cluster = PangeaCluster(num_nodes=4, profile=MachineProfile.r4_2xlarge())
    data = cluster.create_set("points", durability="write-through",
                              page_size=64 * MB, object_bytes=80)
    data.add_data(records)
    for record in data.scan_records(workers=8):
        ...
    print(cluster.simulated_seconds())
"""

from repro.buffer import BufferPool, BufferPoolFullError, SlabAllocator, TlsfAllocator
from repro.cluster import AuthError, KeyPair, Manager, PangeaCluster, WorkerNode
from repro.core import (
    CurrentOperation,
    DataAwarePolicy,
    DbminBlockedError,
    DurabilityType,
    LocalitySet,
    LocalitySetAttributes,
    PagingSystem,
    ReadingPattern,
    WritingPattern,
    make_policy,
)
from repro.obs import NodeTracer, SetMetrics, TraceEvent, Tracer, to_chrome, to_jsonl
from repro.sim import (
    FaultConfig,
    FaultInjector,
    MachineProfile,
    PageCorruptionError,
    RetryPolicy,
    RobustnessStats,
    SimClock,
)
from repro.sim.devices import GB, KB, MB

__version__ = "1.0.0"

__all__ = [
    "PangeaCluster",
    "WorkerNode",
    "Manager",
    "KeyPair",
    "AuthError",
    "LocalitySet",
    "LocalitySetAttributes",
    "DurabilityType",
    "WritingPattern",
    "ReadingPattern",
    "CurrentOperation",
    "PagingSystem",
    "DataAwarePolicy",
    "DbminBlockedError",
    "make_policy",
    "BufferPool",
    "BufferPoolFullError",
    "TlsfAllocator",
    "SlabAllocator",
    "MachineProfile",
    "SimClock",
    "FaultConfig",
    "FaultInjector",
    "PageCorruptionError",
    "RetryPolicy",
    "RobustnessStats",
    "Tracer",
    "NodeTracer",
    "TraceEvent",
    "SetMetrics",
    "to_jsonl",
    "to_chrome",
    "KB",
    "MB",
    "GB",
    "__version__",
]
