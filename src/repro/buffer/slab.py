"""A Memcached-style slab allocator.

Pangea uses slab allocation in two places (paper Secs. 5 and 8): as an
alternative pool allocator, and — more importantly — as the *secondary*
allocator inside every hash-service page, where it bounds all key-value
allocations to the memory hosting that page and gives the hash map the
better space utilization the paper credits for Pangea spilling at 300M keys
where the STL map starts swapping at 200M.
"""

from __future__ import annotations

import bisect
import math

from repro.sim.devices import MB


class SlabExhaustedError(MemoryError):
    """Raised when the arena has no room for another slab.

    For hash-service pages this is the signal to split a new child hash
    partition or spill the page (paper Sec. 8).
    """


def build_size_classes(
    chunk_min: int = 80, growth_factor: float = 1.25, chunk_max: int = 1 * MB
) -> list[int]:
    """The geometric chunk-size ladder memcached uses."""
    if chunk_min <= 0:
        raise ValueError("chunk_min must be positive")
    if growth_factor <= 1.0:
        raise ValueError("growth_factor must be > 1")
    classes = []
    size = chunk_min
    while size < chunk_max:
        classes.append(size)
        size = max(size + 8, int(math.ceil(size * growth_factor / 8.0) * 8))
    classes.append(chunk_max)
    return classes


class SlabAllocator:
    """Allocate chunks from fixed-size slabs carved out of one arena.

    The arena is a contiguous region of ``capacity`` bytes (for the hash
    service: the usable interior of a single buffer-pool page).  Slabs of
    ``slab_size`` bytes are carved from the arena head; each slab is divided
    into equal chunks belonging to one size class.
    """

    def __init__(
        self,
        capacity: int,
        slab_size: int = 1 * MB,
        chunk_min: int = 80,
        growth_factor: float = 1.25,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        slab_size = min(slab_size, capacity)
        self.capacity = capacity
        self.slab_size = slab_size
        self.size_classes = build_size_classes(
            chunk_min=chunk_min, growth_factor=growth_factor, chunk_max=slab_size
        )
        self._arena_head = 0
        # Per class: list of free chunk offsets, and the carving frontier of
        # the class's current slab as (next_offset, end_offset).
        self._free_chunks: dict[int, list[int]] = {i: [] for i in range(len(self.size_classes))}
        self._frontier: dict[int, tuple[int, int]] = {}
        self._chunk_class: dict[int, int] = {}
        self.used_bytes = 0
        self.requested_bytes = 0

    def _class_for(self, size: int) -> int:
        idx = bisect.bisect_left(self.size_classes, size)
        if idx >= len(self.size_classes):
            raise ValueError(
                f"allocation of {size} bytes exceeds the largest chunk class "
                f"({self.size_classes[-1]} bytes)"
            )
        return idx

    def _grow_class(self, cls: int) -> None:
        remaining = self.capacity - self._arena_head
        chunk = self.size_classes[cls]
        slab = min(self.slab_size, remaining)
        if slab < chunk:
            raise SlabExhaustedError(
                f"arena exhausted: {remaining} bytes left, need a slab holding "
                f"at least one {chunk}-byte chunk"
            )
        self._frontier[cls] = (self._arena_head, self._arena_head + slab)
        self._arena_head += slab

    def alloc(self, size: int) -> int:
        """Allocate a chunk for ``size`` bytes; return its offset."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        cls = self._class_for(size)
        chunk_size = self.size_classes[cls]
        free_list = self._free_chunks[cls]
        if free_list:
            offset = free_list.pop()
        else:
            frontier = self._frontier.get(cls)
            if frontier is None or frontier[0] + chunk_size > frontier[1]:
                self._grow_class(cls)
                frontier = self._frontier[cls]
            offset, end = frontier
            self._frontier[cls] = (offset + chunk_size, end)
        self._chunk_class[offset] = cls
        self.used_bytes += chunk_size
        self.requested_bytes += size
        return offset

    def free(self, offset: int, size: int) -> None:
        """Return the chunk at ``offset`` (allocated for ``size`` bytes)."""
        cls = self._chunk_class.pop(offset, None)
        if cls is None:
            raise ValueError(f"no allocated chunk at offset {offset}")
        self._free_chunks[cls].append(offset)
        self.used_bytes -= self.size_classes[cls]
        self.requested_bytes -= size

    def chunk_size_for(self, size: int) -> int:
        """The chunk size a request of ``size`` bytes would consume."""
        return self.size_classes[self._class_for(size)]

    @property
    def free_bytes(self) -> int:
        """Bytes still available, counting free chunks and uncarved arena."""
        uncarved = self.capacity - self._arena_head
        in_frontiers = sum(end - nxt for nxt, end in self._frontier.values())
        in_free_lists = sum(
            len(chunks) * self.size_classes[cls]
            for cls, chunks in self._free_chunks.items()
        )
        return uncarved + in_frontiers + in_free_lists

    @property
    def utilization(self) -> float:
        """Requested bytes over arena bytes consumed (internal-fragmentation view)."""
        if self._arena_head == 0:
            return 1.0
        return self.requested_bytes / self._arena_head
