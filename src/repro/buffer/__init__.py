"""The unified buffer pool (paper Sec. 5).

One buffer pool per node caches *all* data — user data, job data, shuffle
data, and hash data — in a single arena.  Variable-sized pages are placed by
a real two-level segregated fit (TLSF) allocator by default; a
Memcached-style slab allocator is available as the alternative the paper
mentions, and is also used as the secondary allocator inside hash-service
pages.
"""

from repro.buffer.page import Page
from repro.buffer.pool import BufferPool, BufferPoolFullError
from repro.buffer.slab import SlabAllocator, SlabExhaustedError
from repro.buffer.tlsf import TlsfAllocator

__all__ = [
    "Page",
    "BufferPool",
    "BufferPoolFullError",
    "TlsfAllocator",
    "SlabAllocator",
    "SlabExhaustedError",
]
