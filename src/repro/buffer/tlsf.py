"""A two-level segregated fit (TLSF) allocator.

Pangea's default pool allocator (paper Sec. 5) is TLSF [Masmano et al. 2004]
because it is space-efficient when allocating variable-sized pages from one
shared arena.  This is a faithful offset-space implementation: free blocks
are indexed by a first level (power-of-two size class) and a second level
(linear subdivision of each power of two), lookups use bitmaps so malloc and
free are O(1), and freed blocks coalesce with their physical neighbours.
"""

from __future__ import annotations

import functools

SL_LOG2 = 4
SL_COUNT = 1 << SL_LOG2
ALIGNMENT = 8
MIN_BLOCK_SIZE = 64


class _Block:
    """A contiguous region of the arena, free or allocated."""

    __slots__ = ("offset", "size", "free", "prev_phys", "next_phys")

    def __init__(self, offset: int, size: int) -> None:
        self.offset = offset
        self.size = size
        self.free = True
        self.prev_phys: _Block | None = None
        self.next_phys: _Block | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "free" if self.free else "used"
        return f"_Block(off={self.offset}, size={self.size}, {state})"


def _align_up(size: int) -> int:
    size = max(size, MIN_BLOCK_SIZE)
    return (size + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@functools.lru_cache(maxsize=4096)
def _mapping(size: int) -> tuple[int, int]:
    """Map a block size to its (first-level, second-level) bucket.

    Memoized: real workloads allocate from a handful of page-size classes,
    so the bucket math collapses to a dict hit on the malloc/free hot path.
    """
    fl = size.bit_length() - 1
    if fl <= SL_LOG2:
        return 0, size >> (ALIGNMENT.bit_length() - 1)
    sl = (size >> (fl - SL_LOG2)) & (SL_COUNT - 1)
    return fl, sl


@functools.lru_cache(maxsize=4096)
def _mapping_search(size: int) -> tuple[int, int]:
    """Round the request up so any block in the bucket is large enough."""
    fl = size.bit_length() - 1
    if fl <= SL_LOG2:
        return _mapping(size)
    rounded = size + (1 << (fl - SL_LOG2)) - 1
    return _mapping(rounded)


class TlsfAllocator:
    """Manage an arena of ``capacity`` bytes of offset space."""

    def __init__(self, capacity: int) -> None:
        if capacity < MIN_BLOCK_SIZE:
            raise ValueError(f"arena must be at least {MIN_BLOCK_SIZE} bytes")
        self.capacity = capacity
        self._free_lists: dict[tuple[int, int], list[_Block]] = {}
        self._fl_bitmap = 0
        self._sl_bitmaps: dict[int, int] = {}
        self._by_offset: dict[int, _Block] = {}
        self.used_bytes = 0
        initial = _Block(0, capacity)
        self._by_offset[0] = initial
        self._insert_free(initial)

    # ------------------------------------------------------------------
    # free-list maintenance
    # ------------------------------------------------------------------

    def _insert_free(self, block: _Block) -> None:
        fl, sl = _mapping(block.size)
        self._free_lists.setdefault((fl, sl), []).append(block)
        self._fl_bitmap |= 1 << fl
        self._sl_bitmaps[fl] = self._sl_bitmaps.get(fl, 0) | (1 << sl)
        block.free = True

    def _remove_free(self, block: _Block) -> None:
        fl, sl = _mapping(block.size)
        bucket = self._free_lists[(fl, sl)]
        bucket.remove(block)
        if not bucket:
            del self._free_lists[(fl, sl)]
            self._sl_bitmaps[fl] &= ~(1 << sl)
            if not self._sl_bitmaps[fl]:
                del self._sl_bitmaps[fl]
                self._fl_bitmap &= ~(1 << fl)
        block.free = False

    @staticmethod
    def _lowest_set_at_or_above(bitmap: int, start: int) -> int | None:
        masked = bitmap & ~((1 << start) - 1)
        if not masked:
            return None
        return (masked & -masked).bit_length() - 1

    def _find_suitable(self, size: int) -> _Block | None:
        fl, sl = _mapping_search(size)
        sl_found = None
        fl_found = None
        if self._fl_bitmap & (1 << fl):
            sl_found = self._lowest_set_at_or_above(self._sl_bitmaps.get(fl, 0), sl)
            if sl_found is not None:
                fl_found = fl
        if sl_found is None:
            fl_found = self._lowest_set_at_or_above(self._fl_bitmap, fl + 1)
            if fl_found is None:
                return None
            sl_found = self._lowest_set_at_or_above(self._sl_bitmaps[fl_found], 0)
            if sl_found is None:  # pragma: no cover - bitmap invariant
                return None
        # The good-fit rounding in _mapping_search guarantees every block in
        # a bucket at or above the search bucket is large enough.
        return self._free_lists[(fl_found, sl_found)][0]

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> int | None:
        """Allocate ``size`` bytes; return the offset or ``None`` if full."""
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        size = _align_up(size)
        block = self._find_suitable(size)
        if block is None:
            return None
        self._remove_free(block)
        remainder = block.size - size
        if remainder >= MIN_BLOCK_SIZE:
            tail = _Block(block.offset + size, remainder)
            tail.prev_phys = block
            tail.next_phys = block.next_phys
            if block.next_phys is not None:
                block.next_phys.prev_phys = tail
            block.next_phys = tail
            block.size = size
            self._by_offset[tail.offset] = tail
            self._insert_free(tail)
        self.used_bytes += block.size
        return block.offset

    def free(self, offset: int) -> int:
        """Release the block at ``offset``; return the bytes returned."""
        block = self._by_offset.get(offset)
        if block is None or block.free:
            raise ValueError(f"no allocated block at offset {offset}")
        self.used_bytes -= block.size
        freed = block.size
        # Coalesce with the next physical block.
        nxt = block.next_phys
        if nxt is not None and nxt.free:
            self._remove_free(nxt)
            del self._by_offset[nxt.offset]
            block.size += nxt.size
            block.next_phys = nxt.next_phys
            if nxt.next_phys is not None:
                nxt.next_phys.prev_phys = block
        # Coalesce with the previous physical block.
        prev = block.prev_phys
        if prev is not None and prev.free:
            self._remove_free(prev)
            del self._by_offset[block.offset]
            prev.size += block.size
            prev.next_phys = block.next_phys
            if block.next_phys is not None:
                block.next_phys.prev_phys = prev
            block = prev
        self._insert_free(block)
        return freed

    def allocated_size(self, offset: int) -> int:
        """The rounded-up size actually reserved for the block at ``offset``."""
        block = self._by_offset.get(offset)
        if block is None or block.free:
            raise ValueError(f"no allocated block at offset {offset}")
        return block.size

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def largest_free_block(self) -> int:
        """Size of the largest free block (0 when the arena is full)."""
        best = 0
        for bucket in self._free_lists.values():
            for block in bucket:
                if block.size > best:
                    best = block.size
        return best

    def check_invariants(self) -> None:
        """Verify physical-list and accounting invariants (tests only)."""
        total = 0
        offset = 0
        block = self._by_offset.get(0)
        if block is not None:
            while block.prev_phys is not None:  # pragma: no cover
                block = block.prev_phys
        seen_used = 0
        while block is not None:
            if block.offset != offset:
                raise AssertionError(
                    f"physical chain broken: expected offset {offset}, "
                    f"got {block.offset}"
                )
            if block.free and block.next_phys is not None and block.next_phys.free:
                raise AssertionError("adjacent free blocks were not coalesced")
            total += block.size
            if not block.free:
                seen_used += block.size
            offset += block.size
            block = block.next_phys
        if total != self.capacity:
            raise AssertionError(f"blocks cover {total} bytes of {self.capacity}")
        if seen_used != self.used_bytes:
            raise AssertionError(
                f"used_bytes accounting drifted: {seen_used} != {self.used_bytes}"
            )
