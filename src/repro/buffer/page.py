"""Pages: the unit of buffering, spilling, and persistence."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalShard


class Page:
    """One fixed-size page of a locality set on one node.

    A page's *logical* size is paper-scale (e.g. 64MB or 256MB); its actual
    payload is the scaled-down list of Python records in :attr:`records`.
    Simulated costs are always charged against the logical size.

    A page can live in memory (``offset`` set), on disk (``on_disk``), or
    both — the paper notes a locality-set page need not have a file image.
    """

    __slots__ = (
        "page_id",
        "shard",
        "size",
        "offset",
        "pin_count",
        "dirty",
        "on_disk",
        "sealed",
        "last_access_tick",
        "created_tick",
        "used_bytes",
        "records",
        "num_objects",
    )

    def __init__(self, page_id: int, size: int, shard: "LocalShard | None" = None) -> None:
        if size <= 0:
            raise ValueError(f"page size must be positive, got {size}")
        self.page_id = page_id
        self.shard = shard
        self.size = size
        self.offset: int | None = None
        self.pin_count = 0
        self.dirty = False
        self.on_disk = False
        self.sealed = False
        self.last_access_tick = 0
        self.created_tick = 0
        self.used_bytes = 0
        self.records: list = []
        self.num_objects = 0

    @property
    def in_memory(self) -> bool:
        return self.offset is not None

    @property
    def pinned(self) -> bool:
        return self.pin_count > 0

    @property
    def free_bytes(self) -> int:
        return self.size - self.used_bytes

    def append(self, record: object, nbytes: int) -> None:
        """Write one record into the page (no durability side effects)."""
        if self.sealed:
            raise ValueError(f"page {self.page_id} is sealed")
        if nbytes > self.free_bytes:
            raise ValueError(
                f"record of {nbytes} bytes does not fit in page {self.page_id} "
                f"({self.free_bytes} bytes free)"
            )
        self.records.append(record)
        self.num_objects += 1
        self.used_bytes += nbytes
        self.dirty = True

    def extend(self, records: list, nbytes_each: int) -> None:
        """Bulk-append same-size records (one accounting update).

        Equivalent to ``append`` in a loop — same checks, same final
        state — minus the per-record Python call; the batched shuffle
        write path uses this at small-page granularity.
        """
        total = len(records) * nbytes_each
        if self.sealed:
            raise ValueError(f"page {self.page_id} is sealed")
        if total > self.free_bytes:
            raise ValueError(
                f"{total} bytes do not fit in page {self.page_id} "
                f"({self.free_bytes} bytes free)"
            )
        self.records.extend(records)
        self.num_objects += len(records)
        self.used_bytes += total
        self.dirty = True

    def seal(self) -> None:
        """Mark the page fully written; sealed pages reject further appends."""
        self.sealed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = []
        if self.in_memory:
            where.append(f"mem@{self.offset}")
        if self.on_disk:
            where.append("disk")
        state = "+".join(where) or "nowhere"
        return (
            f"Page(id={self.page_id}, size={self.size}, used={self.used_bytes}, "
            f"pins={self.pin_count}, {state})"
        )
