"""The per-node unified buffer pool."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.buffer.page import Page
from repro.buffer.slab import SlabAllocator, SlabExhaustedError
from repro.buffer.tlsf import TlsfAllocator


class BufferPoolFullError(MemoryError):
    """No space could be found or reclaimed for a page placement."""


@dataclass
class PoolStats:
    """Counters the paging benchmarks report."""

    placements: int = 0
    releases: int = 0
    evictions: int = 0
    pageouts: int = 0
    bytes_paged_out: int = 0
    pageins: int = 0
    bytes_paged_in: int = 0

    def reset(self) -> None:
        self.placements = 0
        self.releases = 0
        self.evictions = 0
        self.pageouts = 0
        self.bytes_paged_out = 0
        self.pageins = 0
        self.bytes_paged_in = 0


class _SlabPoolAdapter:
    """Adapt :class:`SlabAllocator` to the pool-allocator interface.

    Used for the paper's allocator ablation (TLSF vs Memcached slab as the
    pool allocator).  The slab allocator needs the size at free time, so the
    adapter remembers it.
    """

    def __init__(self, capacity: int, max_page_size: int) -> None:
        self._slab = SlabAllocator(
            capacity, slab_size=max_page_size, chunk_min=4096, growth_factor=1.25
        )
        self._sizes: dict[int, int] = {}

    @property
    def capacity(self) -> int:
        return self._slab.capacity

    @property
    def used_bytes(self) -> int:
        return self._slab.used_bytes

    def malloc(self, size: int) -> int | None:
        try:
            offset = self._slab.alloc(size)
        except (SlabExhaustedError, ValueError):
            return None
        self._sizes[offset] = size
        return offset

    def free(self, offset: int) -> int:
        size = self._sizes.pop(offset)
        self._slab.free(offset, size)
        return self._slab.chunk_size_for(size)


class BufferPool:
    """All RAM Pangea manages on one node, shared by every locality set.

    ``evictor`` is a callable ``(needed_bytes) -> bool`` installed by the
    paging system; it must evict at least one page (or return ``False`` when
    nothing is evictable).  Placement retries until the allocator succeeds
    or the evictor gives up.
    """

    def __init__(
        self,
        capacity: int,
        allocator: str = "tlsf",
        max_page_size: int | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.capacity = capacity
        if allocator == "tlsf":
            self._alloc = TlsfAllocator(capacity)
        elif allocator == "slab":
            self._alloc = _SlabPoolAdapter(capacity, max_page_size or capacity // 8)
        else:
            raise ValueError(f"unknown pool allocator {allocator!r} (tlsf|slab)")
        self.allocator_kind = allocator
        self.pages: dict[int, Page] = {}
        self.evictor: Callable[[int], bool] | None = None
        self.stats = PoolStats()

    # ------------------------------------------------------------------
    # placement and release
    # ------------------------------------------------------------------

    def place(self, page: Page) -> None:
        """Give ``page`` a memory location, evicting others if necessary."""
        if page.in_memory:
            raise ValueError(f"page {page.page_id} is already in memory")
        while True:
            offset = self._alloc.malloc(page.size)
            if offset is not None:
                page.offset = offset
                self.pages[page.page_id] = page
                self.stats.placements += 1
                return
            if self.evictor is None or not self.evictor(page.size):
                raise BufferPoolFullError(
                    f"cannot place a {page.size}-byte page: pool has "
                    f"{self.free_bytes} free bytes and nothing evictable"
                )

    def release(self, page: Page) -> None:
        """Drop ``page`` from memory (payload stays with the caller)."""
        if not page.in_memory:
            raise ValueError(f"page {page.page_id} is not in memory")
        if page.pinned:
            raise ValueError(f"page {page.page_id} is pinned and cannot be released")
        self._alloc.free(page.offset)
        page.offset = None
        del self.pages[page.page_id]
        self.stats.releases += 1

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------

    def pin(self, page: Page) -> None:
        """Pin an in-memory page (reference counted)."""
        if not page.in_memory:
            raise ValueError(
                f"page {page.page_id} must be placed in memory before pinning"
            )
        page.pin_count += 1

    def unpin(self, page: Page) -> None:
        if page.pin_count <= 0:
            raise ValueError(f"page {page.page_id} is not pinned")
        page.pin_count -= 1

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._alloc.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._alloc.used_bytes

    def resident_pages(self) -> Iterable[Page]:
        return self.pages.values()

    def __contains__(self, page: Page) -> bool:
        return page.page_id in self.pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self.capacity}, used={self.used_bytes}, "
            f"pages={len(self.pages)})"
        )
