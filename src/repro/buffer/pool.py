"""The per-node unified buffer pool."""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.buffer.page import Page
from repro.buffer.slab import SlabAllocator, SlabExhaustedError
from repro.buffer.tlsf import TlsfAllocator


class BufferPoolFullError(MemoryError):
    """No space could be found or reclaimed for a page placement."""


@dataclass
class PoolStats:
    """Counters the paging benchmarks report."""

    placements: int = 0
    releases: int = 0
    evictions: int = 0
    pageouts: int = 0
    bytes_paged_out: int = 0
    pageins: int = 0
    bytes_paged_in: int = 0
    #: Page-ins whose on-disk image failed checksum verification and was
    #: rebuilt from a surviving replica before the pin completed.
    read_repairs: int = 0

    def reset(self) -> None:
        self.placements = 0
        self.releases = 0
        self.evictions = 0
        self.pageouts = 0
        self.bytes_paged_out = 0
        self.pageins = 0
        self.bytes_paged_in = 0
        self.read_repairs = 0


class _SlabPoolAdapter:
    """Adapt :class:`SlabAllocator` to the pool-allocator interface.

    Used for the paper's allocator ablation (TLSF vs Memcached slab as the
    pool allocator).  The slab allocator needs the size at free time, so the
    adapter remembers it.
    """

    def __init__(self, capacity: int, max_page_size: int) -> None:
        self._slab = SlabAllocator(
            capacity, slab_size=max_page_size, chunk_min=4096, growth_factor=1.25
        )
        self._sizes: dict[int, int] = {}

    @property
    def capacity(self) -> int:
        return self._slab.capacity

    @property
    def used_bytes(self) -> int:
        return self._slab.used_bytes

    def malloc(self, size: int) -> int | None:
        try:
            offset = self._slab.alloc(size)
        except (SlabExhaustedError, ValueError):
            return None
        self._sizes[offset] = size
        return offset

    def free(self, offset: int) -> int:
        size = self._sizes.pop(offset, None)
        if size is None:
            raise ValueError(f"no allocated page at offset {offset}")
        self._slab.free(offset, size)
        return self._slab.chunk_size_for(size)

    def allocated_size(self, offset: int) -> int:
        size = self._sizes.get(offset)
        if size is None:
            raise ValueError(f"no allocated page at offset {offset}")
        return self._slab.chunk_size_for(size)


class BufferPool:
    """All RAM Pangea manages on one node, shared by every locality set.

    ``evictor`` is a callable ``(needed_bytes) -> bool`` installed by the
    paging system; it must evict at least one page (or return ``False`` when
    nothing is evictable).  Placement retries until the allocator succeeds,
    the evictor gives up, an eviction round makes no progress (reports
    success but frees no bytes), or ``max_eviction_rounds`` is exhausted —
    the last two conditions bound the retry loop so a buggy or starved
    evictor surfaces as :class:`BufferPoolFullError` instead of a livelock.

    Thread-safe: :attr:`lock` is the node's storage lock, a reentrant lock
    guarding the allocator, the resident-page table, pin counts, and the
    stats counters.  It is reentrant because eviction re-enters the pool:
    ``place`` → evictor → ``LocalShard.evict_page`` → ``release``.  Lock
    ordering is documented in ``docs/api.md`` ("Concurrency model"): the
    pool lock is acquired before the paging-system lock, never after.
    """

    def __init__(
        self,
        capacity: int,
        allocator: str = "tlsf",
        max_page_size: int | None = None,
        max_eviction_rounds: int = 4096,
    ) -> None:
        if capacity <= 0:
            raise ValueError("buffer pool capacity must be positive")
        if max_eviction_rounds < 1:
            raise ValueError("max_eviction_rounds must be positive")
        self.capacity = capacity
        if allocator == "tlsf":
            self._alloc = TlsfAllocator(capacity)
        elif allocator == "slab":
            self._alloc = _SlabPoolAdapter(capacity, max_page_size or capacity // 8)
        else:
            raise ValueError(f"unknown pool allocator {allocator!r} (tlsf|slab)")
        self.allocator_kind = allocator
        self.max_eviction_rounds = max_eviction_rounds
        self.pages: dict[int, Page] = {}
        self.evictor: Callable[[int], bool] | None = None
        self.stats = PoolStats()
        #: The node's storage lock; shards and the paging system take it
        #: around every page-state transition.
        self.lock = threading.RLock()
        #: Optional :class:`~repro.obs.tracer.NodeTracer`; installed by
        #: :meth:`repro.cluster.node.WorkerNode.attach_tracer`.
        self.tracer = None

    # ------------------------------------------------------------------
    # placement and release
    # ------------------------------------------------------------------

    def place(self, page: Page) -> None:
        """Give ``page`` a memory location, evicting others if necessary."""
        with self.lock:
            if page.in_memory:
                raise ValueError(f"page {page.page_id} is already in memory")
            rounds = 0
            while True:
                offset = self._alloc.malloc(page.size)
                if offset is not None:
                    page.offset = offset
                    self.pages[page.page_id] = page
                    self.stats.placements += 1
                    tracer = self.tracer
                    if tracer is not None:
                        tracer.instant("pool.place", "buffer",
                                       page_id=page.page_id, size=page.size,
                                       eviction_rounds=rounds)
                        tracer.counter("pool.used_bytes", "buffer",
                                       used=self._alloc.used_bytes,
                                       capacity=self.capacity)
                    return
                if self.evictor is None:
                    raise BufferPoolFullError(
                        f"cannot place a {page.size}-byte page: pool has "
                        f"{self.free_bytes} free bytes and no evictor installed"
                    )
                if rounds >= self.max_eviction_rounds:
                    raise BufferPoolFullError(
                        f"cannot place a {page.size}-byte page after "
                        f"{rounds} eviction rounds ({self.free_bytes} free bytes)"
                    )
                used_before = self._alloc.used_bytes
                if not self.evictor(page.size):
                    raise BufferPoolFullError(
                        f"cannot place a {page.size}-byte page: pool has "
                        f"{self.free_bytes} free bytes and nothing evictable"
                    )
                rounds += 1
                if self._alloc.used_bytes >= used_before:
                    raise BufferPoolFullError(
                        f"eviction round {rounds} reported success but freed "
                        f"no bytes; refusing to retry placement of a "
                        f"{page.size}-byte page"
                    )

    def release(self, page: Page) -> None:
        """Drop ``page`` from memory (payload stays with the caller)."""
        with self.lock:
            if not page.in_memory:
                raise ValueError(f"page {page.page_id} is not in memory")
            if page.pinned:
                raise ValueError(
                    f"page {page.page_id} is pinned and cannot be released"
                )
            self._alloc.free(page.offset)
            page.offset = None
            del self.pages[page.page_id]
            self.stats.releases += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.instant("pool.release", "buffer",
                               page_id=page.page_id, size=page.size)

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------

    def pin(self, page: Page) -> None:
        """Pin an in-memory page (reference counted)."""
        with self.lock:
            if not page.in_memory:
                raise ValueError(
                    f"page {page.page_id} must be placed in memory before pinning"
                )
            page.pin_count += 1
            if page.pin_count == 1 and page.shard is not None:
                # Keep the shard's recency index's pinned count exact so
                # evictability stays an O(1) query (see repro.core.recency).
                page.shard.recency.note_pin(page)
            tracer = self.tracer
            if tracer is not None:
                tracer.instant("pool.pin", "buffer", page_id=page.page_id,
                               pin_count=page.pin_count)

    def unpin(self, page: Page) -> None:
        with self.lock:
            if page.pin_count <= 0:
                raise ValueError(f"page {page.page_id} is not pinned")
            page.pin_count -= 1
            if page.pin_count == 0 and page.shard is not None:
                page.shard.recency.note_unpin(page)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._alloc.used_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._alloc.used_bytes

    def resident_pages(self) -> Iterable[Page]:
        with self.lock:
            return list(self.pages.values())

    def check_invariants(self) -> None:
        """Verify residency, overlap, and accounting invariants (tests).

        Asserts that every resident page has an offset, no two resident
        pages overlap in the arena, no page is simultaneously evicted and
        pinned, and the allocator's ``used_bytes`` reconciles exactly with
        the blocks backing the resident pages.
        """
        with self.lock:
            spans: list[tuple[int, int, int]] = []
            accounted = 0
            for page in self.pages.values():
                if not page.in_memory:
                    raise AssertionError(
                        f"page {page.page_id} is in the resident table "
                        f"without a memory offset"
                    )
                allocated = self._alloc.allocated_size(page.offset)
                if allocated < page.size:
                    raise AssertionError(
                        f"page {page.page_id} holds {page.size} bytes in a "
                        f"{allocated}-byte block"
                    )
                accounted += allocated
                spans.append((page.offset, allocated, page.page_id))
            spans.sort()
            for (o1, s1, id1), (o2, _s2, id2) in zip(spans, spans[1:]):
                if o1 + s1 > o2:
                    raise AssertionError(
                        f"pages {id1} and {id2} overlap in the pool "
                        f"([{o1}, {o1 + s1}) vs offset {o2})"
                    )
            if accounted != self._alloc.used_bytes:
                raise AssertionError(
                    f"allocator accounting drifted: resident pages occupy "
                    f"{accounted} bytes but used_bytes is {self._alloc.used_bytes}"
                )

    def __contains__(self, page: Page) -> bool:
        return page.page_id in self.pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool(capacity={self.capacity}, used={self.used_bytes}, "
            f"pages={len(self.pages)})"
        )
