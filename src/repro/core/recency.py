"""Per-shard intrusive recency indexes for sublinear victim selection.

The legacy paging hot path re-derived eviction order from scratch on every
``make_room`` round: ``resident_unpinned_pages()`` walked the whole page
list and the policies sorted (or min/max-scanned) the result by
``last_access_tick`` — O(P log P) per round under paging pressure.

:class:`RecencyIndex` replaces those scans with an ordered structure that
is maintained *incrementally* by the page lifecycle itself:

* :meth:`insert` when a page becomes resident (``new_page`` or a page-in
  reload inside ``pin_page``);
* :meth:`touch` on every access (``LocalShard.touch`` → ``move_to_end``);
* :meth:`remove` when a page leaves memory (``evict_page``/``drop_page``);
* :meth:`note_pin`/:meth:`note_unpin` on pin-count 0↔1 transitions
  (hooked in :meth:`BufferPool.pin <repro.buffer.pool.BufferPool.pin>`).

Because every access draws a fresh value from the node's
:class:`~repro.sim.clock.TickCounter`, ``last_access_tick`` values are
unique per node, so the index order (an :class:`~collections.OrderedDict`,
i.e. a doubly-linked list keyed by page id) is exactly the total order the
legacy sort produced — MRU pops from the tail, LRU from the head, both
O(1) plus a skip over any pinned pages in the way.

All mutations happen under the node's storage lock (the callers already
hold it); reads from the paging policies run inside ``make_room``, which
the buffer pool invokes with the same lock held.
"""

from __future__ import annotations

import typing
from collections import OrderedDict

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.buffer.page import Page


class RecencyIndex:
    """Resident pages of one shard, ordered oldest → newest access."""

    __slots__ = ("_pages", "_pinned")

    def __init__(self) -> None:
        self._pages: "OrderedDict[int, Page]" = OrderedDict()
        #: Number of indexed pages currently pinned (kept by the pool's
        #: pin/unpin transition hooks so evictability is an O(1) check).
        self._pinned = 0

    # ------------------------------------------------------------------
    # incremental maintenance (called by the page lifecycle)
    # ------------------------------------------------------------------

    def insert(self, page: "Page") -> None:
        """Index a page that just became resident (most recent position)."""
        if page.page_id in self._pages:  # pragma: no cover - defensive
            return
        self._pages[page.page_id] = page
        if page.pin_count > 0:
            self._pinned += 1

    def remove(self, page: "Page") -> None:
        """Drop a page that left memory (eviction or page drop)."""
        if self._pages.pop(page.page_id, None) is not None and page.pin_count > 0:
            self._pinned -= 1  # pragma: no cover - evict/drop require unpinned

    def touch(self, page: "Page") -> None:
        """Move an accessed page to the most-recent end (O(1))."""
        if page.page_id in self._pages:
            self._pages.move_to_end(page.page_id)

    def note_pin(self, page: "Page") -> None:
        """Pin-count 0→1 transition of an indexed page."""
        if page.page_id in self._pages:
            self._pinned += 1

    def note_unpin(self, page: "Page") -> None:
        """Pin-count 1→0 transition of an indexed page."""
        if page.page_id in self._pages:
            self._pinned -= 1

    # ------------------------------------------------------------------
    # O(1) queries for the paging policies
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._pages)

    def evictable_count(self) -> int:
        """Resident, unpinned pages — without walking the page list."""
        return len(self._pages) - self._pinned

    def peek_lru(self) -> "Page | None":
        """Least-recently-used unpinned page (skips pinned pages)."""
        for page in self._pages.values():
            if page.pin_count == 0:
                return page
        return None

    def peek_mru(self) -> "Page | None":
        """Most-recently-used unpinned page (skips pinned pages)."""
        for page in reversed(self._pages.values()):
            if page.pin_count == 0:
                return page
        return None

    def iter_evictable(self, newest_first: bool = False):
        """Unpinned pages in recency order (a lazy generator)."""
        pages = reversed(self._pages.values()) if newest_first else self._pages.values()
        for page in pages:
            if page.pin_count == 0:
                yield page

    def top_evictable(self, count: int, newest_first: bool = False) -> "list[Page]":
        """The first ``count`` unpinned pages from either end.

        Equivalent to ``sorted(resident_unpinned, key=tick)[:count]`` (or
        the ``reverse=True`` variant) because access ticks are unique.
        """
        out: "list[Page]" = []
        for page in self.iter_evictable(newest_first):
            out.append(page)
            if len(out) >= count:
                break
        return out

    # ------------------------------------------------------------------
    # verification (tests only)
    # ------------------------------------------------------------------

    def check_consistency(self, shard) -> None:
        """Assert the index matches a fresh scan of the shard's pages."""
        resident = [p for p in shard.pages if p.in_memory]
        indexed = list(self._pages.values())
        if {p.page_id for p in resident} != {p.page_id for p in indexed}:
            raise AssertionError(
                f"recency index of set {shard.dataset.name!r} is out of sync: "
                f"indexed {sorted(p.page_id for p in indexed)} vs resident "
                f"{sorted(p.page_id for p in resident)}"
            )
        ticks = [p.last_access_tick for p in indexed]
        if ticks != sorted(ticks):
            raise AssertionError(
                f"recency index of set {shard.dataset.name!r} is misordered: "
                f"{ticks}"
            )
        pinned = sum(1 for p in indexed if p.pin_count > 0)
        if pinned != self._pinned:
            raise AssertionError(
                f"recency index of set {shard.dataset.name!r} counts "
                f"{self._pinned} pinned pages but {pinned} are pinned"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecencyIndex(pages={len(self._pages)}, pinned={self._pinned})"


__all__ = ["RecencyIndex"]
