"""The paper's primary contribution: locality sets and data-aware paging.

A *locality set* (paper Sec. 3.2, redefined from DBMIN) is a set of
same-sized pages holding one dataset, tagged with attributes that describe
its durability requirement, writing/reading patterns, lifetime, current
operation, and access recency.  The paging system (paper Sec. 6) uses those
attributes to pick eviction victims by expected cost.
"""

from repro.core.attributes import (
    CurrentOperation,
    DurabilityType,
    LocalitySetAttributes,
    Location,
    ReadingPattern,
    WritingPattern,
)
from repro.core.locality_set import LocalitySet, LocalShard
from repro.core.paging import PagingSystem
from repro.core.policies import (
    DataAwarePolicy,
    DbminBlockedError,
    DbminPolicy,
    GlobalLruPolicy,
    GlobalMruPolicy,
    make_policy,
)

__all__ = [
    "DurabilityType",
    "WritingPattern",
    "ReadingPattern",
    "Location",
    "CurrentOperation",
    "LocalitySetAttributes",
    "LocalitySet",
    "LocalShard",
    "PagingSystem",
    "DataAwarePolicy",
    "GlobalLruPolicy",
    "GlobalMruPolicy",
    "DbminPolicy",
    "DbminBlockedError",
    "make_policy",
]
