"""Locality sets and their per-node shards (paper Sec. 3.2).

A :class:`LocalitySet` is the distributed handle an application sees: a set
of same-sized pages holding one dataset, spread across the cluster, tagged
with one shared :class:`~repro.core.attributes.LocalitySetAttributes`.

A :class:`LocalShard` is the node-local portion: the pages resident on one
worker, their buffer-pool placement, and their on-disk images.
"""

from __future__ import annotations

import threading
import typing

from repro.buffer.page import Page
from repro.obs.registry import SetMetrics
from repro.core.recency import RecencyIndex
from repro.core.attributes import (
    CurrentOperation,
    DurabilityType,
    LocalitySetAttributes,
    ReadingPattern,
    WritingPattern,
)
from repro.sim.faults import PageCorruptionError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.node import WorkerNode
    from repro.services.sequential import PageIterator


class EvictResult(typing.NamedTuple):
    """What one eviction actually did."""

    freed: int  #: bytes released from the buffer pool
    flushed: bool  #: True only when the eviction wrote the page image out


class LocalShard:
    """The pages of one locality set on one worker node.

    Page-state transitions (place, pin, unpin, evict, drop) run under the
    node's storage lock (:attr:`BufferPool.lock <repro.buffer.pool.BufferPool.lock>`),
    so concurrent workers of a threaded
    :class:`~repro.compute.workers.WorkerPool` cannot observe a page
    half-placed or race a pin against an eviction.  The lock is reentrant:
    ``pin_page`` → ``pool.place`` → evictor → ``evict_page`` →
    ``pool.release`` all happen on one thread's acquisition.
    """

    def __init__(self, dataset: "LocalitySet", node: "WorkerNode") -> None:
        self.dataset = dataset
        self.node = node
        self.pages: list[Page] = []
        self._by_id: dict[int, Page] = {}
        #: Per-set observability counters (always on; see repro.obs.registry).
        self.metrics = SetMetrics(set_name=dataset.name)
        #: Intrusive recency index over this shard's resident pages,
        #: maintained by the page lifecycle below so the paging policies
        #: never have to re-sort the page list (see repro.core.recency).
        self.recency = RecencyIndex()
        #: Cached data-aware cost terms for the shard's current next
        #: victim: ``(key, (cw, vr, wr))``.  Owned by
        #: :class:`~repro.core.policies.DataAwarePolicy`; the key encodes
        #: everything the terms depend on (victim identity, dirty/on-disk
        #: bits, durability, liveness, reading pattern) so a stale cache
        #: entry is impossible by construction.
        self.cost_terms: "tuple | None" = None

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def attributes(self) -> LocalitySetAttributes:
        return self.dataset.attributes

    @property
    def page_size(self) -> int:
        return self.dataset.page_size

    @property
    def file(self):
        return self.node.fs.get_file(self.dataset.name)

    @property
    def pool(self):
        return self.node.pool

    @property
    def paging(self):
        return self.node.paging

    # ------------------------------------------------------------------
    # page lifecycle
    # ------------------------------------------------------------------

    def new_page(self, pin: bool = True) -> Page:
        """Allocate and place a fresh page of the set's page size."""
        with self.pool.lock:
            page = Page(self.node.next_page_id(), self.page_size, shard=self)
            page.created_tick = self.paging.tick()
            page.last_access_tick = page.created_tick
            self.paging.note_access(page)
            self.pool.place(page)
            self.recency.insert(page)
            if pin:
                self.pool.pin(page)
            self.pages.append(page)
            self._by_id[page.page_id] = page
            self.attributes.access_recency = page.last_access_tick
            self.metrics.created_pages += 1
            tracer = self.node.tracer
            if tracer is not None:
                tracer.instant("shard.new_page", "shard",
                               set=self.dataset.name, page_id=page.page_id)
            return page

    def seal_page(self, page: Page) -> None:
        """Finish writing a page; write-through sets persist it immediately."""
        with self.pool.lock:
            page.seal()
            tracer = self.node.tracer
            if self.attributes.durability is DurabilityType.WRITE_THROUGH:
                start = self.node.clock.now
                self.file.write_page(page.page_id, page.records, page.size)
                page.on_disk = True
                page.dirty = False
                self.paging.note_page_image(page)
                if tracer is not None:
                    tracer.span("shard.seal", "shard", start,
                                self.node.clock.now - start,
                                set=self.dataset.name, page_id=page.page_id,
                                persisted=True)
            elif tracer is not None:
                tracer.instant("shard.seal", "shard", set=self.dataset.name,
                               page_id=page.page_id, persisted=False)

    def touch(self, page: Page) -> None:
        """Record a page access for the recency model."""
        page.last_access_tick = self.paging.tick()
        self.attributes.access_recency = page.last_access_tick
        self.recency.touch(page)
        self.paging.note_access(page)

    def pin_page(self, page: Page) -> Page:
        """Pin a page, reloading it from disk if it was evicted."""
        with self.pool.lock:
            self.metrics.pins += 1
            if not page.in_memory:
                if not page.on_disk:
                    raise ValueError(
                        f"page {page.page_id} of set {self.dataset.name!r} is "
                        f"neither in memory nor on disk"
                    )
                start = self.node.clock.now
                try:
                    records, _cost = self.file.read_page(page.page_id)
                except PageCorruptionError:
                    records = self._read_repair(page)
                self.pool.place(page)
                self.recency.insert(page)
                page.records = records
                page.dirty = False
                self.pool.stats.pageins += 1
                self.pool.stats.bytes_paged_in += page.size
                self.metrics.misses += 1
                self.metrics.bytes_paged_in += page.size
                # Re-reading spilled random-access data pays a reconstruction
                # penalty (the paper's wr > 1): rebuild costs CPU time.
                if self.attributes.reading_pattern is ReadingPattern.RANDOM_READ:
                    extra = self.attributes.random_reread_penalty - 1.0
                    if extra > 0:
                        self.node.cpu.compute(
                            extra * page.size / self.node.disks.disks[0].read_bandwidth
                        )
                tracer = self.node.tracer
                if tracer is not None:
                    tracer.span("shard.pagein", "paging", start,
                                self.node.clock.now - start,
                                set=self.dataset.name, page_id=page.page_id,
                                nbytes=page.size)
            self.pool.pin(page)
            self.touch(page)
            return page

    def unpin_page(self, page: Page) -> None:
        self.pool.unpin(page)

    def _read_repair(self, page: Page) -> list:
        """Rebuild a corrupted page image from surviving replica copies.

        The page's object ids (recorded when its image was persisted) are
        looked up in every other member of the replication group, then in
        the group's safety sets.  A full reconstruction rewrites the local
        image with a fresh checksum; a partial one re-raises
        :class:`PageCorruptionError` — at that point data is genuinely lost.
        """
        dataset = self.dataset
        manager = getattr(dataset.cluster, "manager", None)
        group = None
        if manager is not None and dataset.replica_group_id is not None:
            group = manager.replica_group(dataset.replica_group_id)
        ids = dataset.page_image_ids(self.node.node_id, page.page_id)
        if group is None or group.object_id_fn is None or ids is None:
            raise PageCorruptionError(
                f"page {page.page_id} of set {dataset.name!r} on node "
                f"{self.node.node_id} is corrupt and has no replica group "
                f"(or no page index) to repair from"
            )
        object_id_fn = group.object_id_fn
        wanted = set(ids)
        found: dict = {}
        sources = [member for member in group.members if member is not dataset]
        if group.colliding_set is not None:
            sources.append(group.colliding_set)
        sources.extend(group.extra_safety_sets)
        for source in sources:
            if not wanted:
                break
            for node_id in sorted(source.shards):
                if not wanted:
                    break
                shard = source.shards[node_id]
                if shard.node.failed:
                    continue
                for source_page in shard.pages:
                    if not wanted:
                        break
                    candidates = source_page.records
                    if not candidates and source_page.on_disk:
                        try:
                            candidates, _cost = shard.file.read_page(
                                source_page.page_id
                            )
                        except PageCorruptionError:
                            continue  # this copy is damaged too; keep looking
                    if not candidates:
                        continue
                    shard.node.cpu.per_object(len(candidates))
                    matched = 0
                    for record in candidates:
                        object_id = object_id_fn(record)
                        if object_id in wanted:
                            found[object_id] = record
                            wanted.discard(object_id)
                            matched += 1
                    if matched and shard.node is not self.node:
                        shard.node.network.transfer(
                            matched * dataset.object_bytes,
                            peer=self.node.network,
                        )
        if wanted:
            raise PageCorruptionError(
                f"read-repair of page {page.page_id} of set {dataset.name!r} "
                f"on node {self.node.node_id} failed: {len(wanted)} object(s) "
                f"unrecoverable from {len(sources)} surviving source(s)"
            )
        repaired = [found[object_id] for object_id in ids]
        self.file.write_page(page.page_id, repaired, page.size)
        self.node.robustness.read_repairs += 1
        self.pool.stats.read_repairs += 1
        self.metrics.read_repairs += 1
        tracer = self.node.tracer
        if tracer is not None:
            tracer.instant("shard.read_repair", "recovery",
                           set=dataset.name, page_id=page.page_id)
        return repaired

    def evict_page(self, page: Page) -> EvictResult:
        """Evict one unpinned page; reports the bytes freed and whether the
        page image was actually written out.

        Dirty pages of live write-back sets are flushed to the set's file
        first (the paper's ``cw`` term becomes real I/O here); pages of
        dead sets or already-persisted pages are simply dropped.  The
        ``flushed`` flag in the result is the ground truth the eviction
        trace records — a dirty page whose image was already persisted is
        *not* reported as flushed.
        """
        with self.pool.lock:
            if page.pinned:
                raise ValueError(f"cannot evict pinned page {page.page_id}")
            if not page.in_memory:
                raise ValueError(f"page {page.page_id} is not in memory")
            start = self.node.clock.now
            must_flush = (
                page.dirty
                and self.attributes.alive
                and not page.on_disk
            )
            if must_flush:
                self.file.write_page(page.page_id, page.records, page.size)
                page.on_disk = True
                page.dirty = False
                self.pool.stats.pageouts += 1
                self.pool.stats.bytes_paged_out += page.size
                self.metrics.flushed_pages += 1
                self.metrics.flushed_bytes += page.size
                self.paging.note_page_image(page)
            freed = page.size
            self.pool.release(page)
            self.recency.remove(page)
            page.records = []
            self.pool.stats.evictions += 1
            self.metrics.evictions += 1
            tracer = self.node.tracer
            if tracer is not None:
                tracer.span("shard.evict", "paging", start,
                            self.node.clock.now - start,
                            set=self.dataset.name, page_id=page.page_id,
                            flushed=must_flush, nbytes=freed)
            return EvictResult(freed=freed, flushed=must_flush)

    def evict_pages(self, pages: "list[Page]") -> "list[EvictResult]":
        """Evict several pages of this shard in one round, coalescing the
        write-back of every dirty page into a single sequential flush.

        The legacy path flushed victims one :meth:`SetFile.write_page` at a
        time — N seeks for an N-page batch even though the batch is one
        contiguous spill of one locality set.  Here all pages that need
        flushing go through :meth:`SetFile.write_many
        <repro.fs.page_file.SetFile.write_many>`, which charges one striped
        :class:`~repro.sim.devices.DiskArray` transfer (one seek) for the
        whole image group.  Per-page state transitions, metrics, and the
        returned :class:`EvictResult` ground truth are identical to calling
        :meth:`evict_page` per page; only the simulated seek count (and the
        tracer's span shape) changes.
        """
        if len(pages) == 1:
            return [self.evict_page(pages[0])]
        with self.pool.lock:
            for page in pages:
                if page.pinned:
                    raise ValueError(f"cannot evict pinned page {page.page_id}")
                if not page.in_memory:
                    raise ValueError(f"page {page.page_id} is not in memory")
            alive = self.attributes.alive
            flush = [p for p in pages if p.dirty and alive and not p.on_disk]
            start = self.node.clock.now
            if len(flush) > 1:
                self.file.write_many(
                    [(p.page_id, p.records, p.size) for p in flush]
                )
            elif flush:
                self.file.write_page(flush[0].page_id, flush[0].records, flush[0].size)
            flushed_ids = set()
            for page in flush:
                page.on_disk = True
                page.dirty = False
                self.pool.stats.pageouts += 1
                self.pool.stats.bytes_paged_out += page.size
                self.metrics.flushed_pages += 1
                self.metrics.flushed_bytes += page.size
                self.paging.note_page_image(page)
                flushed_ids.add(page.page_id)
            flush_seconds = self.node.clock.now - start
            tracer = self.node.tracer
            if tracer is not None and flush:
                tracer.span("shard.flush_batch", "paging", start, flush_seconds,
                            set=self.dataset.name, pages=len(flush),
                            nbytes=sum(p.size for p in flush))
            results: "list[EvictResult]" = []
            for page in pages:
                must_flush = page.page_id in flushed_ids
                freed = page.size
                self.pool.release(page)
                self.recency.remove(page)
                page.records = []
                self.pool.stats.evictions += 1
                self.metrics.evictions += 1
                if tracer is not None:
                    tracer.instant("shard.evict", "paging",
                                   set=self.dataset.name, page_id=page.page_id,
                                   flushed=must_flush, nbytes=freed)
                results.append(EvictResult(freed=freed, flushed=must_flush))
            return results

    def drop_page(self, page: Page) -> None:
        """Remove a page from the shard entirely (set deletion/truncation)."""
        with self.pool.lock:
            if page.in_memory:
                if page.pinned:
                    raise ValueError(f"cannot drop pinned page {page.page_id}")
                self.pool.release(page)
                self.recency.remove(page)
            self.file.drop_page(page.page_id)
            self.pages.remove(page)
            del self._by_id[page.page_id]

    def clear(self) -> None:
        """Drop every page.  Data organized in large blocks deallocates in
        one shot — the cheap bulk-delete the paper measures in Fig. 7."""
        for page in list(self.pages):
            self.drop_page(page)

    # ------------------------------------------------------------------
    # views used by the paging policies
    # ------------------------------------------------------------------

    def resident_unpinned_pages(self) -> list[Page]:
        with self.pool.lock:
            return [p for p in self.pages if p.in_memory and not p.pinned]

    def resident_unpinned_count(self) -> int:
        """O(1) evictable-page count from the recency index."""
        return self.recency.evictable_count()

    def resident_pages(self) -> list[Page]:
        with self.pool.lock:
            return [p for p in self.pages if p.in_memory]

    @property
    def num_objects(self) -> int:
        return sum(p.num_objects for p in self.pages)

    @property
    def logical_bytes(self) -> int:
        return sum(p.used_bytes for p in self.pages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalShard(set={self.dataset.name!r}, node={self.node.node_id}, "
            f"pages={len(self.pages)})"
        )


class LocalitySet:
    """The distributed handle for one dataset stored in Pangea."""

    def __init__(
        self,
        set_id: int,
        name: str,
        cluster: "object",
        page_size: int,
        attributes: LocalitySetAttributes,
        object_bytes: int = 100,
    ) -> None:
        self.set_id = set_id
        self.name = name
        self.cluster = cluster
        self.page_size = page_size
        self.attributes = attributes
        #: Default logical size of one record; writers may override per call.
        self.object_bytes = object_bytes
        #: Live service attachments, used to infer CurrentOperation.
        self.active_readers = 0
        self.active_writers = 0
        self.shards: dict[int, LocalShard] = {}
        # Populated by the placement layer when this set is a registered
        # replica produced by a partition computation.
        self.partition_scheme: "object | None" = None
        self.partitioner: "object | None" = None
        self.replica_group_id: int | None = None
        #: (node_id, page_id) -> object ids backing that page's disk image;
        #: maintained once the set joins a replication group, consumed by
        #: the buffer layer's read-repair path.
        self._page_ids: dict[tuple[int, int], list] = {}
        self._dispatch_cursor = 0
        #: Guards the dispatch cursor and the reader/writer attachment
        #: counters against concurrent service attach/detach.
        self._service_lock = threading.Lock()

    # ------------------------------------------------------------------
    # shard management
    # ------------------------------------------------------------------

    def add_shard(self, node: "WorkerNode") -> LocalShard:
        shard = LocalShard(self, node)
        self.shards[node.node_id] = shard
        return shard

    def shard_on(self, node_id: int) -> LocalShard:
        try:
            return self.shards[node_id]
        except KeyError:
            raise KeyError(
                f"set {self.name!r} has no shard on node {node_id}"
            ) from None

    def next_dispatch_shard(self) -> LocalShard:
        """Round-robin dispatch target for randomly dispatched sets."""
        node_ids = sorted(self.shards)
        with self._service_lock:
            node_id = node_ids[self._dispatch_cursor % len(node_ids)]
            self._dispatch_cursor += 1
        return self.shards[node_id]

    # ------------------------------------------------------------------
    # service entry points (paper Sec. 3.2 code examples)
    # ------------------------------------------------------------------

    def add_object(self, record: object, nbytes: int | None = None) -> None:
        """Sequential-write a single object (dispatched round-robin)."""
        from repro.services.sequential import SequentialWriter

        shard = self.next_dispatch_shard()
        with SequentialWriter(shard) as writer:
            writer.add_object(record, nbytes)

    def add_data(self, records: list, nbytes_each: int | None = None) -> None:
        """Sequential-write a batch, spread round-robin across nodes."""
        from repro.services.sequential import SequentialWriter

        if not records:
            return
        node_ids = sorted(self.shards)
        num = len(node_ids)
        for index, node_id in enumerate(node_ids):
            chunk = records[index::num]
            if not chunk:
                continue
            with SequentialWriter(self.shards[node_id]) as writer:
                writer.add_data(chunk, nbytes_each)

    def get_page_iterators(self, num_threads: int = 1) -> "list[PageIterator]":
        """Concurrent page iterators covering every shard (paper Sec. 8)."""
        from repro.services.sequential import make_page_iterators

        return make_page_iterators(self, num_threads)

    def scan_records(self, workers: int = 1):
        """Convenience full scan yielding every record in the set."""
        for iterator in self.get_page_iterators(workers):
            for page in iterator:
                yield from page.records

    # ------------------------------------------------------------------
    # page-image index (read-repair support)
    # ------------------------------------------------------------------

    def note_page_image(self, shard: LocalShard, page: Page) -> None:
        """Index the object ids of a freshly persisted page image."""
        if self.replica_group_id is None:
            return
        manager = getattr(self.cluster, "manager", None)
        if manager is None:
            return
        group = manager.replica_group(self.replica_group_id)
        if group.object_id_fn is None:
            return
        self._page_ids[(shard.node.node_id, page.page_id)] = [
            group.object_id_fn(record) for record in page.records
        ]

    def remember_page_ids(self, node_id: int, page_id: int, ids: list) -> None:
        """Bulk-index a page's object ids (used at replica registration)."""
        self._page_ids[(node_id, page_id)] = list(ids)

    def page_image_ids(self, node_id: int, page_id: int) -> "list | None":
        return self._page_ids.get((node_id, page_id))

    def end_lifetime(self) -> None:
        self.attributes.end_lifetime()

    def note_operation_done(self) -> None:
        """Reset CurrentOperation after a job stage finishes with the set."""
        self.attributes.current_operation = CurrentOperation.NONE

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def num_objects(self) -> int:
        return sum(s.num_objects for s in self.shards.values())

    @property
    def logical_bytes(self) -> int:
        return sum(s.logical_bytes for s in self.shards.values())

    @property
    def num_pages(self) -> int:
        return sum(len(s.pages) for s in self.shards.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalitySet({self.name!r}, pages={self.num_pages}, "
            f"objects={self.num_objects})"
        )


__all__ = ["EvictResult", "LocalitySet", "LocalShard", "WritingPattern"]
