"""Paging policies: the paper's data-aware policy and its baselines.

The data-aware policy (paper Sec. 6) picks the victim *locality set* whose
next page-to-be-evicted has the lowest expected eviction cost
``cw + preuse * cr`` and evicts one page (sets under write) or a 10% batch
(read-only sets) using the set's own MRU/LRU strategy.

The baselines reproduce the comparison points in Figs. 3, 9 and 10:
global LRU, global MRU, and three DBMIN variants (desired size fixed at 1
page, fixed at 1000 pages, and adaptively estimated), plus the "tuned"
DBMIN whose desired sizes are capped at memory so it does not block.

Victim selection has two interchangeable implementations:

* the **legacy scan** (``next_victim``/``victim_batch`` and the
  ``use_index=False`` policy paths) re-derives eviction order from a full
  walk-and-sort of every shard's page list on every round — O(P log P)
  under paging pressure.  It is kept as the reference oracle: the golden
  eviction-trace tests assert the indexed path reproduces its decisions
  bit-for-bit, and the ``benchmarks/perf`` harness times one against the
  other.
* the **victim-index path** (``use_index=True``, the default) reads the
  per-shard :class:`~repro.core.recency.RecencyIndex` maintained
  incrementally by the page lifecycle, so MRU/LRU victims pop in O(1) and
  the data-aware policy evaluates one cached cost estimate per candidate
  *set* instead of sorting candidate *pages* — amortized O(log n) per
  round (O(S) candidate sets, O(k log S) for global k-page batches).

Both paths produce identical victim sequences because access ticks are
unique per node: the index order is the sort order.
"""

from __future__ import annotations

import heapq
import itertools
import math
import typing
from dataclasses import dataclass

from repro.buffer.page import Page
from repro.core.attributes import (
    CurrentOperation,
    DurabilityType,
    ReadingPattern,
    WritingPattern,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalShard

#: Fraction of a read-only set's resident pages evicted per batch.
READ_BATCH_FRACTION = 0.10


class DbminBlockedError(MemoryError):
    """DBMIN blocks new requests when total desired size exceeds memory.

    The paper shows DBMIN-adaptive and DBMIN-1000 *failing* on the larger
    k-means inputs for exactly this reason (Fig. 3's gaps).
    """


def set_strategy(shard: "LocalShard") -> str:
    """The per-set strategy Pangea selects from the access pattern.

    MRU for ``sequential-write``/``concurrent-write``/``sequential-read``,
    LRU for ``random-mutable-write``/``random-read``.
    """
    attrs = shard.attributes
    reading = attrs.reading_pattern
    writing = attrs.writing_pattern
    if attrs.current_operation is CurrentOperation.READ and reading is not None:
        return "lru" if reading is ReadingPattern.RANDOM_READ else "mru"
    if writing is WritingPattern.RANDOM_MUTABLE_WRITE:
        return "lru"
    if writing in (WritingPattern.SEQUENTIAL_WRITE, WritingPattern.CONCURRENT_WRITE):
        return "mru"
    if reading is ReadingPattern.RANDOM_READ:
        return "lru"
    return "mru"


def next_victim(shard: "LocalShard") -> Page | None:
    """The page the set's own strategy would evict next (legacy scan).

    This is the reference implementation the indexed path is tested
    against: a full walk of the page list with a max/min scan.
    """
    candidates = shard.resident_unpinned_pages()
    if not candidates:
        return None
    if set_strategy(shard) == "mru":
        return max(candidates, key=lambda p: p.last_access_tick)
    return min(candidates, key=lambda p: p.last_access_tick)


def next_victim_indexed(shard: "LocalShard") -> Page | None:
    """O(1) equivalent of :func:`next_victim` via the recency index."""
    recency = shard.recency
    if set_strategy(shard) == "mru":
        return recency.peek_mru()
    return recency.peek_lru()


def victim_batch(shard: "LocalShard") -> list[Page]:
    """The pages to evict once a set is chosen as the victim.

    One page while the set is being written (evicting fresh output is
    expensive); a 10% recency-ordered batch for read-only sets; everything
    for sets whose lifetime has ended (dead data needs no flush and will
    never be re-read).

    Legacy scan-and-sort implementation, kept as the oracle for the
    indexed equivalent below.
    """
    candidates = shard.resident_unpinned_pages()
    if not candidates:
        return []
    if shard.attributes.lifetime_ended:
        return candidates
    op = shard.attributes.current_operation
    if op in (CurrentOperation.WRITE, CurrentOperation.READ_AND_WRITE):
        victim = next_victim(shard)
        return [victim] if victim is not None else []
    count = max(1, int(len(candidates) * READ_BATCH_FRACTION))
    reverse = set_strategy(shard) == "mru"
    ordered = sorted(candidates, key=lambda p: p.last_access_tick, reverse=reverse)
    return ordered[:count]


def victim_batch_indexed(shard: "LocalShard") -> list[Page]:
    """Sort-free equivalent of :func:`victim_batch`.

    Write batches peek one victim in O(1); read batches take the first
    10% of the recency index from the strategy's end (O(k)).  Dead sets
    fall back to the page-list order the legacy path returns (the whole
    shard is evicted anyway, so the walk is proportional to the work).
    """
    recency = shard.recency
    if shard.attributes.lifetime_ended:
        return shard.resident_unpinned_pages()
    evictable = recency.evictable_count()
    if evictable <= 0:
        return []
    op = shard.attributes.current_operation
    if op in (CurrentOperation.WRITE, CurrentOperation.READ_AND_WRITE):
        victim = next_victim_indexed(shard)
        return [victim] if victim is not None else []
    count = max(1, int(evictable * READ_BATCH_FRACTION))
    return recency.top_evictable(count, newest_first=set_strategy(shard) == "mru")


@dataclass(frozen=True)
class CostBreakdown:
    """The inputs behind one ``cw + preuse * cr`` estimate.

    Recorded by the paging system for every data-aware victim choice, so
    traces and the per-set metrics registry can show *why* a set was
    evicted, not just that it was.
    """

    cw: float  #: expected write-out cost (0 when no flush is needed)
    vr: float  #: striped re-read cost of the page
    wr: float  #: random-reread penalty multiplier (1.0 for sequential)
    preuse: float  #: probability the page is re-used within the horizon
    age: int  #: ticks since the page's last access

    @property
    def total(self) -> float:
        return self.cw + self.preuse * self.vr * self.wr


def _preuse(age: int, horizon: float) -> float:
    """Re-use probability of a page last accessed ``age`` ticks ago."""
    if age <= 0:
        return 1.0
    lam = 1.0 / age
    return 1.0 - math.exp(-lam * horizon)


def _cost_terms(shard: "LocalShard", page: Page) -> "tuple[float, float, float]":
    """The tick-independent cost terms ``(cw, vr, wr)`` for one victim.

    ``vw``/``vr`` price the page against the disk array's *actual* striped
    transfer cost (:meth:`DiskArray.estimate_write_seconds
    <repro.sim.devices.DiskArray.estimate_write_seconds>`), so a
    heterogeneous array is bounded by its slowest disk's share exactly as
    :meth:`DiskArray.read <repro.sim.devices.DiskArray.read>` charges it —
    not by naively dividing disk 0's bandwidth across the array.
    """
    disks = shard.node.disks
    vw = disks.estimate_write_seconds(page.size)
    vr = disks.estimate_read_seconds(page.size)
    needs_flush = (
        shard.attributes.durability is DurabilityType.WRITE_BACK
        and page.dirty
        and not page.on_disk
        and shard.attributes.alive
    )
    cw = vw if needs_flush else 0.0
    if shard.attributes.reading_pattern is ReadingPattern.RANDOM_READ:
        wr = shard.attributes.random_reread_penalty
    else:
        wr = 1.0
    return cw, vr, wr


def _cost_cache_key(shard: "LocalShard", page: Page) -> tuple:
    """Everything ``(cw, vr, wr)`` depends on, as a comparable key.

    Used by :class:`DataAwarePolicy` to validate cached terms: a change to
    the victim identity, its dirty/on-disk bits, the set's durability,
    liveness, or reading pattern produces a different key, so stale terms
    are structurally impossible (the paging tick is deliberately absent —
    only the ``preuse`` factor depends on it, and that is recomputed every
    round).
    """
    attrs = shard.attributes
    return (
        page.page_id,
        page.size,
        page.dirty,
        page.on_disk,
        attrs.durability,
        attrs.lifetime_ended,
        attrs.reading_pattern,
        attrs.random_reread_penalty,
    )


def eviction_cost_breakdown(
    shard: "LocalShard", page: Page, now_tick: int, horizon: float = 1.0
) -> CostBreakdown:
    """The full cost-model evaluation for evicting ``page``."""
    cw, vr, wr = _cost_terms(shard, page)
    age = now_tick - page.last_access_tick
    return CostBreakdown(
        cw=cw, vr=vr, wr=wr, preuse=_preuse(age, horizon), age=max(0, age)
    )


def eviction_cost(shard: "LocalShard", page: Page, now_tick: int, horizon: float = 1.0) -> float:
    """Expected cost of evicting ``page``: ``cw + preuse * cr`` (paper Sec. 6)."""
    return eviction_cost_breakdown(shard, page, now_tick, horizon).total


class PagingPolicy:
    """Interface: pick pages to evict when the pool needs room."""

    name = "abstract"

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class DataAwarePolicy(PagingPolicy):
    """The paper's policy: dynamic priorities over locality sets.

    With ``use_index=True`` (the default) victim selection reads the
    per-shard recency indexes and keeps a lazily-rebuilt min-heap of
    per-set cost estimates:

    * the tick-independent terms ``(cw, vr, wr)`` of each candidate set's
      next victim are cached on ``shard.cost_terms`` keyed by
      :func:`_cost_cache_key`, so unchanged sets cost a tuple comparison
      instead of two disk-model evaluations per round;
    * the heap of ``(total, candidate_index)`` entries is rebuilt only
      when the paging tick advances or the candidate-set signature
      changes.  Successive rounds at the *same* tick (the buffer pool's
      placement retry loop) refresh only the previously-chosen set's
      entry via lazy deletion — every other set's estimate is provably
      unchanged because nothing else was touched, evicted, or re-pinned
      between rounds (the pool lock is held throughout).

    Tie-breaking matches the legacy scan exactly: the heap orders by
    ``(total, candidate_index)``, which is the same "first strict
    minimum in registration order" the linear scan produced.
    """

    name = "data-aware"

    def __init__(self, horizon: float = 1.0, use_index: bool = True) -> None:
        self.horizon = horizon
        self.use_index = use_index
        #: The cost-model evaluation behind the most recent victim choice:
        #: ``(set_name, tick, CostBreakdown)``.  Read by the paging system
        #: (under its lock) to feed traces and the per-set registry.
        self.last_decision: "tuple[str, int, CostBreakdown] | None" = None
        # Lazy-heap state (indexed path only).
        self._heap: "list[tuple[float, int]]" = []
        self._heap_tick = -1
        self._heap_sig: tuple = ()
        self._totals: "dict[int, float]" = {}
        self._meta: "dict[int, tuple[LocalShard, CostBreakdown]]" = {}
        self._last_idx: "int | None" = None

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        if not self.use_index:
            return self._select_victims_scan(shards)
        return self._select_victims_indexed(shards)

    # -- legacy scan (reference oracle) --------------------------------

    def _select_victims_scan(self, shards: "list[LocalShard]") -> list[Page]:
        evictable = [s for s in shards if s.resident_unpinned_pages()]
        if not evictable:
            return []
        dead = [s for s in evictable if s.attributes.lifetime_ended]
        candidates = dead if dead else evictable
        now = candidates[0].paging.current_tick
        best_shard = None
        best: "CostBreakdown | None" = None
        best_cost = math.inf
        for shard in candidates:
            victim = next_victim(shard)
            if victim is None:
                continue
            breakdown = eviction_cost_breakdown(shard, victim, now, self.horizon)
            if breakdown.total < best_cost:
                best_cost = breakdown.total
                best_shard = shard
                best = breakdown
        if best_shard is None:
            return []
        self.last_decision = (best_shard.dataset.name, now, best)
        return victim_batch(best_shard)

    # -- victim-index path ---------------------------------------------

    def _select_victims_indexed(self, shards: "list[LocalShard]") -> list[Page]:
        candidates = [s for s in shards if s.recency.evictable_count() > 0]
        if not candidates:
            return []
        dead = [s for s in candidates if s.attributes.lifetime_ended]
        if dead:
            candidates = dead
        paging = candidates[0].paging
        now = paging.current_tick
        sig = tuple(map(id, candidates))
        if now != self._heap_tick or sig != self._heap_sig:
            self._rebuild_heap(candidates, now, paging)
        elif self._last_idx is not None:
            # Same tick, same candidates: only the set chosen last round
            # changed (its victims were evicted / flushed).  Re-score it
            # and lazily invalidate its stale heap entry.
            idx = self._last_idx
            self._totals.pop(idx, None)
            self._meta.pop(idx, None)
            self._score(candidates[idx], idx, now, paging, push=True)
        heap = self._heap
        totals = self._totals
        while heap and totals.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)  # lazily-deleted (refreshed) entry
        if not heap:  # pragma: no cover - candidates guarantee an entry
            return []
        idx = heap[0][1]
        shard, breakdown = self._meta[idx]
        self._last_idx = idx
        self.last_decision = (shard.dataset.name, now, breakdown)
        return victim_batch_indexed(shard)

    def _rebuild_heap(
        self, candidates: "list[LocalShard]", now: int, paging
    ) -> None:
        self._heap = []
        self._totals = {}
        self._meta = {}
        self._heap_tick = now
        self._heap_sig = tuple(map(id, candidates))
        self._last_idx = None
        for idx, shard in enumerate(candidates):
            self._score(shard, idx, now, paging, push=False)
        heapq.heapify(self._heap)
        paging.stats.index_rebuilds += 1

    def _score(
        self, shard: "LocalShard", idx: int, now: int, paging, push: bool
    ) -> None:
        """Estimate one candidate set's eviction cost into the heap."""
        victim = next_victim_indexed(shard)
        if victim is None:  # pragma: no cover - evictable_count() > 0
            return
        key = _cost_cache_key(shard, victim)
        cached = shard.cost_terms
        if cached is not None and cached[0] == key:
            cw, vr, wr = cached[1]
            shard.metrics.cost_cache_hits += 1
            paging.stats.cost_cache_hits += 1
        else:
            cw, vr, wr = _cost_terms(shard, victim)
            shard.cost_terms = (key, (cw, vr, wr))
            shard.metrics.cost_cache_misses += 1
            paging.stats.cost_cache_misses += 1
        age = now - victim.last_access_tick
        breakdown = CostBreakdown(
            cw=cw, vr=vr, wr=wr, preuse=_preuse(age, self.horizon), age=max(0, age)
        )
        total = breakdown.total
        self._totals[idx] = total
        self._meta[idx] = (shard, breakdown)
        if push:
            heapq.heappush(self._heap, (total, idx))
        else:
            self._heap.append((total, idx))


class GlobalLruPolicy(PagingPolicy):
    """Least-recently-used over all unpinned pages, 10% batches.

    The indexed path k-way-merges the per-shard recency indexes (each
    already sorted by access tick) instead of gathering and sorting the
    whole resident set — O(k log S) for a k-page batch over S shards.
    Unique ticks make the merge order identical to the legacy sort.
    """

    name = "lru"

    def __init__(self, use_index: bool = True) -> None:
        self.use_index = use_index

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        if not self.use_index:
            pages = [p for s in shards for p in s.resident_unpinned_pages()]
            if not pages:
                return []
            pages.sort(key=lambda p: p.last_access_tick)
            count = max(1, int(len(pages) * READ_BATCH_FRACTION))
            return pages[:count]
        total = sum(s.recency.evictable_count() for s in shards)
        if total <= 0:
            return []
        count = max(1, int(total * READ_BATCH_FRACTION))
        merged = heapq.merge(
            *(s.recency.iter_evictable() for s in shards),
            key=lambda p: p.last_access_tick,
        )
        return list(itertools.islice(merged, count))


class GlobalMruPolicy(PagingPolicy):
    """Most-recently-used over all unpinned pages, 10% batches.

    Indexed path: same k-way merge as :class:`GlobalLruPolicy`, walking
    each recency index newest-first with a descending merge.
    """

    name = "mru"

    def __init__(self, use_index: bool = True) -> None:
        self.use_index = use_index

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        if not self.use_index:
            pages = [p for s in shards for p in s.resident_unpinned_pages()]
            if not pages:
                return []
            pages.sort(key=lambda p: p.last_access_tick, reverse=True)
            count = max(1, int(len(pages) * READ_BATCH_FRACTION))
            return pages[:count]
        total = sum(s.recency.evictable_count() for s in shards)
        if total <= 0:
            return []
        count = max(1, int(total * READ_BATCH_FRACTION))
        merged = heapq.merge(
            *(s.recency.iter_evictable(newest_first=True) for s in shards),
            key=lambda p: p.last_access_tick,
            reverse=True,
        )
        return list(itertools.islice(merged, count))


class DbminPolicy(PagingPolicy):
    """DBMIN with per-set desired sizes.

    ``mode`` selects the size estimator the paper compares:

    * ``"one"`` — every set's desired size is 1 page (DBMIN-1);
    * ``"fixed"`` — every set's desired size is ``fixed_pages`` (DBMIN-1000);
    * ``"adaptive"`` — estimated from the set's learned reference pattern
      exactly as the original algorithm would (loop-sequential and random
      patterns want the whole set resident; straight-sequential wants one
      page);
    * ``"tuned"`` — adaptive, but upper-bounded by the pool size so it
      never blocks (the variant used in Figs. 9-10).

    DBMIN *blocks* when the total desired size exceeds the buffer pool —
    surfaced here as :class:`DbminBlockedError`.
    """

    def __init__(
        self,
        mode: str = "adaptive",
        fixed_pages: int = 1000,
        use_index: bool = True,
    ) -> None:
        if mode not in ("one", "fixed", "adaptive", "tuned"):
            raise ValueError(f"unknown DBMIN mode {mode!r}")
        self.mode = mode
        self.fixed_pages = fixed_pages
        self.use_index = use_index
        self.name = f"dbmin-{mode if mode != 'fixed' else fixed_pages}"

    def desired_pages(self, shard: "LocalShard", pool_capacity: int) -> int:
        if self.mode == "one":
            return 1
        if self.mode == "fixed":
            return self.fixed_pages
        attrs = shard.attributes
        total = len(shard.pages)
        if (
            attrs.reading_pattern is ReadingPattern.RANDOM_READ
            or attrs.writing_pattern is WritingPattern.RANDOM_MUTABLE_WRITE
        ):
            desired = total
        elif attrs.reading_pattern is ReadingPattern.SEQUENTIAL_READ:
            # Pangea workloads re-scan their inputs (loop-sequential), so
            # the original estimator asks for the whole set.
            desired = total
        else:
            desired = 1
        if self.mode == "tuned":
            cap = max(1, pool_capacity // max(1, shard.page_size))
            desired = min(desired, cap)
        return max(1, desired)

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        live = [s for s in shards if s.pages]
        if not live:
            return []
        pool_capacity = live[0].pool.capacity
        desired = {id(s): self.desired_pages(s, pool_capacity) for s in live}
        total_desired_bytes = sum(
            desired[id(s)] * s.page_size for s in live
        )
        if self.mode in ("adaptive", "fixed") and total_desired_bytes > pool_capacity:
            raise DbminBlockedError(
                f"DBMIN desired size {total_desired_bytes} bytes exceeds the "
                f"{pool_capacity}-byte buffer pool; new requests block"
            )
        # Evict from the set most over its allocation; fall back to the
        # least-recently-used set overall.
        over = []
        for shard in live:
            if self.use_index:
                resident = shard.recency.evictable_count()
            else:
                resident = len(shard.resident_unpinned_pages())
            excess = resident - desired[id(shard)]
            if resident > 0:
                over.append((excess, -shard.attributes.access_recency, shard))
        if not over:
            return []
        over.sort(key=lambda t: (t[0], t[1]), reverse=True)
        victim_shard = over[0][2]
        if self.use_index:
            victim = next_victim_indexed(victim_shard)
        else:
            victim = next_victim(victim_shard)
        return [victim] if victim is not None else []


class GreedyDualPolicy(PagingPolicy):
    """GreedyDual-Size (Cao & Irani), from the paper's related work.

    Every cached page carries a credit ``H``; on access ``H`` resets to
    the *inflation level* ``L`` plus the page's re-fetch cost; eviction
    takes the minimum-``H`` page and raises ``L`` to that minimum.  Pages
    that are cheap to refetch and long unaccessed go first.
    """

    name = "greedy-dual"

    def __init__(self) -> None:
        self._inflation = 0.0
        self._credits: dict[int, float] = {}

    def _refetch_cost(self, page: Page) -> float:
        shard = page.shard
        # Price the re-read against the array's actual striping, same as
        # the data-aware cost model.
        cost = shard.node.disks.estimate_read_seconds(page.size)
        if shard.attributes.reading_pattern is ReadingPattern.RANDOM_READ:
            cost *= shard.attributes.random_reread_penalty
        return cost

    def on_access(self, page: Page, tick: int) -> None:
        self._credits[page.page_id] = self._inflation + self._refetch_cost(page)

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        candidates = [p for s in shards for p in s.resident_unpinned_pages()]
        if not candidates:
            return []
        def credit(page: Page) -> float:
            return self._credits.get(
                page.page_id, self._inflation + self._refetch_cost(page)
            )
        victim = min(candidates, key=credit)
        self._inflation = credit(victim)
        self._credits.pop(victim.page_id, None)
        return [victim]


class LruKPolicy(PagingPolicy):
    """LRU-K (O'Neil et al.), from the paper's related work.

    Evicts the page whose K-th most recent reference is oldest; pages with
    fewer than K references are preferred victims (their K-distance is
    infinite), which filters out one-touch scans.
    """

    def __init__(self, k: int = 2, history: int = 8) -> None:
        if k < 1:
            raise ValueError("K must be at least 1")
        self.k = k
        self.history = max(k, history)
        self.name = f"lru-{k}"
        self._accesses: dict[int, list[int]] = {}

    def on_access(self, page: Page, tick: int) -> None:
        ticks = self._accesses.setdefault(page.page_id, [])
        ticks.append(tick)
        if len(ticks) > self.history:
            del ticks[: len(ticks) - self.history]

    def _kth_distance(self, page: Page) -> int:
        ticks = self._accesses.get(page.page_id, [])
        if len(ticks) < self.k:
            return -1  # fewer than K references: oldest possible
        return ticks[-self.k]

    def select_victims(
        self, shards: "list[LocalShard]", needed_bytes: int
    ) -> list[Page]:
        candidates = [p for s in shards for p in s.resident_unpinned_pages()]
        if not candidates:
            return []
        victim = min(
            candidates,
            key=lambda p: (self._kth_distance(p), p.last_access_tick),
        )
        return [victim]


def make_policy(name: str, **kwargs) -> PagingPolicy:
    """Factory for every policy the benchmarks compare."""
    name = name.lower()
    if name in ("data-aware", "dataaware", "pangea"):
        return DataAwarePolicy(**kwargs)
    if name == "lru":
        return GlobalLruPolicy(**kwargs)
    if name == "mru":
        return GlobalMruPolicy(**kwargs)
    if name == "dbmin-1":
        return DbminPolicy(mode="one", **kwargs)
    if name == "dbmin-1000":
        return DbminPolicy(mode="fixed", fixed_pages=1000, **kwargs)
    if name == "dbmin-adaptive":
        return DbminPolicy(mode="adaptive", **kwargs)
    if name == "dbmin-tuned":
        return DbminPolicy(mode="tuned", **kwargs)
    if name == "greedy-dual":
        return GreedyDualPolicy()
    if name.startswith("lru-"):
        return LruKPolicy(k=int(name.split("-", 1)[1]), **kwargs)
    raise ValueError(
        f"unknown paging policy {name!r}; expected data-aware, lru, mru, "
        f"dbmin-1, dbmin-1000, dbmin-adaptive, dbmin-tuned, greedy-dual "
        f"or lru-K"
    )
