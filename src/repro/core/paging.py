"""The paging system (paper Sec. 6)."""

from __future__ import annotations

import threading
import typing
from collections import deque
from dataclasses import dataclass

from repro.core.policies import PagingPolicy, make_policy, set_strategy
from repro.obs.registry import SetMetrics, merge_set_metrics
from repro.sim.clock import TickCounter

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalShard


@dataclass
class PagingStats:
    """Victim-selection counters for the paging benchmarks."""

    eviction_rounds: int = 0
    pages_evicted: int = 0
    #: Full rebuilds of the data-aware policy's candidate min-heap (the
    #: indexed path rebuilds on tick advance / candidate-set change and
    #: otherwise refreshes one entry per round).
    index_rebuilds: int = 0
    #: Cost-term cache hits/misses across all candidate evaluations
    #: (node-level sums of the per-set counters in SetMetrics).
    cost_cache_hits: int = 0
    cost_cache_misses: int = 0

    def reset(self) -> None:
        self.eviction_rounds = 0
        self.pages_evicted = 0
        self.index_rebuilds = 0
        self.cost_cache_hits = 0
        self.cost_cache_misses = 0


@dataclass(frozen=True)
class EvictionEvent:
    """One traced eviction, for debugging and policy tests."""

    tick: int
    set_name: str
    page_id: int
    was_dirty: bool
    flushed: bool
    policy: str


class PagingSystem:
    """Per-node victim selection driven by a pluggable policy.

    The buffer pool calls :meth:`make_room` when a pin request finds no
    free space; the policy picks a victim locality set and a batch of its
    pages, and this class performs the evictions (flushing dirty write-back
    pages through the set's file).

    Thread-safe: the shard registry, stats, trace ring, and policy access
    are guarded by a reentrant lock.  :meth:`make_room` runs with the
    buffer pool's storage lock already held (pool → paging is the lock
    order; see docs/api.md "Concurrency model"), so victim selection and
    eviction are atomic with respect to concurrent pins.
    """

    def __init__(
        self,
        policy: "PagingPolicy | str" = "data-aware",
        trace_capacity: int = 0,
    ) -> None:
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        self._ticks = TickCounter()
        self._shards: list[LocalShard] = []
        #: Registered shards keyed by set name, replacing the linear
        #: decision-attribution scan.  Maps to the *first* registered
        #: shard with each name, matching the old scan's semantics.
        self._by_name: "dict[str, LocalShard]" = {}
        self._lock = threading.RLock()
        self.stats = PagingStats()
        #: Bounded eviction trace; enable with enable_trace() or a
        #: positive trace_capacity.
        self.trace: "deque[EvictionEvent] | None" = (
            deque(maxlen=trace_capacity) if trace_capacity > 0 else None
        )
        #: Per-set counters of shards that were unregistered (set dropped);
        #: kept so per-set totals still reconcile with PoolStats afterwards.
        self.retired_set_metrics: dict[str, SetMetrics] = {}
        #: Optional :class:`~repro.obs.tracer.NodeTracer`; installed by
        #: :meth:`repro.cluster.node.WorkerNode.attach_tracer`.
        self.tracer = None

    def enable_trace(self, capacity: int = 1024) -> None:
        """Start recording eviction events (bounded ring)."""
        if capacity < 1:
            raise ValueError("trace capacity must be positive")
        with self._lock:
            self.trace = deque(maxlen=capacity)

    def disable_trace(self) -> None:
        with self._lock:
            self.trace = None

    # ------------------------------------------------------------------
    # registration and ticking
    # ------------------------------------------------------------------

    def register_shard(self, shard: "LocalShard") -> None:
        with self._lock:
            self._shards.append(shard)
            self._by_name.setdefault(shard.dataset.name, shard)

    def unregister_shard(self, shard: "LocalShard") -> None:
        with self._lock:
            if shard in self._shards:
                self._shards.remove(shard)
                merge_set_metrics(self.retired_set_metrics, [shard.metrics])
                name = shard.dataset.name
                if self._by_name.get(name) is shard:
                    del self._by_name[name]
                    for other in self._shards:
                        if other.dataset.name == name:
                            self._by_name[name] = other
                            break

    @property
    def shards(self) -> "list[LocalShard]":
        with self._lock:
            return list(self._shards)

    def tick(self) -> int:
        """Advance the access-sequence counter (one buffer-pool access)."""
        return self._ticks.next()

    def note_access(self, page) -> None:
        """Forward a page access to policies that track history (LRU-K,
        GreedyDual); the default policies only need last_access_tick."""
        on_access = getattr(self.policy, "on_access", None)
        if on_access is not None:
            with self._lock:
                on_access(page, self._ticks.now)

    @property
    def current_tick(self) -> int:
        return self._ticks.now

    def note_page_image(self, page) -> None:
        """Record the object ids backing a page's on-disk image.

        Called by the shard whenever a page image is persisted (seal of a
        write-through page, flush of a dirty write-back page).  The index
        lives on the owning locality set and is what the buffer layer uses
        to read-repair a corrupted image from a surviving replica — without
        it, a corruption is only diagnosable, not healable.
        """
        shard = page.shard
        if shard is not None:
            shard.dataset.note_page_image(shard, page)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------

    def make_room(self, needed_bytes: int) -> bool:
        """Evict at least one page; ``False`` when nothing was evicted.

        Installed as the buffer pool's evictor.  The pool retries its
        allocation after every successful round, so a single round only
        needs to make progress, not to free ``needed_bytes`` exactly.
        Victims that became pinned (or were already evicted) between
        selection and eviction are skipped; a round that skips every
        victim reports ``False`` so the pool raises instead of retrying
        forever.
        """
        with self._lock:
            tracer = self.tracer
            start = tracer.now if tracer is not None else 0.0
            self.policy.last_decision = None
            victims = self.policy.select_victims(self._shards, needed_bytes)
            decision = getattr(self.policy, "last_decision", None)
            if decision is not None:
                # The data-aware policy exposes the cost-model evaluation
                # behind its choice; feed it to the victim set's registry
                # entry and (when enabled) the structured trace.
                set_name, tick, breakdown = decision
                chosen = self._by_name.get(set_name)
                if chosen is not None:
                    chosen.metrics.note_cost_sample(
                        breakdown.total, breakdown.preuse
                    )
                if tracer is not None:
                    tracer.instant(
                        "paging.victim", "paging", set=set_name,
                        cost=breakdown.total, cw=breakdown.cw,
                        vr=breakdown.vr, wr=breakdown.wr,
                        preuse=breakdown.preuse, age=breakdown.age,
                        policy=self.policy.name,
                    )
            if not victims:
                return False
            # Validate the batch up front (victims that became pinned or
            # left memory between selection and eviction are skipped),
            # capturing dirty bits before the flush clears them.
            valid: "list[tuple]" = []
            for page in victims:
                if page.shard is None:  # pragma: no cover - defensive
                    continue
                if not page.in_memory or page.pinned:
                    continue
                valid.append((page, page.dirty))
            evicted = 0
            freed_bytes = 0
            # Evict runs of consecutive same-set victims as one batch so
            # their dirty write-backs coalesce into a single striped
            # DiskArray charge (LocalShard.evict_pages → SetFile.write_many)
            # instead of one seek per page.
            i = 0
            while i < len(valid):
                shard = valid[i][0].shard
                j = i
                while j < len(valid) and valid[j][0].shard is shard:
                    j += 1
                results = shard.evict_pages([p for p, _ in valid[i:j]])
                for (page, was_dirty), result in zip(valid[i:j], results):
                    evicted += 1
                    freed_bytes += result.freed
                    self.stats.pages_evicted += 1
                    if self.trace is not None:
                        self.trace.append(
                            EvictionEvent(
                                tick=self._ticks.now,
                                set_name=shard.dataset.name,
                                page_id=page.page_id,
                                was_dirty=was_dirty,
                                flushed=result.flushed,
                                policy=self.policy.name,
                            )
                        )
                i = j
            if evicted == 0:
                return False
            self.stats.eviction_rounds += 1
            if tracer is not None:
                tracer.span("paging.make_room", "paging", start,
                            tracer.now - start, needed_bytes=needed_bytes,
                            evicted=evicted, freed_bytes=freed_bytes,
                            policy=self.policy.name)
                tracer.counter(
                    "paging.index", "paging",
                    rebuilds=self.stats.index_rebuilds,
                    cost_cache_hits=self.stats.cost_cache_hits,
                    cost_cache_misses=self.stats.cost_cache_misses,
                )
            return True

    def set_metrics(self) -> "dict[str, SetMetrics]":
        """Per-set counters on this node: live shards plus retired sets.

        Live entries are stamped with the eviction strategy currently in
        force for the set; the returned records are copies, safe to merge
        and keep after the shards change.
        """
        with self._lock:
            out: dict[str, SetMetrics] = {}
            merge_set_metrics(out, self.retired_set_metrics)
            for shard in self._shards:
                record = shard.metrics.copy()
                record.strategy = set_strategy(shard)
                existing = out.get(record.set_name)
                if existing is None:
                    out[record.set_name] = record
                else:
                    existing.merge(record)
                    existing.strategy = record.strategy
            return out

    def reset_set_metrics(self) -> None:
        """Zero every per-set counter (live shards and retired sets)."""
        with self._lock:
            self.retired_set_metrics.clear()
            for shard in self._shards:
                shard.metrics.reset()

    def set_policy(self, policy: "PagingPolicy | str") -> None:
        if isinstance(policy, str):
            policy = make_policy(policy)
        with self._lock:
            self.policy = policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PagingSystem(policy={self.policy.name}, shards={len(self._shards)})"
