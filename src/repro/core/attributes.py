"""Locality-set attributes (paper Table 1).

Attributes such as ``WritingPattern``, ``ReadingPattern`` and
``CurrentOperation`` are not supplied by applications: they are inferred at
runtime from the service used to access the set (paper Sec. 3.2) — the
sequential write service implies ``SEQUENTIAL_WRITE`` + ``WRITE``, the
shuffle service implies ``CONCURRENT_WRITE``, the hash service implies
``RANDOM_MUTABLE_WRITE`` + ``RANDOM_READ``, and so on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class DurabilityType(enum.Enum):
    """Whether pages persist at write time or only on eviction."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"

    @classmethod
    def parse(cls, value: "DurabilityType | str") -> "DurabilityType":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown durability {value!r}; expected 'write-back' or "
                f"'write-through'"
            ) from None


class WritingPattern(enum.Enum):
    SEQUENTIAL_WRITE = "sequential-write"
    CONCURRENT_WRITE = "concurrent-write"
    RANDOM_MUTABLE_WRITE = "random-mutable-write"


class ReadingPattern(enum.Enum):
    SEQUENTIAL_READ = "sequential-read"
    RANDOM_READ = "random-read"


class Location(enum.Enum):
    PINNED = "pinned"
    UNPINNED = "unpinned"


class CurrentOperation(enum.Enum):
    READ = "read"
    WRITE = "write"
    READ_AND_WRITE = "read-and-write"
    NONE = "none"


@dataclass
class LocalitySetAttributes:
    """The live attribute tags of one locality set.

    ``access_recency`` is the sequence id (paging tick) of the set's most
    recent page access; per-page recency lives on the pages themselves.
    """

    durability: DurabilityType = DurabilityType.WRITE_THROUGH
    writing_pattern: WritingPattern | None = None
    reading_pattern: ReadingPattern | None = None
    location: Location = Location.UNPINNED
    lifetime_ended: bool = False
    current_operation: CurrentOperation = CurrentOperation.NONE
    access_recency: int = 0
    # The paper's wr term: penalty multiplier for re-reading spilled data
    # with a random reading pattern (hash maps must be rebuilt).
    random_reread_penalty: float = field(default=3.0)

    @property
    def alive(self) -> bool:
        return not self.lifetime_ended

    def note_write_service(self, pattern: WritingPattern) -> None:
        """Record that a write-side service was attached to the set."""
        self.writing_pattern = pattern
        if self.current_operation is CurrentOperation.READ:
            self.current_operation = CurrentOperation.READ_AND_WRITE
        elif self.current_operation is not CurrentOperation.READ_AND_WRITE:
            self.current_operation = CurrentOperation.WRITE

    def note_read_service(self, pattern: ReadingPattern) -> None:
        """Record that a read-side service was attached to the set."""
        self.reading_pattern = pattern
        if self.current_operation is CurrentOperation.WRITE:
            self.current_operation = CurrentOperation.READ_AND_WRITE
        elif self.current_operation is not CurrentOperation.READ_AND_WRITE:
            self.current_operation = CurrentOperation.READ

    def note_service_detached(self, remaining_readers: int, remaining_writers: int) -> None:
        """Downgrade ``current_operation`` as services release the set."""
        if remaining_readers > 0 and remaining_writers > 0:
            self.current_operation = CurrentOperation.READ_AND_WRITE
        elif remaining_readers > 0:
            self.current_operation = CurrentOperation.READ
        elif remaining_writers > 0:
            self.current_operation = CurrentOperation.WRITE
        else:
            self.current_operation = CurrentOperation.NONE

    def end_lifetime(self) -> None:
        """Mark the data dead: the paging system will evict it first."""
        self.lifetime_ended = True
        self.current_operation = CurrentOperation.NONE
