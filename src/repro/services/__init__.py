"""Pangea's distributed services (paper Sec. 8).

Services are how applications entrust their data to Pangea, and also how
locality-set attributes are learned at runtime: attaching the sequential
write service implies ``sequential-write`` + ``write``, the shuffle service
implies ``concurrent-write``, the hash service implies
``random-mutable-write`` + ``random-read``, and so on.
"""

from repro.services.broadcast import BroadcastMap, broadcast_map
from repro.services.dispatcher import Dispatcher, ImportReport
from repro.services.hashsvc import VirtualHashBuffer
from repro.services.joinmap import JoinMap, build_join_map
from repro.services.sequential import (
    NodeFailedError,
    PageIterator,
    SequentialWriter,
    make_page_iterators,
    make_shard_iterators,
    resolve_readable_source,
)
from repro.services.shuffle import ShuffleService, SmallPageAllocator, VirtualShuffleBuffer

__all__ = [
    "Dispatcher",
    "ImportReport",
    "SequentialWriter",
    "PageIterator",
    "NodeFailedError",
    "make_page_iterators",
    "make_shard_iterators",
    "resolve_readable_source",
    "ShuffleService",
    "SmallPageAllocator",
    "VirtualShuffleBuffer",
    "VirtualHashBuffer",
    "BroadcastMap",
    "broadcast_map",
    "JoinMap",
    "build_join_map",
]
