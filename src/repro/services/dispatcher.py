"""The dispatch service: importing external data into locality sets.

The paper's distributed sets are "randomly dispatched" at import time;
partitioned replicas are built later by partition computations.  The
dispatcher models the import path: an external client streams records to
the workers (network), and each worker writes its share through the
sequential write service — landing directly in buffer-pool pages, which
is why "when a dataset is imported, a significant portion of it is
already cached" (paper Sec. 9.1.1).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.services.sequential import SequentialWriter
from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.locality_set import LocalitySet
    from repro.placement.partitioner import PartitionComp


@dataclass
class ImportReport:
    """What one import did."""

    records: int = 0
    bytes: int = 0
    seconds: float = 0.0
    per_node: dict = None

    def __post_init__(self) -> None:
        if self.per_node is None:
            self.per_node = {}


class Dispatcher:
    """Stream external records into a locality set.

    ``policy`` is ``"round-robin"`` (the paper's random dispatch),
    ``"hash"`` with a key function, or a full
    :class:`~repro.placement.partitioner.PartitionComp`.
    """

    def __init__(
        self,
        dataset: "LocalitySet",
        policy: "str | PartitionComp" = "round-robin",
        key_fn: "typing.Callable | None" = None,
        batch_bytes: int = 4 << 20,
    ) -> None:
        self.dataset = dataset
        self.batch_bytes = batch_bytes
        self._node_ids = sorted(dataset.shards)
        if isinstance(policy, str):
            if policy == "round-robin":
                self._route = self._route_round_robin
            elif policy == "hash":
                if key_fn is None:
                    raise ValueError("hash dispatch needs a key_fn")
                self._key_fn = key_fn
                self._route = self._route_hash
            else:
                raise ValueError(
                    f"unknown dispatch policy {policy!r} (round-robin|hash)"
                )
        else:
            self._partitioner = policy
            self._route = self._route_partitioner
        self._cursor = 0

    # ------------------------------------------------------------------
    # routing policies
    # ------------------------------------------------------------------

    def _route_round_robin(self, record: object) -> int:
        node_id = self._node_ids[self._cursor % len(self._node_ids)]
        self._cursor += 1
        return node_id

    def _route_hash(self, record: object) -> int:
        return self._node_ids[stable_hash(self._key_fn(record)) % len(self._node_ids)]

    def _route_partitioner(self, record: object) -> int:
        partition = self._partitioner.partition_of(record)
        return self._node_ids[partition % len(self._node_ids)]

    # ------------------------------------------------------------------
    # the import
    # ------------------------------------------------------------------

    def import_data(
        self,
        records: "typing.Iterable[object]",
        nbytes_each: int | None = None,
    ) -> ImportReport:
        """Stream records in; returns an :class:`ImportReport`.

        Network cost: each node receives its share from the external
        client in ``batch_bytes`` messages.  Write cost: the sequential
        write service on each target shard.
        """
        cluster = self.dataset.cluster
        start = cluster.barrier()
        nbytes = self.dataset.object_bytes if nbytes_each is None else nbytes_each
        writers = {
            nid: SequentialWriter(self.dataset.shards[nid])
            for nid in self._node_ids
        }
        for writer in writers.values():
            writer.attach()
        report = ImportReport()
        pending_bytes = {nid: 0 for nid in self._node_ids}
        try:
            for record in records:
                node_id = self._route(record)
                writers[node_id].add_object(record, nbytes)
                report.records += 1
                report.bytes += nbytes
                report.per_node[node_id] = report.per_node.get(node_id, 0) + 1
                pending_bytes[node_id] += nbytes
                if pending_bytes[node_id] >= self.batch_bytes:
                    self._ship(node_id, pending_bytes[node_id])
                    pending_bytes[node_id] = 0
        finally:
            for node_id, writer in writers.items():
                if pending_bytes[node_id]:
                    self._ship(node_id, pending_bytes[node_id])
                writer.flush()
                writer.close()
        if self.dataset.partitioner is None and hasattr(self, "_partitioner"):
            self.dataset.partitioner = self._partitioner
            self.dataset.partition_scheme = self._partitioner.scheme()
            cluster.manager.update_statistics(self.dataset)
        report.seconds = cluster.barrier() - start
        return report

    def _ship(self, node_id: int, nbytes: int) -> None:
        """One batched transfer from the external client to a worker."""
        node = self.dataset.shards[node_id].node
        node.network.transfer(nbytes, num_messages=1)
