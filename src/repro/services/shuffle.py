"""The shuffle service: virtual shuffle buffers over small pages (paper Sec. 8).

All data for one shuffle partition is grouped into one locality set (so a
node spills at most ``num_partitions`` files, versus Spark's
``num_cores × num_partitions``).  Multiple writers share a partition's
buffer-pool page concurrently: a secondary *small page allocator* pins a
big page, splits it into small pages of a few megabytes, and hands those to
writers through *virtual shuffle buffers*.  The big page is unpinned only
when it is exhausted and every small page carved from it is finished.
"""

from __future__ import annotations

import typing

from repro.buffer.page import Page
from repro.core.attributes import WritingPattern
from repro.sim.devices import MB
from repro.sim.faults import fire_point

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet, LocalShard


class _BigPage:
    """A pinned buffer-pool page being carved into small pages."""

    def __init__(self, page: Page) -> None:
        self.page = page
        self.carved = 0
        self.outstanding = 0
        self.exhausted = False

    def maybe_unpin(self, shard: "LocalShard") -> None:
        if self.exhausted and self.outstanding == 0:
            shard.seal_page(self.page)
            shard.unpin_page(self.page)


class SmallPage:
    """A writer-private byte budget inside one big page."""

    def __init__(self, big: _BigPage, budget: int) -> None:
        self.big = big
        self.budget = budget
        self.used = 0
        self.closed = False

    @property
    def free_bytes(self) -> int:
        return self.budget - self.used

    def append(self, record: object, nbytes: int) -> None:
        if self.closed:
            raise ValueError("small page already finished")
        if nbytes > self.free_bytes:
            raise ValueError(f"{nbytes} bytes do not fit this small page")
        self.big.page.append(record, nbytes)
        self.used += nbytes

    def extend(self, records: list, nbytes_each: int) -> None:
        """Bulk-append same-size records that are known to fit."""
        total = len(records) * nbytes_each
        if self.closed:
            raise ValueError("small page already finished")
        if total > self.free_bytes:
            raise ValueError(f"{total} bytes do not fit this small page")
        self.big.page.extend(records, nbytes_each)
        self.used += total

    def finish(self, shard: "LocalShard") -> None:
        if not self.closed:
            self.closed = True
            self.big.outstanding -= 1
            self.big.maybe_unpin(shard)


class SmallPageAllocator:
    """The secondary allocator for one shuffle partition's shard."""

    def __init__(self, shard: "LocalShard", small_page_size: int = 4 * MB) -> None:
        if small_page_size <= 0:
            raise ValueError("small page size must be positive")
        if small_page_size > shard.page_size:
            raise ValueError("small pages cannot exceed the big page size")
        self.shard = shard
        self.small_page_size = small_page_size
        self._big: _BigPage | None = None

    def get_small_page(self) -> SmallPage:
        """Carve the next small page, rolling to a fresh big page if needed."""
        if self._big is None or self._big.carved >= self._big.page.size:
            if self._big is not None:
                self._big.exhausted = True
                self._big.maybe_unpin(self.shard)
            self._big = _BigPage(self.shard.new_page(pin=True))
        big = self._big
        budget = min(self.small_page_size, big.page.size - big.carved)
        big.carved += budget
        big.outstanding += 1
        return SmallPage(big, budget)

    def close(self) -> None:
        """Finish the partition: retire the tail big page."""
        if self._big is not None:
            self._big.exhausted = True
            self._big.maybe_unpin(self.shard)
            self._big = None


class VirtualShuffleBuffer:
    """One (writer, partition) write handle.

    Holds a pointer to the partition's small page allocator plus the
    writer's current offset in its small page — exactly the paper's
    abstraction.  When the writer is remote from the partition's home node,
    each filled small page charges one network transfer.
    """

    def __init__(
        self,
        allocator: SmallPageAllocator,
        worker_node: "object",
        worker_id: int,
        partition_id: int,
    ) -> None:
        self.allocator = allocator
        self.worker_node = worker_node
        self.worker_id = worker_id
        self.partition_id = partition_id
        self._small: SmallPage | None = None

    def _flush_small_page(self) -> None:
        if self._small is None:
            return
        home_node = self.allocator.shard.node
        fire_point(home_node, "mid-shuffle")
        remote = self.worker_node is not None and self.worker_node is not home_node
        if remote:
            self.worker_node.network.transfer(
                self._small.used, num_messages=1, peer=home_node.network
            )
        tracer = home_node.tracer
        if tracer is not None:
            tracer.instant("shuffle.flush_small", "service",
                           set=self.allocator.shard.dataset.name,
                           partition=self.partition_id, worker=self.worker_id,
                           nbytes=self._small.used, remote=remote)
        self._small.finish(self.allocator.shard)
        self._small = None

    def add_object(self, record: object, nbytes: int | None = None) -> None:
        nbytes = self.allocator.shard.dataset.object_bytes if nbytes is None else nbytes
        if self._small is None or self._small.free_bytes < nbytes:
            self._flush_small_page()
            self._small = self.allocator.get_small_page()
        self._small.append(record, nbytes)
        cpu = (self.worker_node or self.allocator.shard.node).cpu
        cpu.per_object(1)
        cpu.memcpy(nbytes)

    def close(self) -> None:
        self._flush_small_page()


class ShuffleService:
    """Cluster-wide shuffle: one locality set per partition.

    Partition ``p`` lives on node ``p % num_nodes``; every worker gets a
    virtual shuffle buffer per partition via :meth:`buffer_for`.  Reading a
    partition uses the ordinary sequential read service on its set.
    """

    def __init__(
        self,
        cluster: "PangeaCluster",
        name: str,
        num_partitions: int,
        page_size: int = 64 * MB,
        small_page_size: int = 4 * MB,
        object_bytes: int = 100,
    ) -> None:
        if num_partitions < 1:
            raise ValueError("need at least one shuffle partition")
        self.cluster = cluster
        self.name = name
        self.num_partitions = num_partitions
        self.partition_sets: list[LocalitySet] = []
        self._allocators: list[SmallPageAllocator] = []
        self._buffers: dict[tuple[int, int], VirtualShuffleBuffer] = {}
        for partition_id in range(num_partitions):
            home = partition_id % cluster.num_nodes
            dataset = cluster.create_set(
                f"{name}_p{partition_id}",
                durability="write-back",
                page_size=page_size,
                nodes=[home],
                object_bytes=object_bytes,
            )
            dataset.active_writers += 1
            dataset.attributes.note_write_service(WritingPattern.CONCURRENT_WRITE)
            shard = dataset.shards[home]
            self.partition_sets.append(dataset)
            self._allocators.append(
                SmallPageAllocator(shard, small_page_size=small_page_size)
            )

    def buffer_for(self, worker_id: int, partition_id: int, worker_node=None) -> VirtualShuffleBuffer:
        """The (worker, partition) virtual shuffle buffer (cached)."""
        key = (worker_id, partition_id)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = VirtualShuffleBuffer(
                self._allocators[partition_id], worker_node, worker_id, partition_id
            )
            self._buffers[key] = buffer
        return buffer

    def write_batch(
        self,
        worker_id: int,
        records: list,
        partitions: "list[int]",
        worker_node=None,
        nbytes: int | None = None,
    ) -> None:
        """Bulk ``add_object``: one call for a batch of same-size records.

        ``partitions[i]`` is the destination partition of ``records[i]``.
        Costs replay in *original record order* against the writer's clock
        — accumulating the per-record ``per_object``/``memcpy`` increments
        on a local float and committing with ``advance_to`` — so small-page
        flush boundaries (network transfers, fresh big pages, evictions on
        the home node) land on exactly the clock readings the per-record
        loop produces, bit for bit.  Data moves grouped: each destination's
        records are staged in a pending run and bulk-extended into its
        small page at flush boundaries.  Deferring the appends is invisible
        to the paging layer because a partition's big page stays pinned
        (never a victim candidate) until the allocator retires it.
        """
        if worker_node is None:
            # Without a writer node the charged CPU falls back to each
            # partition's home node, so there is no single clock to
            # accumulate against; take the per-record path.
            for record, partition_id in zip(records, partitions):
                self.buffer_for(worker_id, partition_id).add_object(record, nbytes)
            return
        if nbytes is None:
            nbytes = self.partition_sets[0].object_bytes
        cpu = worker_node.cpu
        clock = cpu.clock
        # With workers=1 these are exactly the amounts add_object advances
        # the clock by (multiplying by factor 1.0 and dividing by one
        # effective core are exact float operations).
        per_obj = cpu.per_object_overhead
        per_copy = nbytes / cpu.memcpy_bandwidth
        buffers: dict[int, VirtualShuffleBuffer] = {}
        pending: dict[int, list] = {}
        capacity: dict[int, int] = {}
        x = clock.now
        for record, partition_id in zip(records, partitions):
            buffer = buffers.get(partition_id)
            if buffer is None:
                buffer = self.buffer_for(
                    worker_id, partition_id, worker_node=worker_node
                )
                buffers[partition_id] = buffer
                pending[partition_id] = []
                small = buffer._small
                capacity[partition_id] = (
                    0 if small is None else small.free_bytes // nbytes
                )
            if capacity[partition_id] <= 0:
                clock.advance_to(x)
                run = pending[partition_id]
                if run:
                    buffer._small.extend(run, nbytes)
                    pending[partition_id] = []
                buffer._flush_small_page()
                buffer._small = buffer.allocator.get_small_page()
                capacity[partition_id] = buffer._small.free_bytes // nbytes
                x = clock.now
                if capacity[partition_id] <= 0:
                    # A record larger than a small page: fail exactly like
                    # the per-record append would.
                    buffer._small.append(record, nbytes)
            pending[partition_id].append(record)
            capacity[partition_id] -= 1
            x += per_obj
            x += per_copy
        clock.advance_to(x)
        for partition_id, buffer in buffers.items():
            run = pending[partition_id]
            if run:
                buffer._small.extend(run, nbytes)

    def finish_writing(self) -> None:
        """Flush every writer and detach the write service."""
        for buffer in self._buffers.values():
            buffer.close()
        for allocator in self._allocators:
            allocator.close()
        for dataset in self.partition_sets:
            dataset.active_writers -= 1
            dataset.attributes.note_service_detached(
                dataset.active_readers, dataset.active_writers
            )

    def partition_set(self, partition_id: int) -> "LocalitySet":
        return self.partition_sets[partition_id]

    def drop(self) -> None:
        """Shuffle data is transient: end lifetimes and drop the sets."""
        for dataset in self.partition_sets:
            dataset.end_lifetime()
            self.cluster.drop_set(dataset.name)
