"""The broadcast map service (paper Sec. 8).

Broadcasts a locality set to every node and constructs a hash table from it
on each node, for broadcast joins.  The per-node tables are built with the
hash service, so their memory lives in (and is accounted against) each
node's unified buffer pool.
"""

from __future__ import annotations

import typing

from repro.services.hashsvc import VirtualHashBuffer
from repro.util import estimate_bytes

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet


def _concat(old: list, new: list) -> list:
    return old + new


class BroadcastMap:
    """One hash table per node, each holding the whole broadcast set."""

    def __init__(self, cluster: "PangeaCluster", name: str) -> None:
        self.cluster = cluster
        self.name = name
        self.buffers: dict[int, VirtualHashBuffer] = {}
        self._sets: list[str] = []

    def lookup(self, node_id: int, key: object) -> list:
        """Probe the map on ``node_id``; returns matches (possibly empty)."""
        buffer = self.buffers[node_id]
        found = buffer.find(key)
        return found if found is not None else []

    def num_keys(self, node_id: int) -> int:
        return len(self.buffers[node_id])

    def drop(self) -> None:
        """Broadcast maps are execution data: end lifetime and free pages."""
        for buffer in self.buffers.values():
            buffer.release()
        for set_name in self._sets:
            dataset = self.cluster.get_set(set_name)
            dataset.end_lifetime()
            self.cluster.drop_set(set_name)
        self.buffers.clear()
        self._sets.clear()


def broadcast_map(
    source: "LocalitySet",
    key_fn: "typing.Callable[[object], object]",
    name: str | None = None,
    page_size: int | None = None,
    num_root_partitions: int = 8,
) -> BroadcastMap:
    """Broadcast ``source`` and build a per-node hash map keyed by ``key_fn``.

    Each source shard ships its bytes to the other ``n-1`` nodes (charged to
    the sender's network link); each receiver pays the build cost through
    the hash service.
    """
    cluster = source.cluster
    name = name or f"{source.name}_bcast"
    page_size = page_size or source.page_size
    result = BroadcastMap(cluster, name)

    # Collect the records once (charges the sequential read on each source
    # node), then charge the broadcast fan-out per sender.
    records = list(source.scan_records())
    num_nodes = cluster.num_nodes
    for shard in source.shards.values():
        if num_nodes > 1:
            shard.node.network.transfer(
                shard.logical_bytes * (num_nodes - 1),
                num_messages=max(1, len(shard.pages)) * (num_nodes - 1),
            )
    cluster.barrier()

    for node in cluster.nodes:
        set_name = f"{name}_n{node.node_id}"
        dataset = cluster.create_set(
            set_name,
            durability="write-back",
            page_size=page_size,
            nodes=[node.node_id],
            object_bytes=source.object_bytes,
        )
        buffer = VirtualHashBuffer(
            dataset, num_root_partitions=num_root_partitions, combiner=_concat
        )
        for record in records:
            key = key_fn(record)
            buffer.insert(
                key, [record], nbytes=estimate_bytes(key) + source.object_bytes
            )
        buffer.finalize()
        result.buffers[node.node_id] = buffer
        result._sets.append(set_name)
    cluster.barrier()
    return result
