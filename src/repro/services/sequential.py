"""The sequential read/write service (paper Sec. 8).

Writing attaches a *sequential allocator* to a shard: records are placed
directly into the current buffer-pool page (no serialization — this is the
interfacing overhead Pangea avoids), and a full page is sealed, unpinned,
and replaced with a fresh one.

Reading hands out *concurrent page iterators*: long-living workers each
pull pages from a shared cursor (the paper's thread-safe circular buffer of
pinned-page metadata), touch them for the recency model, and unpin them
when done.
"""

from __future__ import annotations

import threading
import typing

from repro.buffer.page import Page
from repro.core.attributes import ReadingPattern, WritingPattern
from repro.sim.faults import fire_point

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalitySet, LocalShard


class NodeFailedError(RuntimeError):
    """The shard's worker node has failed; its data is unreachable until
    recovery re-creates it on the survivors.

    Carries the failed ``node_id`` and the ``set_name`` whose shard was
    unreachable, so operators (and tests) can tell *which* failure broke
    the operation without parsing the message.
    """

    def __init__(
        self,
        message: str,
        node_id: "int | None" = None,
        set_name: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.set_name = set_name


def _check_alive(shard: "LocalShard") -> None:
    if shard.node.failed:
        raise NodeFailedError(
            f"node {shard.node.node_id} holding a shard of "
            f"{shard.dataset.name!r} has failed",
            node_id=shard.node.node_id,
            set_name=shard.dataset.name,
        )


class SequentialWriter:
    """Write records sequentially into one shard.

    Use as a context manager so the service detach (and the attribute
    downgrade it implies) cannot be forgotten:

    >>> with SequentialWriter(shard) as writer:      # doctest: +SKIP
    ...     writer.add_object(record, nbytes=80)
    """

    def __init__(self, shard: "LocalShard", workers: int = 1) -> None:
        self.shard = shard
        self.workers = max(1, workers)
        self._page: Page | None = None
        self._attached = False

    # ------------------------------------------------------------------
    # service attachment
    # ------------------------------------------------------------------

    def __enter__(self) -> "SequentialWriter":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def attach(self) -> None:
        if self._attached:
            return
        _check_alive(self.shard)
        dataset = self.shard.dataset
        with dataset._service_lock:
            dataset.active_writers += 1
            dataset.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        self._attached = True
        tracer = self.shard.node.tracer
        if tracer is not None:
            tracer.instant("seq.write_attach", "service", set=dataset.name)

    def close(self) -> None:
        """Unpin the tail page and detach the service."""
        if self._page is not None:
            self.shard.unpin_page(self._page)
            self._page = None
        if self._attached:
            dataset = self.shard.dataset
            with dataset._service_lock:
                dataset.active_writers -= 1
                dataset.attributes.note_service_detached(
                    dataset.active_readers, dataset.active_writers
                )
            self._attached = False
            tracer = self.shard.node.tracer
            if tracer is not None:
                tracer.instant("seq.write_detach", "service", set=dataset.name)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _current_page(self, nbytes: int) -> Page:
        if self._page is not None and self._page.free_bytes < nbytes:
            fire_point(self.shard.node, "mid-write")
            self.shard.seal_page(self._page)
            self.shard.unpin_page(self._page)
            self._page = None
        if self._page is None:
            # The data proxy exchanges a PinPage message with the storage
            # process before writing through shared memory (paper Fig. 2).
            self.shard.node.network.message(2)
            self._page = self.shard.new_page(pin=True)
        return self._page

    def add_object(self, record: object, nbytes: int | None = None) -> None:
        """Sequential-write one record."""
        if not self._attached:
            raise RuntimeError("writer is not attached (use it as a context manager)")
        nbytes = self.shard.dataset.object_bytes if nbytes is None else nbytes
        if nbytes > self.shard.page_size:
            raise ValueError(
                f"a {nbytes}-byte object cannot fit a {self.shard.page_size}-byte page"
            )
        page = self._current_page(nbytes)
        page.append(record, nbytes)
        node = self.shard.node
        node.cpu.per_object(1, workers=self.workers)
        node.cpu.memcpy(nbytes, workers=self.workers)

    def add_data(self, records: list, nbytes_each: int | None = None) -> None:
        """Sequential-write a batch (single bulk cost charge)."""
        if not self._attached:
            raise RuntimeError("writer is not attached (use it as a context manager)")
        nbytes = self.shard.dataset.object_bytes if nbytes_each is None else nbytes_each
        node = self.shard.node
        for record in records:
            page = self._current_page(nbytes)
            page.append(record, nbytes)
        node.cpu.per_object(len(records), workers=self.workers)
        node.cpu.memcpy(len(records) * nbytes, workers=self.workers)

    def flush(self) -> None:
        """Seal the current page early (stage boundary)."""
        if self._page is not None:
            fire_point(self.shard.node, "mid-write")
            self.shard.seal_page(self._page)
            self.shard.unpin_page(self._page)
            self._page = None


class _SharedCursor:
    """The thread-safe circular buffer the computation workers pull from.

    Several :class:`PageIterator` workers share one cursor; a mutex makes
    the claim of each page atomic so no page is served twice and the
    detach (fired by the last iterator to finish) happens exactly once.
    """

    def __init__(self, pages: list[Page], dataset: "LocalitySet") -> None:
        self.pages = pages
        self.dataset = dataset
        self.index = 0
        self.active_iterators = 0
        self._lock = threading.Lock()

    def next_page(self) -> Page | None:
        with self._lock:
            if self.index >= len(self.pages):
                return None
            page = self.pages[self.index]
            self.index += 1
            return page

    def iterator_done(self) -> None:
        with self._lock:
            self.active_iterators -= 1
            last = self.active_iterators == 0
        if last:
            with self.dataset._service_lock:
                self.dataset.active_readers -= 1
                self.dataset.attributes.note_service_detached(
                    self.dataset.active_readers, self.dataset.active_writers
                )


class PageIterator:
    """One worker's view of the shared page cursor.

    Each ``next()`` pins the page (reloading it from the set's file if it
    was evicted, which charges real simulated I/O), touches it for recency,
    and unpins the previously returned page.
    """

    def __init__(self, cursor: _SharedCursor, workers: int) -> None:
        self._cursor = cursor
        self._workers = workers
        self._current: Page | None = None
        self._done = False
        with cursor._lock:
            cursor.active_iterators += 1

    def next(self) -> Page | None:
        if self._current is not None:
            self._current.shard.unpin_page(self._current)
            self._current = None
        if self._done:
            return None
        page = self._cursor.next_page()
        if page is None:
            self._done = True
            self._cursor.iterator_done()
            return None
        shard = page.shard
        # Page metadata flows through the circular buffer (one socket
        # message per pinned page, paper Fig. 2).
        fire_point(shard.node, "mid-scan")
        shard.node.network.message(1)
        shard.pin_page(page)
        shard.node.cpu.per_object(page.num_objects, workers=self._workers)
        self._current = page
        return page

    def __iter__(self):
        while True:
            page = self.next()
            if page is None:
                return
            yield page

    def close(self) -> None:
        if self._current is not None:
            self._current.shard.unpin_page(self._current)
            self._current = None
        if not self._done:
            self._done = True
            self._cursor.iterator_done()


def make_shard_iterators(
    shard: "LocalShard",
    num_threads: int = 1,
    on_failure: str = "raise",
) -> list[PageIterator]:
    """Concurrent page iterators over a single node's shard.

    ``on_failure`` controls what a dead node means: ``"raise"`` (the
    default, and what recovery correctness depends on) raises
    :class:`NodeFailedError`; ``"skip"`` returns no iterators so callers
    sweeping many shards can pass over dead ones.
    """
    if num_threads < 1:
        raise ValueError("need at least one iterator")
    if on_failure not in ("raise", "skip"):
        raise ValueError(f"on_failure must be 'raise' or 'skip', not {on_failure!r}")
    if shard.node.failed and on_failure == "skip":
        return []
    _check_alive(shard)
    dataset = shard.dataset
    with dataset._service_lock:
        dataset.active_readers += 1
        dataset.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    shard.node.network.message(1)
    cursor = _SharedCursor(list(shard.pages), dataset)
    return [PageIterator(cursor, num_threads) for _ in range(num_threads)]


def resolve_readable_source(
    dataset: "LocalitySet",
) -> "tuple[LocalitySet, list[int]]":
    """Pick a readable (set, node-id list) for a whole-set scan.

    Healthy set: itself, all shards.  With dead shards, the read service
    fails over instead of surfacing the crash (paper Sec. 7): it first
    polls the failure detector (which may auto-recover the node), then

    - if every dead node was already healed (its records re-dispatched to
      the survivors), scans the live shards of the same set;
    - otherwise switches to a replication-group member whose shards are
      all alive;
    - and only when no member is fully readable raises
      :class:`NodeFailedError` carrying the node id and set name.
    """
    cluster = dataset.cluster
    manager = getattr(cluster, "manager", None)
    detector = getattr(manager, "failure_detector", None)
    if detector is not None:
        detector.poll()

    def dead_nodes(member: "LocalitySet") -> list[int]:
        return [
            nid for nid in sorted(member.shards) if member.shards[nid].node.failed
        ]

    dead = dead_nodes(dataset)
    if not dead:
        return dataset, sorted(dataset.shards)
    group = None
    if manager is not None and dataset.replica_group_id is not None:
        group = manager.replica_group(dataset.replica_group_id)
    robustness = getattr(cluster, "robustness", None)

    def note_failover(kind: str, target: "LocalitySet") -> None:
        if robustness is not None:
            robustness.failovers += 1
        for node_id in sorted(target.shards):
            tracer = target.shards[node_id].node.tracer
            if tracer is not None:
                tracer.instant("scan.failover", "recovery", set=dataset.name,
                               target=target.name, kind=kind,
                               dead_nodes=list(dead))
                break

    if group is not None and all(nid in group.recovered_nodes for nid in dead):
        # Healed: the survivors hold the dead shards' records already.
        note_failover("healed", dataset)
        live = [nid for nid in sorted(dataset.shards) if nid not in dead]
        return dataset, live
    if group is not None:
        for member in group.members:
            if member is dataset:
                continue
            if not dead_nodes(member):
                note_failover("replica", member)
                return member, sorted(member.shards)
    raise NodeFailedError(
        f"node {dead[0]} holding a shard of {dataset.name!r} has failed "
        f"and no live replica covers its data",
        node_id=dead[0],
        set_name=dataset.name,
    )


def make_page_iterators(dataset: "LocalitySet", num_threads: int = 1) -> list[PageIterator]:
    """Concurrent page iterators over every shard of ``dataset``.

    The read service marks the set ``sequential-read`` and (while attached)
    ``read``; the GetSetPages handshake costs one control message per shard.
    Dead shards fail over to a surviving replica (see
    :func:`resolve_readable_source`) instead of raising.
    """
    if num_threads < 1:
        raise ValueError("need at least one iterator")
    source, node_ids = resolve_readable_source(dataset)
    with source._service_lock:
        source.active_readers += 1
        source.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    pages: list[Page] = []
    for node_id in node_ids:
        shard = source.shards[node_id]
        _check_alive(shard)
        shard.node.network.message(1)
        tracer = shard.node.tracer
        if tracer is not None:
            tracer.instant("seq.scan_attach", "service", set=source.name,
                           pages=len(shard.pages), threads=num_threads)
        pages.extend(shard.pages)
    cursor = _SharedCursor(pages, source)
    iterators = [PageIterator(cursor, num_threads) for _ in range(num_threads)]
    if not pages:
        # No pages: retire the read attachment immediately via one iterator
        # drain so attributes do not stay stuck at "read".
        pass
    return iterators
