"""The sequential read/write service (paper Sec. 8).

Writing attaches a *sequential allocator* to a shard: records are placed
directly into the current buffer-pool page (no serialization — this is the
interfacing overhead Pangea avoids), and a full page is sealed, unpinned,
and replaced with a fresh one.

Reading hands out *concurrent page iterators*: long-living workers each
pull pages from a shared cursor (the paper's thread-safe circular buffer of
pinned-page metadata), touch them for the recency model, and unpin them
when done.
"""

from __future__ import annotations

import threading
import typing

from repro.buffer.page import Page
from repro.core.attributes import ReadingPattern, WritingPattern

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalitySet, LocalShard


class NodeFailedError(RuntimeError):
    """The shard's worker node has failed; its data is unreachable until
    recovery re-creates it on the survivors."""


def _check_alive(shard: "LocalShard") -> None:
    if shard.node.failed:
        raise NodeFailedError(
            f"node {shard.node.node_id} holding a shard of "
            f"{shard.dataset.name!r} has failed"
        )


class SequentialWriter:
    """Write records sequentially into one shard.

    Use as a context manager so the service detach (and the attribute
    downgrade it implies) cannot be forgotten:

    >>> with SequentialWriter(shard) as writer:      # doctest: +SKIP
    ...     writer.add_object(record, nbytes=80)
    """

    def __init__(self, shard: "LocalShard", workers: int = 1) -> None:
        self.shard = shard
        self.workers = max(1, workers)
        self._page: Page | None = None
        self._attached = False

    # ------------------------------------------------------------------
    # service attachment
    # ------------------------------------------------------------------

    def __enter__(self) -> "SequentialWriter":
        self.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def attach(self) -> None:
        if self._attached:
            return
        _check_alive(self.shard)
        dataset = self.shard.dataset
        with dataset._service_lock:
            dataset.active_writers += 1
            dataset.attributes.note_write_service(WritingPattern.SEQUENTIAL_WRITE)
        self._attached = True

    def close(self) -> None:
        """Unpin the tail page and detach the service."""
        if self._page is not None:
            self.shard.unpin_page(self._page)
            self._page = None
        if self._attached:
            dataset = self.shard.dataset
            with dataset._service_lock:
                dataset.active_writers -= 1
                dataset.attributes.note_service_detached(
                    dataset.active_readers, dataset.active_writers
                )
            self._attached = False

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def _current_page(self, nbytes: int) -> Page:
        if self._page is not None and self._page.free_bytes < nbytes:
            self.shard.seal_page(self._page)
            self.shard.unpin_page(self._page)
            self._page = None
        if self._page is None:
            # The data proxy exchanges a PinPage message with the storage
            # process before writing through shared memory (paper Fig. 2).
            self.shard.node.network.message(2)
            self._page = self.shard.new_page(pin=True)
        return self._page

    def add_object(self, record: object, nbytes: int | None = None) -> None:
        """Sequential-write one record."""
        if not self._attached:
            raise RuntimeError("writer is not attached (use it as a context manager)")
        nbytes = self.shard.dataset.object_bytes if nbytes is None else nbytes
        if nbytes > self.shard.page_size:
            raise ValueError(
                f"a {nbytes}-byte object cannot fit a {self.shard.page_size}-byte page"
            )
        page = self._current_page(nbytes)
        page.append(record, nbytes)
        node = self.shard.node
        node.cpu.per_object(1, workers=self.workers)
        node.cpu.memcpy(nbytes, workers=self.workers)

    def add_data(self, records: list, nbytes_each: int | None = None) -> None:
        """Sequential-write a batch (single bulk cost charge)."""
        if not self._attached:
            raise RuntimeError("writer is not attached (use it as a context manager)")
        nbytes = self.shard.dataset.object_bytes if nbytes_each is None else nbytes_each
        node = self.shard.node
        for record in records:
            page = self._current_page(nbytes)
            page.append(record, nbytes)
        node.cpu.per_object(len(records), workers=self.workers)
        node.cpu.memcpy(len(records) * nbytes, workers=self.workers)

    def flush(self) -> None:
        """Seal the current page early (stage boundary)."""
        if self._page is not None:
            self.shard.seal_page(self._page)
            self.shard.unpin_page(self._page)
            self._page = None


class _SharedCursor:
    """The thread-safe circular buffer the computation workers pull from.

    Several :class:`PageIterator` workers share one cursor; a mutex makes
    the claim of each page atomic so no page is served twice and the
    detach (fired by the last iterator to finish) happens exactly once.
    """

    def __init__(self, pages: list[Page], dataset: "LocalitySet") -> None:
        self.pages = pages
        self.dataset = dataset
        self.index = 0
        self.active_iterators = 0
        self._lock = threading.Lock()

    def next_page(self) -> Page | None:
        with self._lock:
            if self.index >= len(self.pages):
                return None
            page = self.pages[self.index]
            self.index += 1
            return page

    def iterator_done(self) -> None:
        with self._lock:
            self.active_iterators -= 1
            last = self.active_iterators == 0
        if last:
            with self.dataset._service_lock:
                self.dataset.active_readers -= 1
                self.dataset.attributes.note_service_detached(
                    self.dataset.active_readers, self.dataset.active_writers
                )


class PageIterator:
    """One worker's view of the shared page cursor.

    Each ``next()`` pins the page (reloading it from the set's file if it
    was evicted, which charges real simulated I/O), touches it for recency,
    and unpins the previously returned page.
    """

    def __init__(self, cursor: _SharedCursor, workers: int) -> None:
        self._cursor = cursor
        self._workers = workers
        self._current: Page | None = None
        self._done = False
        with cursor._lock:
            cursor.active_iterators += 1

    def next(self) -> Page | None:
        if self._current is not None:
            self._current.shard.unpin_page(self._current)
            self._current = None
        if self._done:
            return None
        page = self._cursor.next_page()
        if page is None:
            self._done = True
            self._cursor.iterator_done()
            return None
        shard = page.shard
        # Page metadata flows through the circular buffer (one socket
        # message per pinned page, paper Fig. 2).
        shard.node.network.message(1)
        shard.pin_page(page)
        shard.node.cpu.per_object(page.num_objects, workers=self._workers)
        self._current = page
        return page

    def __iter__(self):
        while True:
            page = self.next()
            if page is None:
                return
            yield page

    def close(self) -> None:
        if self._current is not None:
            self._current.shard.unpin_page(self._current)
            self._current = None
        if not self._done:
            self._done = True
            self._cursor.iterator_done()


def make_shard_iterators(shard: "LocalShard", num_threads: int = 1) -> list[PageIterator]:
    """Concurrent page iterators over a single node's shard."""
    if num_threads < 1:
        raise ValueError("need at least one iterator")
    _check_alive(shard)
    dataset = shard.dataset
    with dataset._service_lock:
        dataset.active_readers += 1
        dataset.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    shard.node.network.message(1)
    cursor = _SharedCursor(list(shard.pages), dataset)
    return [PageIterator(cursor, num_threads) for _ in range(num_threads)]


def make_page_iterators(dataset: "LocalitySet", num_threads: int = 1) -> list[PageIterator]:
    """Concurrent page iterators over every shard of ``dataset``.

    The read service marks the set ``sequential-read`` and (while attached)
    ``read``; the GetSetPages handshake costs one control message per shard.
    """
    if num_threads < 1:
        raise ValueError("need at least one iterator")
    with dataset._service_lock:
        dataset.active_readers += 1
        dataset.attributes.note_read_service(ReadingPattern.SEQUENTIAL_READ)
    pages: list[Page] = []
    for node_id in sorted(dataset.shards):
        shard = dataset.shards[node_id]
        _check_alive(shard)
        shard.node.network.message(1)
        pages.extend(shard.pages)
    cursor = _SharedCursor(pages, dataset)
    iterators = [PageIterator(cursor, num_threads) for _ in range(num_threads)]
    if not pages:
        # No pages: retire the read attachment immediately via one iterator
        # drain so attributes do not stay stuck at "read".
        pass
    return iterators
