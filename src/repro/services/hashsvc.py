"""The hash service: virtual hash buffers over page-bounded partitions.

Pangea's hash service (paper Sec. 8) uses dynamic partitioning: every
buffer-pool page hosts an *independent* hash table plus all of its
key-value payload, with a Memcached-style slab allocator bounding every
allocation to the page's memory.  The service starts from ``K`` root
partitions; when a page fills, a child partition is split off onto a new
page (extendible-hashing style).  When no new page can be obtained, a full
page is sealed, unpinned, and spilled as a partial-aggregation result;
:meth:`VirtualHashBuffer.finalize` re-aggregates the spilled partials.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.buffer.page import Page
from repro.buffer.pool import BufferPoolFullError
from repro.buffer.slab import SlabAllocator, SlabExhaustedError
from repro.core.attributes import ReadingPattern, WritingPattern
from repro.util import estimate_bytes, stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.locality_set import LocalitySet, LocalShard

#: Per-entry bookkeeping bytes (bucket pointer, chain link, sizes).
ENTRY_OVERHEAD = 32


def _page_slab(page_size: int) -> SlabAllocator:
    """The secondary slab allocator bounded to one hash page.

    Slabs are 1MB for ordinary pages (memcached's default); for very large
    pages the slab grows to page_size/16 so that inflated logical records
    (scale-down mode) still fit a chunk.
    """
    return SlabAllocator(
        page_size, slab_size=min(page_size, max(1 << 20, page_size // 16))
    )


@dataclass
class HashServiceStats:
    inserts: int = 0
    combines: int = 0
    splits: int = 0
    spills: int = 0
    reloads: int = 0


class HashPartitionPage:
    """One page hosting one hash partition.

    The live table is a Python dict; every entry also reserves a slab chunk
    in the page so that memory pressure behaves like the paper's
    implementation (better utilization than a general-purpose allocator,
    hence later spilling).
    """

    def __init__(self, shard: "LocalShard", page: Page, root_index: int, depth: int) -> None:
        self.shard = shard
        self.page = page
        self.root_index = root_index
        self.depth = depth
        self.table: dict = {}
        self.slab = _page_slab(page.size)
        self.spilled = False

    def try_reserve(self, nbytes: int) -> int | None:
        try:
            return self.slab.alloc(nbytes)
        except SlabExhaustedError:
            return None

    def release(self, offset: int, nbytes: int) -> None:
        self.slab.free(offset, nbytes)

    def sync_page_accounting(self) -> None:
        self.page.used_bytes = min(self.page.size, self.slab.used_bytes)
        self.page.num_objects = len(self.table)
        self.page.dirty = True

    def spill(self) -> None:
        """Seal + unpin: the page becomes an evictable partial result.

        Spilled records carry their logical payload size so re-insertion
        during re-aggregation reserves the same memory.
        """
        self.page.records = [
            (k, v[0], v[2] - ENTRY_OVERHEAD) for k, v in self.table.items()
        ]
        self.page.num_objects = len(self.page.records)
        self.page.dirty = True
        self.table = {}
        self.spilled = True
        self.shard.seal_page(self.page)
        self.shard.unpin_page(self.page)
        tracer = self.shard.node.tracer
        if tracer is not None:
            tracer.instant("hash.spill", "service",
                           set=self.shard.dataset.name,
                           page_id=self.page.page_id,
                           objects=self.page.num_objects,
                           root_index=self.root_index, depth=self.depth)


class _RootPartition:
    """One of the K root partitions, with extendible splitting."""

    def __init__(self, service: "VirtualHashBuffer", shard: "LocalShard", root_index: int) -> None:
        self.service = service
        self.shard = shard
        self.root_index = root_index
        self.local_depth = 0
        first = HashPartitionPage(shard, shard.new_page(pin=True), root_index, depth=0)
        self.directory: list[HashPartitionPage] = [first]
        self.spilled_pages: list[Page] = []

    def slot_index(self, sub_hash: int) -> int:
        return sub_hash & ((1 << self.local_depth) - 1)

    def page_for(self, sub_hash: int) -> HashPartitionPage:
        return self.directory[self.slot_index(sub_hash)]

    def live_pages(self) -> list[HashPartitionPage]:
        seen: dict[int, HashPartitionPage] = {}
        for part in self.directory:
            seen[id(part)] = part
        return list(seen.values())

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def split(self, part: HashPartitionPage) -> None:
        """Split a full partition onto a freshly allocated page."""
        if part.depth == self.local_depth:
            self.directory = self.directory + self.directory
            self.local_depth += 1
        sibling = HashPartitionPage(
            self.shard,
            self.shard.new_page(pin=True),
            self.root_index,
            depth=part.depth + 1,
        )
        part.depth += 1
        bit = 1 << (part.depth - 1)
        stay: dict = {}
        for key, (value, sub_hash, nbytes) in part.table.items():
            if sub_hash & bit:
                offset = sibling.slab.alloc(nbytes)
                sibling.table[key] = (value, sub_hash, nbytes)
                del offset  # offsets are bookkeeping; identity lives in the table
            else:
                stay[key] = (value, sub_hash, nbytes)
        # Rebuild the staying side's slab compactly (a split rewrites the page).
        part.table = stay
        part.slab = _page_slab(part.page.size)
        for key, (value, sub_hash, nbytes) in stay.items():
            part.slab.alloc(nbytes)
        part.sync_page_accounting()
        sibling.sync_page_accounting()
        for index in range(len(self.directory)):
            if self.directory[index] is part and (index >> (part.depth - 1)) & 1:
                self.directory[index] = sibling
        node = self.shard.node
        moved = len(sibling.table)
        node.cpu.per_object(moved, factor=2.0)
        node.cpu.memcpy(sum(n for _, _, n in sibling.table.values()))
        self.service.stats.splits += 1

    def spill_one(self) -> HashPartitionPage:
        """Spill the fullest live partition and mount a fresh page in its slot."""
        live = [p for p in self.live_pages() if not p.spilled]
        victim = max(live, key=lambda p: p.slab.used_bytes)
        victim.spill()
        self.spilled_pages.append(victim.page)
        self.service.stats.spills += 1
        fresh = HashPartitionPage(
            self.shard, self.shard.new_page(pin=True), self.root_index, victim.depth
        )
        for index in range(len(self.directory)):
            if self.directory[index] is victim:
                self.directory[index] = fresh
        return fresh


class VirtualHashBuffer:
    """The application-facing hash map bounded by the buffer pool.

    ``combiner`` merges a new value into an existing one (hash aggregation);
    the default keeps the newest value, matching the paper's
    ``insert``/``set`` example.  Use :meth:`finalize` (or iterate
    :meth:`items`) to fold spilled partial results back in.
    """

    def __init__(
        self,
        dataset: "LocalitySet",
        num_root_partitions: int = 16,
        combiner: "typing.Callable | None" = None,
    ) -> None:
        if num_root_partitions < 1:
            raise ValueError("need at least one root partition")
        self.dataset = dataset
        self.num_roots = num_root_partitions
        self.combiner = combiner
        self.stats = HashServiceStats()
        dataset.active_writers += 1
        dataset.attributes.note_write_service(WritingPattern.RANDOM_MUTABLE_WRITE)
        dataset.attributes.note_read_service(ReadingPattern.RANDOM_READ)
        shard_list = [dataset.shards[nid] for nid in sorted(dataset.shards)]
        self.roots = [
            _RootPartition(self, shard_list[i % len(shard_list)], i)
            for i in range(num_root_partitions)
        ]
        self._finalized = False
        #: key -> (root, sub_hash) memo for :meth:`insert_many`.
        self._route_cache: dict = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _route(self, key: object) -> tuple[_RootPartition, int]:
        h = stable_hash(key)
        root = self.roots[h % self.num_roots]
        return root, h // self.num_roots

    # ------------------------------------------------------------------
    # the paper's find/insert/set API
    # ------------------------------------------------------------------

    def find(self, key: object):
        """Return the current value for ``key`` or ``None``."""
        root, sub = self._route(key)
        entry = root.page_for(sub).table.get(key)
        root.shard.node.cpu.per_object(1)
        return entry[0] if entry is not None else None

    def insert(self, key: object, value: object, nbytes: int | None = None) -> None:
        """Insert a new key (combines when the key already exists)."""
        self._put(key, value, nbytes, combine=True)

    def set(self, key: object, value: object, nbytes: int | None = None) -> None:
        """Overwrite the value for an existing or new key."""
        self._put(key, value, nbytes, combine=False)

    def insert_many(
        self, keys: list, values: list, nbytes: int | None = None
    ) -> None:
        """Batched :meth:`insert` over aligned key/value columns.

        Bit-identical in simulated time to inserting one pair at a time:
        the per-record ``per_object(1, factor=1.5)`` increments accumulate
        on a local float committed with ``advance_to``, the combine fast
        path touches only the in-page dict, and any slow insert (slab
        reserve, split, spill) first syncs the clock and then runs the
        exact per-record code so page allocation and eviction land on the
        same clock readings.  Requires an explicit uniform ``nbytes`` and
        a single-node buffer; anything else falls back to the loop.
        """
        if self._finalized:
            raise RuntimeError("hash buffer already finalized")
        nodes = {id(root.shard.node) for root in self.roots}
        if nbytes is None or len(nodes) > 1:
            for key, value in zip(keys, values):
                self._put(key, value, nbytes, combine=True)
            return
        node = self.roots[0].shard.node
        cpu = node.cpu
        clock = cpu.clock
        # Exactly what per_object(1, factor=1.5) advances with workers=1.
        per_put = cpu.per_object_overhead * 1.5
        entry_bytes = nbytes + ENTRY_OVERHEAD
        roots = self.roots
        num_roots = self.num_roots
        combiner = self.combiner
        combines = 0
        # Routing is a pure function of the key (splits only deepen the
        # per-root directory, consulted below), so cache it across calls;
        # aggregation keys repeat heavily and stable_hash is pure Python.
        route = self._route_cache
        x = clock.now
        for key, value in zip(keys, values):
            cached = route.get(key)
            if cached is None:
                h = stable_hash(key)
                cached = route[key] = (roots[h % num_roots], h // num_roots)
            root, sub = cached
            x += per_put
            part = root.directory[sub & ((1 << root.local_depth) - 1)]
            existing = part.table.get(key)
            if existing is not None:
                new_value = (
                    combiner(existing[0], value) if combiner is not None else value
                )
                part.table[key] = (new_value, existing[1], existing[2])
                combines += 1
                continue
            # Slow path: sync the clock, then the per-record insert code.
            clock.advance_to(x)
            attempts = 0
            while True:
                offset = part.try_reserve(entry_bytes)
                if offset is not None:
                    part.table[key] = (value, sub, entry_bytes)
                    part.sync_page_accounting()
                    cpu.memcpy(entry_bytes)
                    self.stats.inserts += 1
                    break
                part = self._grow(root, part, sub, attempts)
                attempts += 1
            x = clock.now
        clock.advance_to(x)
        self.stats.combines += combines

    def _put(self, key: object, value: object, nbytes: int | None, combine: bool) -> None:
        if self._finalized:
            raise RuntimeError("hash buffer already finalized")
        root, sub = self._route(key)
        node = root.shard.node
        node.cpu.per_object(1, factor=1.5)
        part = root.page_for(sub)
        existing = part.table.get(key)
        if existing is not None:
            old_value, old_sub, old_bytes = existing
            if combine and self.combiner is not None:
                new_value = self.combiner(old_value, value)
            else:
                new_value = value
            part.table[key] = (new_value, old_sub, old_bytes)
            self.stats.combines += 1
            return
        entry_bytes = (
            nbytes
            if nbytes is not None
            else estimate_bytes(key) + estimate_bytes(value)
        ) + ENTRY_OVERHEAD
        attempts = 0
        while True:
            offset = part.try_reserve(entry_bytes)
            if offset is not None:
                part.table[key] = (value, sub, entry_bytes)
                part.sync_page_accounting()
                node.cpu.memcpy(entry_bytes)
                self.stats.inserts += 1
                return
            part = self._grow(root, part, sub, attempts)
            attempts += 1

    def _grow(
        self, root: _RootPartition, part: HashPartitionPage, sub: int, attempts: int
    ) -> HashPartitionPage:
        """Make room for an insert: split if a page is available, else spill.

        After a few unproductive splits (hash-collision pathologies) the
        partition is force-spilled so the insert always terminates.
        """
        if attempts >= 3:
            root.spill_one()
            return root.page_for(sub)
        try:
            root.split(part)
        except BufferPoolFullError:
            root.spill_one()
        return root.page_for(sub)

    # ------------------------------------------------------------------
    # finalization: re-aggregate the spilled partials
    # ------------------------------------------------------------------

    def _detach(self) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.dataset.active_writers -= 1
        self.dataset.attributes.note_service_detached(
            self.dataset.active_readers, self.dataset.active_writers
        )

    def _read_spilled(self, root: _RootPartition, page: Page) -> list:
        """Fetch a spilled page's partial result, charging reload costs.

        Reads go straight from the set's file into transient merge memory
        (not through the pool), so re-aggregation cannot deadlock against
        the pinned live pages.  Rebuilding hash structure from spilled data
        pays the paper's ``wr > 1`` penalty as extra CPU time.
        """
        node = root.shard.node
        if page.in_memory:
            records = list(page.records)
        else:
            records, _cost = root.shard.file.read_page(page.page_id)
            penalty = self.dataset.attributes.random_reread_penalty - 1.0
            if penalty > 0:
                node.cpu.compute(
                    penalty * page.size / node.disks.disks[0].read_bandwidth
                )
        self.stats.reloads += 1
        return records

    def finalize(self, max_rounds_per_spill: int = 10) -> None:
        """Fold every spilled partial result back into the live tables.

        Used by the join/broadcast map services, which need the whole map
        resident for random lookups.  Re-inserting may spill again under
        pressure; a bound on total rounds turns a map that simply does not
        fit into a clear error instead of thrashing forever.
        """
        if self._finalized:
            return
        budget = max(1, sum(len(r.spilled_pages) for r in self.roots)) * max_rounds_per_spill
        for root in self.roots:
            rounds = 0
            while root.spilled_pages:
                rounds += 1
                if rounds > budget:
                    raise BufferPoolFullError(
                        f"hash map for set {self.dataset.name!r} does not fit "
                        f"in the buffer pool even after {rounds - 1} "
                        f"re-aggregation rounds"
                    )
                page = root.spilled_pages.pop(0)
                records = self._read_spilled(root, page)
                if page in root.shard.pages and not page.pinned:
                    root.shard.drop_page(page)
                for key, value, nbytes in records:
                    self._put(key, value, nbytes, combine=True)
        self._detach()

    def items(self) -> "typing.Iterator[tuple[object, object]]":
        """Stream the final (key, value) pairs.

        Re-aggregation is per root partition: each root's live tables and
        spilled partials merge in transient memory (the paper's final
        aggregation stage streams its output onward), so results larger
        than the buffer pool still complete — just slowly, because every
        spilled page is re-read and rebuilt.
        """
        self._detach()
        for root in self.roots:
            node = root.shard.node
            merged: dict = {}
            for part in root.live_pages():
                for key, (value, _sub, _nbytes) in part.table.items():
                    if key in merged and self.combiner is not None:
                        merged[key] = self.combiner(merged[key], value)
                    else:
                        merged[key] = value
            for page in root.spilled_pages:
                for key, value, _nbytes in self._read_spilled(root, page):
                    if key in merged and self.combiner is not None:
                        merged[key] = self.combiner(merged[key], value)
                    else:
                        merged[key] = value
            node.cpu.per_object(len(merged))
            yield from merged.items()

    def __len__(self) -> int:
        total = 0
        for root in self.roots:
            for part in root.live_pages():
                total += len(part.table)
            total += sum(len(p.records) for p in root.spilled_pages)
        return total

    @property
    def num_spilled_pages(self) -> int:
        return self.stats.spills

    def release(self) -> None:
        """Unpin every live page so the set can be evicted or dropped."""
        for root in self.roots:
            for part in root.live_pages():
                if not part.spilled and part.page.pinned:
                    part.page.records = [
                        (k, v[0], v[2] - ENTRY_OVERHEAD)
                        for k, v in part.table.items()
                    ]
                    root.shard.seal_page(part.page)
                    root.shard.unpin_page(part.page)
                    part.spilled = True
