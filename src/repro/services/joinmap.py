"""The join map service (paper Sec. 8).

Builds a *partitioned* hash table distributedly from shuffled data: each
shuffle partition's records are folded into a hash-service table on the
partition's home node.  A partitioned hash join then probes the local
table only.
"""

from __future__ import annotations

import typing

from repro.services.hashsvc import VirtualHashBuffer
from repro.util import estimate_bytes

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.services.shuffle import ShuffleService


def _concat(old: list, new: list) -> list:
    return old + new


class JoinMap:
    """One hash table per shuffle partition, resident on its home node."""

    def __init__(self, cluster: "PangeaCluster", name: str, num_partitions: int) -> None:
        self.cluster = cluster
        self.name = name
        self.num_partitions = num_partitions
        self.buffers: dict[int, VirtualHashBuffer] = {}
        self._sets: list[str] = []

    def lookup(self, partition_id: int, key: object) -> list:
        buffer = self.buffers[partition_id]
        found = buffer.find(key)
        return found if found is not None else []

    def num_keys(self, partition_id: int) -> int:
        return len(self.buffers[partition_id])

    def drop(self) -> None:
        for buffer in self.buffers.values():
            buffer.release()
        for set_name in self._sets:
            dataset = self.cluster.get_set(set_name)
            dataset.end_lifetime()
            self.cluster.drop_set(set_name)
        self.buffers.clear()
        self._sets.clear()


def build_join_map(
    shuffle: "ShuffleService",
    key_fn: "typing.Callable[[object], object]",
    name: str | None = None,
    num_root_partitions: int = 4,
    page_size: int | None = None,
) -> JoinMap:
    """Construct the partitioned hash table from a finished shuffle.

    ``page_size`` sizes the hash pages (default: the shuffle's page size);
    pick a smaller size when many partition maps must stay resident at once.
    """
    cluster = shuffle.cluster
    name = name or f"{shuffle.name}_joinmap"
    result = JoinMap(cluster, name, shuffle.num_partitions)
    for partition_id in range(shuffle.num_partitions):
        partition_set = shuffle.partition_set(partition_id)
        home_id = sorted(partition_set.shards)[0]
        set_name = f"{name}_p{partition_id}"
        dataset = cluster.create_set(
            set_name,
            durability="write-back",
            page_size=page_size or partition_set.page_size,
            nodes=[home_id],
            object_bytes=partition_set.object_bytes,
        )
        buffer = VirtualHashBuffer(
            dataset, num_root_partitions=num_root_partitions, combiner=_concat
        )
        for iterator in partition_set.get_page_iterators(1):
            for page in iterator:
                for record in page.records:
                    key = key_fn(record)
                    buffer.insert(
                        key,
                        [record],
                        nbytes=estimate_bytes(key) + partition_set.object_bytes,
                    )
        buffer.finalize()
        result.buffers[partition_id] = buffer
        result._sets.append(set_name)
    cluster.barrier()
    return result
