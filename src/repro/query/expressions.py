"""A small expression DSL for predicates and projections over dict records.

>>> predicate = (col("l_quantity") < 24) & (col("l_discount") >= 0.05)
>>> predicate({"l_quantity": 10, "l_discount": 0.06})
True
"""

from __future__ import annotations

import operator
from typing import Callable


class Expr:
    """A callable expression evaluated against one record (a dict)."""

    def __init__(self, fn: Callable[[dict], object], description: str = "expr") -> None:
        self._fn = fn
        self.description = description

    def __call__(self, record: dict) -> object:
        return self._fn(record)

    # -- arithmetic ----------------------------------------------------

    def _binary(self, other: object, op, symbol: str) -> "Expr":
        other_expr = other if isinstance(other, Expr) else lit(other)
        return Expr(
            lambda record: op(self(record), other_expr(record)),
            f"({self.description} {symbol} {other_expr.description})",
        )

    def __add__(self, other):
        return self._binary(other, operator.add, "+")

    def __radd__(self, other):
        return lit(other)._binary(self, operator.add, "+")

    def __sub__(self, other):
        return self._binary(other, operator.sub, "-")

    def __rsub__(self, other):
        return lit(other)._binary(self, operator.sub, "-")

    def __mul__(self, other):
        return self._binary(other, operator.mul, "*")

    def __rmul__(self, other):
        return lit(other)._binary(self, operator.mul, "*")

    def __truediv__(self, other):
        return self._binary(other, operator.truediv, "/")

    # -- comparisons ---------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self._binary(other, operator.eq, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binary(other, operator.ne, "!=")

    def __lt__(self, other):
        return self._binary(other, operator.lt, "<")

    def __le__(self, other):
        return self._binary(other, operator.le, "<=")

    def __gt__(self, other):
        return self._binary(other, operator.gt, ">")

    def __ge__(self, other):
        return self._binary(other, operator.ge, ">=")

    def __hash__(self) -> int:  # __eq__ override disables the default
        return id(self)

    # -- boolean connectives --------------------------------------------

    def __and__(self, other):
        other_expr = other if isinstance(other, Expr) else lit(other)
        return Expr(
            lambda record: bool(self(record)) and bool(other_expr(record)),
            f"({self.description} AND {other_expr.description})",
        )

    def __or__(self, other):
        other_expr = other if isinstance(other, Expr) else lit(other)
        return Expr(
            lambda record: bool(self(record)) or bool(other_expr(record)),
            f"({self.description} OR {other_expr.description})",
        )

    def __invert__(self):
        return Expr(lambda record: not self(record), f"(NOT {self.description})")

    # -- helpers ---------------------------------------------------------

    def isin(self, values) -> "Expr":
        values = set(values)
        return Expr(lambda record: self(record) in values, f"({self.description} IN ...)")

    def between(self, low, high) -> "Expr":
        return Expr(
            lambda record: low <= self(record) < high,
            f"({self.description} BETWEEN {low} AND {high})",
        )

    def startswith(self, prefix: str) -> "Expr":
        return Expr(
            lambda record: str(self(record)).startswith(prefix),
            f"({self.description} LIKE '{prefix}%')",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expr({self.description})"


def col(name: str) -> Expr:
    """Reference a record field."""
    return Expr(lambda record: record[name], name)


def lit(value: object) -> Expr:
    """A constant."""
    if isinstance(value, Expr):
        return value
    return Expr(lambda record: value, repr(value))
