"""Logical plan nodes (the operator library of paper Table 2).

Plans are small immutable trees; the :class:`~repro.query.scheduler.
QueryScheduler` walks them, picks physical strategies (co-partitioned /
broadcast / repartition joins, two-stage aggregation), and executes them
on the Pangea services.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

Record = dict
KeyFn = typing.Callable[[Record], object]


class PlanNode:
    """Base class for plan nodes; supports a fluent builder style."""

    def filter(self, predicate) -> "FilterNode":
        return FilterNode(self, predicate)

    def map(self, fn) -> "MapNode":
        return MapNode(self, fn)

    def flat_map(self, fn) -> "FlatMapNode":
        return FlatMapNode(self, fn)

    def join(
        self,
        other: "PlanNode",
        left_key: KeyFn,
        right_key: KeyFn,
        merge,
        left_key_name: str | None = None,
        right_key_name: str | None = None,
        how: str = "inner",
    ) -> "JoinNode":
        return JoinNode(
            self, other, left_key, right_key, merge,
            left_key_name=left_key_name, right_key_name=right_key_name, how=how,
        )

    def aggregate(
        self,
        key_fn: KeyFn,
        seed_fn,
        merge_fn,
        final_fn,
    ) -> "AggregateNode":
        return AggregateNode(self, key_fn, seed_fn, merge_fn, final_fn)

    def order_by(self, key_fn, reverse: bool = False) -> "OrderByNode":
        return OrderByNode(self, key_fn, reverse)

    def limit(self, count: int) -> "LimitNode":
        return LimitNode(self, count)


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """Scan a locality set; the scheduler may substitute a better replica."""

    set_name: str


@dataclass(frozen=True)
class FilterNode(PlanNode):
    child: PlanNode
    predicate: typing.Callable[[Record], bool]


@dataclass(frozen=True)
class MapNode(PlanNode):
    child: PlanNode
    fn: typing.Callable[[Record], Record]


@dataclass(frozen=True)
class FlatMapNode(PlanNode):
    """The paper's flatten operator: one record in, many records out."""

    child: PlanNode
    fn: typing.Callable[[Record], typing.Iterable[Record]]


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """An equi-join.

    ``left_key_name``/``right_key_name`` let the scheduler match the join
    keys against replica partition schemes (the statistics service) and
    pipeline a local join when both inputs are co-partitioned.

    ``how`` supports ``"inner"``, ``"left_semi"`` (left rows with a match),
    ``"left_anti"`` (left rows without a match), and ``"left_outer"``
    (unmatched left rows merge with ``None``).
    """

    left: PlanNode
    right: PlanNode
    left_key: KeyFn
    right_key: KeyFn
    merge: typing.Callable[[Record, "Record | None"], Record]
    left_key_name: str | None = None
    right_key_name: str | None = None
    how: str = "inner"

    def __post_init__(self) -> None:
        if self.how not in ("inner", "left_semi", "left_anti", "left_outer"):
            raise ValueError(f"unsupported join type {self.how!r}")


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """Two-stage hash aggregation (local stage + final stage).

    ``seed_fn(record)`` lifts one record into an accumulator and
    ``merge_fn(a, b)`` combines accumulators — the same combiner folds
    records locally and merges partials across nodes.  ``final_fn(key,
    acc)`` emits the output record.
    """

    child: PlanNode
    key_fn: KeyFn
    seed_fn: typing.Callable[[Record], object]
    merge_fn: typing.Callable[[object, object], object]
    final_fn: typing.Callable[[object, object], Record]


@dataclass(frozen=True)
class OrderByNode(PlanNode):
    child: PlanNode
    key_fn: KeyFn
    reverse: bool = False


@dataclass(frozen=True)
class LimitNode(PlanNode):
    child: PlanNode
    count: int


def peel_pipeline(node: PlanNode) -> tuple[PlanNode, list]:
    """Split a chain of record-at-a-time steps off its base.

    Returns ``(base, steps)`` where ``steps`` is the ordered list of
    filter/map/flat-map stages to pipeline over the base's pages — the
    paper's Pipeline component.
    """
    steps: list = []
    while True:
        if isinstance(node, FilterNode):
            steps.append(("filter", node.predicate))
            node = node.child
        elif isinstance(node, MapNode):
            steps.append(("map", node.fn))
            node = node.child
        elif isinstance(node, FlatMapNode):
            steps.append(("flatmap", node.fn))
            node = node.child
        else:
            steps.reverse()
            return node, steps
