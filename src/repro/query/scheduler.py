"""The query scheduler (paper Table 2: QueryScheduling).

The scheduler walks a logical plan and chooses physical strategies:

* **Replica selection** — for a scan feeding a join, it consults the
  manager's statistics service for a replica of the set partitioned on the
  join key (paper Sec. 9.1.2).
* **Co-partitioned join** — when both join inputs resolve to replicas with
  matching partition schemes, the join pipelines locally on every node
  with no shuffle (the source of the paper's 20× TPC-H speedups).
* **Broadcast join** — a small build side is broadcast to every node.
* **Repartition join** — otherwise both sides shuffle by join key through
  the shuffle service.
* **Two-stage aggregation** — a local hash-service stage per node, then a
  partial shuffle and a final stage.

Two engines execute the physical stages.  The default *vectorized* engine
(``vectorized=True``) runs batch-at-a-time kernels from
:mod:`repro.query.batch` and executes per-node stage work concurrently on
real threads through :class:`repro.compute.stages.StageExecutor`.  The
record-at-a-time path is retained as the oracle: both engines produce
bit-identical results, simulated seconds, and strategy decisions (the
golden suite in ``tests/test_query_golden.py`` enforces this).  Under an
enabled fault injector the scheduler always takes the record-at-a-time
path, because fault schedules are defined by the per-record global event
order that batching would regroup.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.compute.stages import StageExecutor
from repro.query.batch import (
    DEFAULT_BATCH_SIZE,
    BatchStepRunner,
    RecordBatch,
    build_batch,
    build_hash_table,
    iter_chunks,
    probe_batch,
)
from repro.query.operators import (
    AggregateNode,
    FilterNode,
    FlatMapNode,
    JoinNode,
    LimitNode,
    MapNode,
    OrderByNode,
    PlanNode,
    ScanNode,
    peel_pipeline,
)
from repro.query.pipeline import run_steps, scan_shard_records
from repro.sim.devices import MB
from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet


@dataclass
class SchedulerMetrics:
    """Physical decisions taken while executing plans."""

    copartitioned_joins: int = 0
    broadcast_joins: int = 0
    repartition_joins: int = 0
    replica_substitutions: int = 0
    local_agg_stages: int = 0
    shuffled_bytes: int = 0
    #: Vectorized-engine counters (all zero on the record-at-a-time path).
    batches_processed: int = 0
    batch_records: int = 0
    stages_run: int = 0
    stage_tasks: int = 0
    parallel_stages: int = 0

    @property
    def mean_batch_fill(self) -> float:
        """Average records per processed batch."""
        if self.batches_processed == 0:
            return 0.0
        return self.batch_records / self.batches_processed

    @property
    def mean_stage_parallelism(self) -> float:
        """Average per-node tasks per executed stage."""
        if self.stages_run == 0:
            return 0.0
        return self.stage_tasks / self.stages_run

    def decision_counters(self) -> dict:
        """The strategy decisions both engines must agree on exactly."""
        return {
            "copartitioned_joins": self.copartitioned_joins,
            "broadcast_joins": self.broadcast_joins,
            "repartition_joins": self.repartition_joins,
            "replica_substitutions": self.replica_substitutions,
            "local_agg_stages": self.local_agg_stages,
            "shuffled_bytes": self.shuffled_bytes,
        }


@dataclass
class StageResult:
    """Per-node record lists flowing between stages."""

    per_node: dict = field(default_factory=dict)

    def total_records(self) -> int:
        return sum(len(records) for records in self.per_node.values())

    def all_records(self) -> list:
        merged: list = []
        for node_id in sorted(self.per_node):
            merged.extend(self.per_node[node_id])
        return merged


class QueryScheduler:
    """Execute logical plans on a Pangea cluster."""

    def __init__(
        self,
        cluster: "PangeaCluster",
        broadcast_threshold: int = 64 * MB,
        object_bytes: int = 128,
        vectorized: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be positive")
        self.cluster = cluster
        self.broadcast_threshold = broadcast_threshold
        self.object_bytes = object_bytes
        self.vectorized = vectorized
        self.batch_size = batch_size
        self.metrics = SchedulerMetrics()
        self._executor = StageExecutor(cluster)
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, plan: PlanNode) -> list:
        """Run the plan; return the collected result records."""
        result = self._exec(plan)
        for node_id, records in result.per_node.items():
            if records:
                nbytes = len(records) * self.object_bytes
                self.cluster.nodes[node_id].network.transfer(nbytes)
        self.cluster.barrier()
        return result.all_records()

    # ------------------------------------------------------------------
    # engine selection and stage bookkeeping
    # ------------------------------------------------------------------

    def _use_batch(self) -> bool:
        """Whether the vectorized kernels may run right now.

        Rate-based faults draw from one shared seeded RNG whose draw
        order is the per-record global event order, so an enabled
        injector always routes execution through the oracle path.
        """
        if not self.vectorized:
            return False
        for node in self.cluster.nodes:
            injector = getattr(node, "fault_injector", None)
            if injector is not None and injector.enabled:
                return False
        return True

    def _run_stage(self, name: str, tasks: dict) -> dict:
        results = self._executor.run(name, tasks)
        self.metrics.stages_run += 1
        self.metrics.stage_tasks += len(tasks)
        if self._executor.last_parallel:
            self.metrics.parallel_stages += 1
        return results

    def _note_batches(self, batches: int, records: int) -> None:
        self.metrics.batches_processed += batches
        self.metrics.batch_records += records

    # ------------------------------------------------------------------
    # recursive execution
    # ------------------------------------------------------------------

    def _exec(self, plan: PlanNode) -> StageResult:
        base, steps = peel_pipeline(plan)
        if isinstance(base, ScanNode):
            return self._exec_scan(base, steps)
        if isinstance(base, JoinNode):
            return self._apply_steps(self._exec_join(base), steps)
        if isinstance(base, AggregateNode):
            return self._apply_steps(self._exec_aggregate(base), steps)
        if isinstance(base, OrderByNode):
            return self._apply_steps(self._exec_orderby(base), steps)
        if isinstance(base, LimitNode):
            return self._apply_steps(self._exec_limit(base), steps)
        raise TypeError(f"cannot execute plan node {type(base).__name__}")

    def _apply_steps(self, stage: StageResult, steps: list) -> StageResult:
        if not steps:
            return stage
        out = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda nid=node_id, recs=records: self._steps_task(nid, recs, steps)
                )
                for node_id, records in stage.per_node.items()
            }
            results = self._run_stage("pipeline", tasks)
            for node_id in stage.per_node:
                records, batches, fed = results[node_id]
                out.per_node[node_id] = records
                self._note_batches(batches, fed)
        else:
            for node_id, records in stage.per_node.items():
                node = self.cluster.nodes[node_id]
                out.per_node[node_id] = list(run_steps(iter(records), steps, node))
        return out

    def _steps_task(self, node_id: int, records: list, steps: list):
        runner = BatchStepRunner(self.cluster.nodes[node_id], steps)
        out: list = []
        for chunk in iter_chunks(records, self.batch_size):
            out.extend(runner.feed(chunk))
        runner.finish()
        return out, runner.batches, runner.records_in

    # ------------------------------------------------------------------
    # scans and replica selection
    # ------------------------------------------------------------------

    def _find_replica(self, set_name: str, key_name: str) -> "LocalitySet | None":
        """Statistics-service lookup: a replica partitioned on ``key_name``."""
        manager = self.cluster.manager
        for replica in manager.replicas_of(set_name):
            scheme = replica.partition_scheme
            if scheme is not None and scheme.key_name == key_name:
                return replica
        return None

    def _exec_scan(
        self,
        scan: ScanNode,
        steps: list,
        replica: "LocalitySet | None" = None,
    ) -> StageResult:
        dataset = replica or self.cluster.get_set(scan.set_name)
        result = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda shard=dataset.shards[node_id]: self._scan_task(shard, steps)
                )
                for node_id in sorted(dataset.shards)
            }
            results = self._run_stage("scan", tasks)
            for node_id in sorted(dataset.shards):
                records, batches, fed = results[node_id]
                result.per_node[node_id] = records
                self._note_batches(batches, fed)
        else:
            for node_id in sorted(dataset.shards):
                shard = dataset.shards[node_id]
                records = scan_shard_records(shard)
                result.per_node[node_id] = list(
                    run_steps(records, steps, shard.node)
                )
        self.cluster.barrier()
        return result

    def _scan_task(self, shard, steps: list):
        """One node's batched scan: each pinned page is one record batch."""
        from repro.services.sequential import make_shard_iterators

        runner = BatchStepRunner(shard.node, steps)
        out: list = []
        for iterator in make_shard_iterators(shard, 1):
            for page in iterator:
                out.extend(runner.feed(list(page.records)))
        runner.finish()
        return out, runner.batches, runner.records_in

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _exec_join(self, join: JoinNode) -> StageResult:
        left_base, left_steps = peel_pipeline(join.left)
        right_base, right_steps = peel_pipeline(join.right)
        copart = self._copartitioned_replicas(join, left_base, right_base)
        if copart is not None:
            left_rep, right_rep = copart
            self.metrics.copartitioned_joins += 1
            left_stage = self._exec_scan(left_base, left_steps, replica=left_rep)
            right_stage = self._exec_scan(right_base, right_steps, replica=right_rep)
            return self._local_join(join, left_stage, right_stage)

        right_stage = self._exec(join.right)
        right_bytes = right_stage.total_records() * self.object_bytes
        left_stage = self._exec(join.left)
        if right_bytes <= self.broadcast_threshold:
            self.metrics.broadcast_joins += 1
            return self._broadcast_join(join, left_stage, right_stage)
        self.metrics.repartition_joins += 1
        return self._repartition_join(join, left_stage, right_stage)

    def _copartitioned_replicas(self, join, left_base, right_base):
        """Both sides scan base sets with matching partitioned replicas?"""
        if not (isinstance(left_base, ScanNode) and isinstance(right_base, ScanNode)):
            return None
        if join.left_key_name is None or join.right_key_name is None:
            return None
        left_rep = self._find_replica(left_base.set_name, join.left_key_name)
        right_rep = self._find_replica(right_base.set_name, join.right_key_name)
        if left_rep is None or right_rep is None:
            return None
        if not left_rep.partition_scheme.co_partitioned_with(right_rep.partition_scheme):
            return None
        if sorted(left_rep.shards) != sorted(right_rep.shards):
            return None
        self.metrics.replica_substitutions += 2
        return left_rep, right_rep

    def _probe(self, join: JoinNode, left_records, table, node) -> list:
        """Probe-side join semantics shared by every strategy."""
        out: list = []
        count = 0
        for record in left_records:
            count += 1
            matches = table.get(join.left_key(record))
            if join.how == "inner":
                if matches:
                    out.extend(join.merge(record, m) for m in matches)
            elif join.how == "left_semi":
                if matches:
                    out.append(record)
            elif join.how == "left_anti":
                if not matches:
                    out.append(record)
            else:  # left_outer
                if matches:
                    out.extend(join.merge(record, m) for m in matches)
                else:
                    out.append(join.merge(record, None))
        node.cpu.per_object(count, factor=2.0)
        return out

    @staticmethod
    def _build_table(records, key_fn, node) -> dict:
        table = build_hash_table(records, key_fn)
        node.cpu.per_object(len(records), factor=1.5)
        return table

    def _join_task(self, join, left_records, right_records, node) -> list:
        table = build_batch(right_records, join.right_key, node)
        return probe_batch(join, left_records, table, node)

    def _local_join(self, join, left_stage, right_stage) -> StageResult:
        result = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda nid=node_id: self._join_task(
                        join,
                        left_stage.per_node[nid],
                        right_stage.per_node.get(nid, []),
                        self.cluster.nodes[nid],
                    )
                )
                for node_id in sorted(left_stage.per_node)
            }
            results = self._run_stage("local-join", tasks)
            for node_id in sorted(left_stage.per_node):
                result.per_node[node_id] = results[node_id]
        else:
            for node_id in sorted(left_stage.per_node):
                node = self.cluster.nodes[node_id]
                table = self._build_table(
                    right_stage.per_node.get(node_id, []), join.right_key, node
                )
                result.per_node[node_id] = self._probe(
                    join, left_stage.per_node[node_id], table, node
                )
        self.cluster.barrier()
        return result

    def _broadcast_join(self, join, left_stage, right_stage) -> StageResult:
        all_right: list = right_stage.all_records()
        num_nodes = self.cluster.num_nodes
        for node_id, records in right_stage.per_node.items():
            if records and num_nodes > 1:
                nbytes = len(records) * self.object_bytes * (num_nodes - 1)
                self.cluster.nodes[node_id].network.transfer(nbytes)
        self.cluster.barrier()
        # Every node would build the identical table from the broadcast
        # records — build it once and share it read-only, while each node
        # still pays the same per_object(len(all_right), 1.5) build charge.
        table = build_hash_table(all_right, join.right_key)
        result = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda nid=node_id: self._broadcast_probe_task(
                        join,
                        left_stage.per_node[nid],
                        len(all_right),
                        table,
                        self.cluster.nodes[nid],
                    )
                )
                for node_id in sorted(left_stage.per_node)
            }
            results = self._run_stage("broadcast-join", tasks)
            for node_id in sorted(left_stage.per_node):
                result.per_node[node_id] = results[node_id]
        else:
            for node_id in sorted(left_stage.per_node):
                node = self.cluster.nodes[node_id]
                node.cpu.per_object(len(all_right), factor=1.5)
                result.per_node[node_id] = self._probe(
                    join, left_stage.per_node[node_id], table, node
                )
        self.cluster.barrier()
        return result

    def _broadcast_probe_task(self, join, left_records, build_count, table, node):
        node.cpu.per_object(build_count, factor=1.5)
        return probe_batch(join, left_records, table, node)

    def _repartition_join(self, join, left_stage, right_stage) -> StageResult:
        left_parts = self._shuffle(left_stage, join.left_key)
        right_parts = self._shuffle(right_stage, join.right_key)
        result = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda nid=node_id: self._join_task(
                        join,
                        left_parts.per_node.get(nid, []),
                        right_parts.per_node.get(nid, []),
                        self.cluster.nodes[nid],
                    )
                )
                for node_id in sorted(left_parts.per_node)
            }
            results = self._run_stage("repartition-join", tasks)
            for node_id in sorted(left_parts.per_node):
                result.per_node[node_id] = results[node_id]
        else:
            for node_id in sorted(left_parts.per_node):
                node = self.cluster.nodes[node_id]
                table = self._build_table(
                    right_parts.per_node.get(node_id, []), join.right_key, node
                )
                result.per_node[node_id] = self._probe(
                    join, left_parts.per_node.get(node_id, []), table, node
                )
        self.cluster.barrier()
        return result

    def _shuffle(
        self, stage: StageResult, key_fn, num_partitions: int | None = None
    ) -> StageResult:
        """Repartition a stage by key hash through the shuffle service."""
        from repro.services.shuffle import ShuffleService

        self._temp_counter += 1
        num_nodes = self.cluster.num_nodes
        if num_partitions is None:
            num_partitions = num_nodes
        service = ShuffleService(
            self.cluster,
            f"__qshuffle{self._temp_counter}",
            num_partitions=num_partitions,
            object_bytes=self.object_bytes,
        )
        use_batch = self._use_batch()
        for node_id, records in stage.per_node.items():
            node = self.cluster.nodes[node_id]
            if use_batch:
                for chunk in iter_chunks(records, self.batch_size):
                    batch = RecordBatch(chunk)
                    service.write_batch(
                        node_id,
                        chunk,
                        batch.partitions(key_fn, num_partitions),
                        worker_node=node,
                        nbytes=self.object_bytes,
                    )
                    self._note_batches(1, len(chunk))
                self.metrics.shuffled_bytes += len(records) * self.object_bytes
            else:
                for record in records:
                    partition = stable_hash(key_fn(record)) % num_partitions
                    service.buffer_for(node_id, partition, worker_node=node).add_object(
                        record, self.object_bytes
                    )
                    self.metrics.shuffled_bytes += self.object_bytes
        service.finish_writing()
        self.cluster.barrier()
        result = StageResult()
        # Several partitions resolve to the same home node whenever
        # num_partitions > num_nodes: group the reads per home and merge
        # the record lists instead of overwriting per_node[home_id].
        homes: dict[int, list] = {}
        for partition in range(num_partitions):
            dataset = service.partition_set(partition)
            homes.setdefault(sorted(dataset.shards)[0], []).append(dataset)
        if use_batch:
            tasks = {
                home_id: (lambda sets=datasets: self._shuffle_read_task(sets))
                for home_id, datasets in homes.items()
            }
            results = self._run_stage("shuffle-read", tasks)
            for home_id in sorted(homes):
                result.per_node[home_id] = results[home_id]
        else:
            for home_id in sorted(homes):
                result.per_node[home_id] = self._shuffle_read_task(homes[home_id])
        service.drop()
        self.cluster.barrier()
        return result

    @staticmethod
    def _shuffle_read_task(datasets: list) -> list:
        records: list = []
        for dataset in datasets:
            for node_id in sorted(dataset.shards):
                records.extend(scan_shard_records(dataset.shards[node_id]))
        return records

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def _exec_aggregate(self, agg: AggregateNode) -> StageResult:
        from repro.services.hashsvc import VirtualHashBuffer

        child = self._exec(agg.child)
        self.metrics.local_agg_stages += 1
        # Hash pages must hold a healthy number of entries even when
        # logical record sizes are inflated by scale-down factors.
        agg_page_size = max(4 * MB, 64 * self.object_bytes)
        # Local stage: one hash-service buffer per node.
        partials = StageResult()
        if self._use_batch():
            # The manager is not thread-safe: create every per-node temp
            # set on the driver first (same names and order as the serial
            # path), run the local stages in parallel, drop after joining.
            temps: dict[int, "LocalitySet"] = {}
            for node_id, records in child.per_node.items():
                if not records:
                    continue
                self._temp_counter += 1
                temps[node_id] = self.cluster.create_set(
                    f"__agg{self._temp_counter}_n{node_id}",
                    durability="write-back",
                    page_size=agg_page_size,
                    nodes=[node_id],
                    object_bytes=self.object_bytes,
                )
            tasks = {
                node_id: (
                    lambda nid=node_id, temp=temp: self._local_agg_task(
                        agg, child.per_node[nid], temp
                    )
                )
                for node_id, temp in temps.items()
            }
            results = self._run_stage("local-agg", tasks)
            for node_id in temps:
                pairs, batches, fed = results[node_id]
                partials.per_node[node_id] = pairs
                self._note_batches(batches, fed)
            for node_id, temp in temps.items():
                temp.end_lifetime()
                self.cluster.drop_set(temp.name)
        else:
            for node_id, records in child.per_node.items():
                if not records:
                    continue
                self._temp_counter += 1
                temp_name = f"__agg{self._temp_counter}_n{node_id}"
                temp = self.cluster.create_set(
                    temp_name,
                    durability="write-back",
                    page_size=agg_page_size,
                    nodes=[node_id],
                    object_bytes=self.object_bytes,
                )
                buffer = VirtualHashBuffer(
                    temp, num_root_partitions=4, combiner=agg.merge_fn
                )
                for record in records:
                    key = agg.key_fn(record)
                    buffer.insert(key, agg.seed_fn(record), nbytes=self.object_bytes)
                partials.per_node[node_id] = list(buffer.items())
                buffer.release()
                temp.end_lifetime()
                self.cluster.drop_set(temp_name)
        self.cluster.barrier()

        # Final stage: partials route to key-owner nodes and merge there.
        num_nodes = self.cluster.num_nodes
        routed: dict = {nid: [] for nid in range(num_nodes)}
        for node_id, pairs in partials.per_node.items():
            node = self.cluster.nodes[node_id]
            moved = 0
            for key, acc in pairs:
                owner = stable_hash(key) % num_nodes
                routed[owner].append((key, acc))
                if owner != node_id:
                    moved += self.object_bytes
            if moved:
                node.network.transfer(moved)
        self.cluster.barrier()
        result = StageResult()
        if self._use_batch():
            tasks = {
                node_id: (
                    lambda nid=node_id: self._final_agg_task(
                        agg, routed[nid], self.cluster.nodes[nid]
                    )
                )
                for node_id, pairs in routed.items()
                if pairs
            }
            results = self._run_stage("final-agg", tasks)
            for node_id in routed:
                if node_id in results:
                    result.per_node[node_id] = results[node_id]
        else:
            for node_id, pairs in routed.items():
                if not pairs:
                    continue
                node = self.cluster.nodes[node_id]
                result.per_node[node_id] = self._final_agg_task(agg, pairs, node)
        self.cluster.barrier()
        return result

    def _local_agg_task(self, agg, records: list, temp: "LocalitySet"):
        from repro.services.hashsvc import VirtualHashBuffer

        buffer = VirtualHashBuffer(temp, num_root_partitions=4, combiner=agg.merge_fn)
        key_fn = agg.key_fn
        seed_fn = agg.seed_fn
        batches = 0
        for chunk in iter_chunks(records, self.batch_size):
            buffer.insert_many(
                [key_fn(record) for record in chunk],
                [seed_fn(record) for record in chunk],
                nbytes=self.object_bytes,
            )
            batches += 1
        pairs = list(buffer.items())
        buffer.release()
        return pairs, batches, len(records)

    @staticmethod
    def _final_agg_task(agg, pairs: list, node) -> list:
        merged: dict = {}
        merge_fn = agg.merge_fn
        for key, acc in pairs:
            if key in merged:
                merged[key] = merge_fn(merged[key], acc)
            else:
                merged[key] = acc
        node.cpu.per_object(len(pairs), factor=1.5)
        return [agg.final_fn(key, acc) for key, acc in merged.items()]

    # ------------------------------------------------------------------
    # ordering and limits (driver-side)
    # ------------------------------------------------------------------

    def _exec_orderby(self, node: OrderByNode) -> StageResult:
        child = self._exec(node.child)
        records = child.all_records()
        driver = self.cluster.nodes[0]
        for node_id, recs in child.per_node.items():
            if node_id != 0 and recs:
                self.cluster.nodes[node_id].network.transfer(
                    len(recs) * self.object_bytes
                )
        records.sort(key=node.key_fn, reverse=node.reverse)
        import math

        if records:
            driver.cpu.per_object(
                int(len(records) * max(1.0, math.log2(len(records)))), factor=0.5
            )
        self.cluster.barrier()
        return StageResult(per_node={0: records})

    def _exec_limit(self, node: LimitNode) -> StageResult:
        child = self._exec(node.child)
        records = child.all_records()[: node.count]
        # Every child record moves to the driver before the cutoff is
        # applied; charge the same per-node transfers _exec_orderby pays
        # for the identical movement.
        for node_id, recs in child.per_node.items():
            if node_id != 0 and recs:
                self.cluster.nodes[node_id].network.transfer(
                    len(recs) * self.object_bytes
                )
        self.cluster.barrier()
        return StageResult(per_node={0: records})
