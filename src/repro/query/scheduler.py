"""The query scheduler (paper Table 2: QueryScheduling).

The scheduler walks a logical plan and chooses physical strategies:

* **Replica selection** — for a scan feeding a join, it consults the
  manager's statistics service for a replica of the set partitioned on the
  join key (paper Sec. 9.1.2).
* **Co-partitioned join** — when both join inputs resolve to replicas with
  matching partition schemes, the join pipelines locally on every node
  with no shuffle (the source of the paper's 20× TPC-H speedups).
* **Broadcast join** — a small build side is broadcast to every node.
* **Repartition join** — otherwise both sides shuffle by join key through
  the shuffle service.
* **Two-stage aggregation** — a local hash-service stage per node, then a
  partial shuffle and a final stage.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.query.operators import (
    AggregateNode,
    FilterNode,
    FlatMapNode,
    JoinNode,
    LimitNode,
    MapNode,
    OrderByNode,
    PlanNode,
    ScanNode,
    peel_pipeline,
)
from repro.query.pipeline import run_steps, scan_shard_records
from repro.sim.devices import MB
from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet


@dataclass
class SchedulerMetrics:
    """Physical decisions taken while executing plans."""

    copartitioned_joins: int = 0
    broadcast_joins: int = 0
    repartition_joins: int = 0
    replica_substitutions: int = 0
    local_agg_stages: int = 0
    shuffled_bytes: int = 0


@dataclass
class StageResult:
    """Per-node record lists flowing between stages."""

    per_node: dict = field(default_factory=dict)

    def total_records(self) -> int:
        return sum(len(records) for records in self.per_node.values())

    def all_records(self) -> list:
        merged: list = []
        for node_id in sorted(self.per_node):
            merged.extend(self.per_node[node_id])
        return merged


class QueryScheduler:
    """Execute logical plans on a Pangea cluster."""

    def __init__(
        self,
        cluster: "PangeaCluster",
        broadcast_threshold: int = 64 * MB,
        object_bytes: int = 128,
    ) -> None:
        self.cluster = cluster
        self.broadcast_threshold = broadcast_threshold
        self.object_bytes = object_bytes
        self.metrics = SchedulerMetrics()
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def execute(self, plan: PlanNode) -> list:
        """Run the plan; return the collected result records."""
        result = self._exec(plan)
        for node_id, records in result.per_node.items():
            if records:
                nbytes = len(records) * self.object_bytes
                self.cluster.nodes[node_id].network.transfer(nbytes)
        self.cluster.barrier()
        return result.all_records()

    # ------------------------------------------------------------------
    # recursive execution
    # ------------------------------------------------------------------

    def _exec(self, plan: PlanNode) -> StageResult:
        base, steps = peel_pipeline(plan)
        if isinstance(base, ScanNode):
            return self._exec_scan(base, steps)
        if isinstance(base, JoinNode):
            return self._apply_steps(self._exec_join(base), steps)
        if isinstance(base, AggregateNode):
            return self._apply_steps(self._exec_aggregate(base), steps)
        if isinstance(base, OrderByNode):
            return self._apply_steps(self._exec_orderby(base), steps)
        if isinstance(base, LimitNode):
            return self._apply_steps(self._exec_limit(base), steps)
        raise TypeError(f"cannot execute plan node {type(base).__name__}")

    def _apply_steps(self, stage: StageResult, steps: list) -> StageResult:
        if not steps:
            return stage
        out = StageResult()
        for node_id, records in stage.per_node.items():
            node = self.cluster.nodes[node_id]
            out.per_node[node_id] = list(run_steps(iter(records), steps, node))
        return out

    # ------------------------------------------------------------------
    # scans and replica selection
    # ------------------------------------------------------------------

    def _find_replica(self, set_name: str, key_name: str) -> "LocalitySet | None":
        """Statistics-service lookup: a replica partitioned on ``key_name``."""
        manager = self.cluster.manager
        for replica in manager.replicas_of(set_name):
            scheme = replica.partition_scheme
            if scheme is not None and scheme.key_name == key_name:
                return replica
        return None

    def _exec_scan(
        self,
        scan: ScanNode,
        steps: list,
        replica: "LocalitySet | None" = None,
    ) -> StageResult:
        dataset = replica or self.cluster.get_set(scan.set_name)
        result = StageResult()
        for node_id in sorted(dataset.shards):
            shard = dataset.shards[node_id]
            records = scan_shard_records(shard)
            result.per_node[node_id] = list(
                run_steps(records, steps, shard.node)
            )
        self.cluster.barrier()
        return result

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def _exec_join(self, join: JoinNode) -> StageResult:
        left_base, left_steps = peel_pipeline(join.left)
        right_base, right_steps = peel_pipeline(join.right)
        copart = self._copartitioned_replicas(join, left_base, right_base)
        if copart is not None:
            left_rep, right_rep = copart
            self.metrics.copartitioned_joins += 1
            left_stage = self._exec_scan(left_base, left_steps, replica=left_rep)
            right_stage = self._exec_scan(right_base, right_steps, replica=right_rep)
            return self._local_join(join, left_stage, right_stage)

        right_stage = self._exec(join.right)
        right_bytes = right_stage.total_records() * self.object_bytes
        left_stage = self._exec(join.left)
        if right_bytes <= self.broadcast_threshold:
            self.metrics.broadcast_joins += 1
            return self._broadcast_join(join, left_stage, right_stage)
        self.metrics.repartition_joins += 1
        return self._repartition_join(join, left_stage, right_stage)

    def _copartitioned_replicas(self, join, left_base, right_base):
        """Both sides scan base sets with matching partitioned replicas?"""
        if not (isinstance(left_base, ScanNode) and isinstance(right_base, ScanNode)):
            return None
        if join.left_key_name is None or join.right_key_name is None:
            return None
        left_rep = self._find_replica(left_base.set_name, join.left_key_name)
        right_rep = self._find_replica(right_base.set_name, join.right_key_name)
        if left_rep is None or right_rep is None:
            return None
        if not left_rep.partition_scheme.co_partitioned_with(right_rep.partition_scheme):
            return None
        if sorted(left_rep.shards) != sorted(right_rep.shards):
            return None
        self.metrics.replica_substitutions += 2
        return left_rep, right_rep

    def _probe(self, join: JoinNode, left_records, table, node) -> list:
        """Probe-side join semantics shared by every strategy."""
        out: list = []
        count = 0
        for record in left_records:
            count += 1
            matches = table.get(join.left_key(record))
            if join.how == "inner":
                if matches:
                    out.extend(join.merge(record, m) for m in matches)
            elif join.how == "left_semi":
                if matches:
                    out.append(record)
            elif join.how == "left_anti":
                if not matches:
                    out.append(record)
            else:  # left_outer
                if matches:
                    out.extend(join.merge(record, m) for m in matches)
                else:
                    out.append(join.merge(record, None))
        node.cpu.per_object(count, factor=2.0)
        return out

    @staticmethod
    def _build_table(records, key_fn, node) -> dict:
        table: dict = {}
        for record in records:
            table.setdefault(key_fn(record), []).append(record)
        node.cpu.per_object(len(records), factor=1.5)
        return table

    def _local_join(self, join, left_stage, right_stage) -> StageResult:
        result = StageResult()
        for node_id in sorted(left_stage.per_node):
            node = self.cluster.nodes[node_id]
            table = self._build_table(
                right_stage.per_node.get(node_id, []), join.right_key, node
            )
            result.per_node[node_id] = self._probe(
                join, left_stage.per_node[node_id], table, node
            )
        self.cluster.barrier()
        return result

    def _broadcast_join(self, join, left_stage, right_stage) -> StageResult:
        all_right: list = right_stage.all_records()
        num_nodes = self.cluster.num_nodes
        for node_id, records in right_stage.per_node.items():
            if records and num_nodes > 1:
                nbytes = len(records) * self.object_bytes * (num_nodes - 1)
                self.cluster.nodes[node_id].network.transfer(nbytes)
        self.cluster.barrier()
        result = StageResult()
        for node_id in sorted(left_stage.per_node):
            node = self.cluster.nodes[node_id]
            table = self._build_table(all_right, join.right_key, node)
            result.per_node[node_id] = self._probe(
                join, left_stage.per_node[node_id], table, node
            )
        self.cluster.barrier()
        return result

    def _repartition_join(self, join, left_stage, right_stage) -> StageResult:
        left_parts = self._shuffle(left_stage, join.left_key)
        right_parts = self._shuffle(right_stage, join.right_key)
        result = StageResult()
        for node_id in sorted(left_parts.per_node):
            node = self.cluster.nodes[node_id]
            table = self._build_table(
                right_parts.per_node.get(node_id, []), join.right_key, node
            )
            result.per_node[node_id] = self._probe(
                join, left_parts.per_node.get(node_id, []), table, node
            )
        self.cluster.barrier()
        return result

    def _shuffle(self, stage: StageResult, key_fn) -> StageResult:
        """Repartition a stage by key hash through the shuffle service."""
        from repro.services.shuffle import ShuffleService

        self._temp_counter += 1
        num_nodes = self.cluster.num_nodes
        service = ShuffleService(
            self.cluster,
            f"__qshuffle{self._temp_counter}",
            num_partitions=num_nodes,
            object_bytes=self.object_bytes,
        )
        for node_id, records in stage.per_node.items():
            node = self.cluster.nodes[node_id]
            for record in records:
                partition = stable_hash(key_fn(record)) % num_nodes
                service.buffer_for(node_id, partition, worker_node=node).add_object(
                    record, self.object_bytes
                )
                self.metrics.shuffled_bytes += self.object_bytes
        service.finish_writing()
        self.cluster.barrier()
        result = StageResult()
        for partition in range(num_nodes):
            dataset = service.partition_set(partition)
            home_id = sorted(dataset.shards)[0]
            records: list = []
            for node_id in sorted(dataset.shards):
                records.extend(scan_shard_records(dataset.shards[node_id]))
            result.per_node[home_id] = records
        service.drop()
        self.cluster.barrier()
        return result

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def _exec_aggregate(self, agg: AggregateNode) -> StageResult:
        from repro.services.hashsvc import VirtualHashBuffer

        child = self._exec(agg.child)
        self.metrics.local_agg_stages += 1
        # Local stage: one hash-service buffer per node.
        partials = StageResult()
        for node_id, records in child.per_node.items():
            if not records:
                continue
            node = self.cluster.nodes[node_id]
            self._temp_counter += 1
            temp_name = f"__agg{self._temp_counter}_n{node_id}"
            # Hash pages must hold a healthy number of entries even when
            # logical record sizes are inflated by scale-down factors.
            agg_page_size = max(4 * MB, 64 * self.object_bytes)
            temp = self.cluster.create_set(
                temp_name,
                durability="write-back",
                page_size=agg_page_size,
                nodes=[node_id],
                object_bytes=self.object_bytes,
            )
            buffer = VirtualHashBuffer(
                temp, num_root_partitions=4, combiner=agg.merge_fn
            )
            for record in records:
                key = agg.key_fn(record)
                buffer.insert(key, agg.seed_fn(record), nbytes=self.object_bytes)
            partials.per_node[node_id] = list(buffer.items())
            buffer.release()
            temp.end_lifetime()
            self.cluster.drop_set(temp_name)
        self.cluster.barrier()

        # Final stage: partials route to key-owner nodes and merge there.
        num_nodes = self.cluster.num_nodes
        routed: dict = {nid: [] for nid in range(num_nodes)}
        for node_id, pairs in partials.per_node.items():
            node = self.cluster.nodes[node_id]
            moved = 0
            for key, acc in pairs:
                owner = stable_hash(key) % num_nodes
                routed[owner].append((key, acc))
                if owner != node_id:
                    moved += self.object_bytes
            if moved:
                node.network.transfer(moved)
        self.cluster.barrier()
        result = StageResult()
        for node_id, pairs in routed.items():
            if not pairs:
                continue
            node = self.cluster.nodes[node_id]
            merged: dict = {}
            for key, acc in pairs:
                if key in merged:
                    merged[key] = agg.merge_fn(merged[key], acc)
                else:
                    merged[key] = acc
            node.cpu.per_object(len(pairs), factor=1.5)
            result.per_node[node_id] = [
                agg.final_fn(key, acc) for key, acc in merged.items()
            ]
        self.cluster.barrier()
        return result

    # ------------------------------------------------------------------
    # ordering and limits (driver-side)
    # ------------------------------------------------------------------

    def _exec_orderby(self, node: OrderByNode) -> StageResult:
        child = self._exec(node.child)
        records = child.all_records()
        driver = self.cluster.nodes[0]
        for node_id, recs in child.per_node.items():
            if node_id != 0 and recs:
                self.cluster.nodes[node_id].network.transfer(
                    len(recs) * self.object_bytes
                )
        records.sort(key=node.key_fn, reverse=node.reverse)
        import math

        if records:
            driver.cpu.per_object(
                int(len(records) * max(1.0, math.log2(len(records)))), factor=0.5
            )
        self.cluster.barrier()
        return StageResult(per_node={0: records})

    def _exec_limit(self, node: LimitNode) -> StageResult:
        child = self._exec(node.child)
        records = child.all_records()[: node.count]
        return StageResult(per_node={0: records})
