"""EXPLAIN for query plans: the physical strategy without executing.

``explain(scheduler, plan)`` walks the plan the same way the scheduler
would, consults the statistics service for replica selection and
size-based join decisions, and renders an indented physical plan.  Sizes
come from catalog statistics (for base-set chains) or are marked
unknown (for derived inputs, where the scheduler decides at runtime).
"""

from __future__ import annotations

import typing

from repro.query.operators import (
    AggregateNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    PlanNode,
    ScanNode,
    peel_pipeline,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.scheduler import QueryScheduler


def explain(scheduler: "QueryScheduler", plan: PlanNode) -> str:
    """Render the physical plan as an indented tree."""
    lines: list[str] = []
    _walk(scheduler, plan, 0, lines)
    return "\n".join(lines)


def _emit(lines: list, depth: int, text: str) -> None:
    lines.append("  " * depth + text)


def _estimate_bytes(scheduler: "QueryScheduler", node: PlanNode) -> "int | None":
    """Catalog-based size estimate for a base-set pipeline, else None."""
    base, steps = peel_pipeline(node)
    if not isinstance(base, ScanNode):
        return None
    try:
        stats = scheduler.cluster.manager.statistics(base.set_name)
    except KeyError:
        return None
    dataset = scheduler.cluster.get_set(base.set_name)
    nbytes = dataset.num_objects * dataset.object_bytes
    # Without column statistics, apply a fixed selectivity per filter step.
    for kind, _fn in steps:
        if kind == "filter":
            nbytes = int(nbytes * 0.33)
    del stats
    return nbytes


def _describe_steps(steps: list) -> str:
    if not steps:
        return ""
    counts: dict = {}
    for kind, _fn in steps:
        counts[kind] = counts.get(kind, 0) + 1
    rendered = ", ".join(f"{n}x {k}" for k, n in sorted(counts.items()))
    return f" | pipeline: {rendered}"


def _walk(scheduler: "QueryScheduler", node: PlanNode, depth: int, lines: list) -> None:
    base, steps = peel_pipeline(node)
    suffix = _describe_steps(steps)

    if isinstance(base, ScanNode):
        _emit(lines, depth, f"Scan {base.set_name}{suffix}")
        return

    if isinstance(base, JoinNode):
        strategy = _join_strategy(scheduler, base)
        _emit(lines, depth, f"Join [{base.how}] via {strategy}{suffix}")
        _walk(scheduler, base.left, depth + 1, lines)
        _walk(scheduler, base.right, depth + 1, lines)
        return

    if isinstance(base, AggregateNode):
        _emit(
            lines, depth,
            f"Aggregate (local hash stage per node + final stage){suffix}",
        )
        _walk(scheduler, base.child, depth + 1, lines)
        return

    if isinstance(base, OrderByNode):
        _emit(lines, depth, f"OrderBy (gather to driver){suffix}")
        _walk(scheduler, base.child, depth + 1, lines)
        return

    if isinstance(base, LimitNode):
        _emit(lines, depth, f"Limit {base.count}{suffix}")
        _walk(scheduler, base.child, depth + 1, lines)
        return

    _emit(lines, depth, f"{type(base).__name__}{suffix}")  # pragma: no cover


def _join_strategy(scheduler: "QueryScheduler", join: JoinNode) -> str:
    left_base, _l = peel_pipeline(join.left)
    right_base, _r = peel_pipeline(join.right)
    copart = scheduler._copartitioned_replicas(join, left_base, right_base)
    if copart is not None:
        left_rep, right_rep = copart
        # explain() must not perturb the metrics of real executions
        scheduler.metrics.replica_substitutions -= 2
        return (
            f"co-partitioned replicas ({left_rep.name} + {right_rep.name}), "
            f"no shuffle"
        )
    right_bytes = _estimate_bytes(scheduler, join.right)
    if right_bytes is None:
        return "broadcast-or-repartition (build-side size known at runtime)"
    if right_bytes <= scheduler.broadcast_threshold:
        return f"broadcast (build side ~{right_bytes} bytes)"
    return f"repartition both sides (build side ~{right_bytes} bytes)"
