"""Batch-at-a-time kernels for the query data plane.

The vectorized engine (``QueryScheduler(vectorized=True)``) processes
records in chunks instead of one Python object at a time.  Every kernel in
this module charges the *same* simulated costs as the record-at-a-time
path it replaces — the same floating-point additions, in the same order,
against the same per-node clocks — so the two engines are bit-identical
in simulated time and differ only in wall-clock speed.  The equivalence
arguments live next to each kernel; the golden suite
(``tests/test_query_golden.py``) enforces them end to end.

The batched kernels assume the step/key/merge functions are pure (the
same assumption the cost model already makes): a batch applies one step
to every record before the next step, where the record loop finished one
record before starting the next.  Both orders yield the same output
sequence because every step is element-wise and order-preserving.
"""

from __future__ import annotations

import typing

from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import WorkerNode
    from repro.query.operators import JoinNode

#: Default chunk size for re-batching materialized record lists.  Any
#: multiple of anything works — the cost kernels replay charges by
#: cumulative record count, not per chunk — so this only tunes Python
#: call overhead against peak list sizes.
DEFAULT_BATCH_SIZE = 4096


def iter_chunks(records: list, size: int = DEFAULT_BATCH_SIZE):
    """Yield ``records`` in order as slices of at most ``size``."""
    if size < 1:
        raise ValueError("batch size must be positive")
    for start in range(0, len(records), size):
        yield records[start:start + size]


class RecordBatch:
    """One chunk of records with lazily cached key/hash columns.

    The key column is cached per key-function identity, so repeated
    kernel calls over the same batch (partitioning, then grouping)
    evaluate ``key_fn`` once per record.
    """

    __slots__ = ("records", "_key_fn", "_keys", "_hashes")

    def __init__(self, records: list) -> None:
        self.records = records
        self._key_fn = None
        self._keys: "list | None" = None
        self._hashes: "list[int] | None" = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def keys(self, key_fn) -> list:
        """The key column ``[key_fn(r) for r in records]``, cached."""
        if self._keys is None or self._key_fn is not key_fn:
            self._key_fn = key_fn
            self._keys = [key_fn(record) for record in self.records]
            self._hashes = None
        return self._keys

    def hashes(self, key_fn) -> "list[int]":
        """The ``stable_hash`` column over :meth:`keys`, cached."""
        keys = self.keys(key_fn)
        if self._hashes is None:
            self._hashes = [stable_hash(key) for key in keys]
        return self._hashes

    def partitions(self, key_fn, num_partitions: int) -> "list[int]":
        """Destination partition per record (``hash % num_partitions``)."""
        return [h % num_partitions for h in self.hashes(key_fn)]


class BatchStepRunner:
    """Vectorized filter/map/flatmap with ``run_steps``' exact charges.

    ``run_steps`` charges ``per_object(1024 * max(1, len(steps)))`` every
    time its cumulative *input* count crosses a multiple of 1024, plus one
    remainder charge at end of stream.  This runner tracks the same
    cumulative count across :meth:`feed` calls and issues the identical
    sequence of charge calls, so any chunking of the same record stream
    lands the node clock on the same reading.  (Between two block charges
    nothing else touches the clock, so charging them at chunk boundaries
    instead of mid-chunk visits the same final value.)
    """

    def __init__(self, node: "WorkerNode", steps: list, workers: int = 1) -> None:
        self.node = node
        self.steps = steps
        self.workers = workers
        self._units = max(1, len(steps))
        self._count = 0
        self._finished = False
        #: Batch counters for SchedulerMetrics (read by the scheduler).
        self.batches = 0
        self.records_in = 0

    def feed(self, records: list) -> list:
        """Run one chunk through the steps; returns the surviving records.

        With no steps the input list is returned as-is (callers own their
        chunks); otherwise a fresh list is built per step.
        """
        if self._finished:
            raise RuntimeError("runner already finished")
        self.batches += 1
        self.records_in += len(records)
        data = records
        for kind, fn in self.steps:
            if not data:
                break
            if kind == "filter":
                data = [record for record in data if fn(record)]
            elif kind == "map":
                data = [fn(record) for record in data]
            else:  # flatmap
                out: list = []
                extend = out.extend
                for record in data:
                    extend(fn(record))
                data = out
        before = self._count
        self._count += len(records)
        cpu = self.node.cpu
        for _ in range(self._count // 1024 - before // 1024):
            cpu.per_object(1024 * self._units, workers=self.workers)
        return data

    def finish(self) -> None:
        """Charge the end-of-stream remainder exactly like ``run_steps``."""
        if self._finished:
            return
        self._finished = True
        self.node.cpu.per_object(
            (self._count % 1024) * self._units, workers=self.workers
        )


def build_hash_table(records, key_fn) -> dict:
    """Pure build-side table ``{key: [records...]}`` (no cost charges)."""
    table: dict = {}
    get = table.get
    for record in records:
        key = key_fn(record)
        bucket = get(key)
        if bucket is None:
            table[key] = [record]
        else:
            bucket.append(record)
    return table


def build_batch(records, key_fn, node: "WorkerNode") -> dict:
    """Batched hash-join build: one ``per_object(n, factor=1.5)`` charge,
    exactly the call the record-at-a-time ``_build_table`` makes."""
    table = build_hash_table(records, key_fn)
    node.cpu.per_object(len(records), factor=1.5)
    return table


def probe_batch(join: "JoinNode", left_records, table: dict, node: "WorkerNode") -> list:
    """Batched hash-join probe with the record path's semantics and charge.

    Emits matches in probe order (every strategy's output order), then
    charges the same single ``per_object(count, factor=2.0)`` call.
    """
    get = table.get
    left_key = join.left_key
    merge = join.merge
    how = join.how
    if how == "inner":
        out = [
            merge(record, match)
            for record in left_records
            for match in get(left_key(record)) or ()
        ]
    elif how == "left_semi":
        out = [record for record in left_records if get(left_key(record))]
    elif how == "left_anti":
        out = [record for record in left_records if not get(left_key(record))]
    else:  # left_outer
        out = []
        extend = out.extend
        append = out.append
        for record in left_records:
            matches = get(left_key(record))
            if matches:
                extend(merge(record, match) for match in matches)
            else:
                append(merge(record, None))
    node.cpu.per_object(len(left_records), factor=2.0)
    return out
