"""A distributed relational query processor built on Pangea services.

This is the tool the paper builds to evaluate Pangea on TPC-H (Sec. 9.1.2,
Table 2): scan, filter, flatten, hash, broadcast and partitioned joins,
two-stage hash aggregation, pipelined execution, and a query scheduler
that picks co-partitioned replicas to avoid shuffles.
"""

from repro.query.expressions import col, lit
from repro.query.explain import explain
from repro.query.operators import (
    AggregateNode,
    FilterNode,
    FlatMapNode,
    JoinNode,
    LimitNode,
    MapNode,
    OrderByNode,
    PlanNode,
    ScanNode,
)
from repro.query.batch import BatchStepRunner, RecordBatch
from repro.query.scheduler import QueryScheduler, SchedulerMetrics

__all__ = [
    "col",
    "lit",
    "explain",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "MapNode",
    "FlatMapNode",
    "JoinNode",
    "AggregateNode",
    "OrderByNode",
    "LimitNode",
    "QueryScheduler",
    "SchedulerMetrics",
    "RecordBatch",
    "BatchStepRunner",
]
