"""Pipelined per-node execution of record-at-a-time steps."""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import WorkerNode


def run_steps(
    records: typing.Iterable[dict],
    steps: list,
    node: "WorkerNode",
    workers: int = 1,
) -> typing.Iterator[dict]:
    """Stream ``records`` through filter/map/flatmap steps on ``node``.

    Each step application charges per-object CPU work; nothing is
    materialized, matching the paper's pipelined job stages.
    """
    count = 0
    for record in records:
        count += 1
        out: "list[dict] | None" = [record]
        for kind, fn in steps:
            if out is None:
                break
            next_out: list = []
            for item in out:
                if kind == "filter":
                    if fn(item):
                        next_out.append(item)
                elif kind == "map":
                    next_out.append(fn(item))
                else:  # flatmap
                    next_out.extend(fn(item))
            out = next_out or None
        if count % 1024 == 0:
            node.cpu.per_object(1024 * max(1, len(steps)), workers=workers)
        if out:
            yield from out
    node.cpu.per_object((count % 1024) * max(1, len(steps)), workers=workers)


def scan_shard_records(shard, workers: int = 1) -> typing.Iterator[dict]:
    """Stream one shard's records through the sequential read service."""
    from repro.services.sequential import make_shard_iterators

    for iterator in make_shard_iterators(shard, 1):
        for page in iterator:
            yield from page.records
