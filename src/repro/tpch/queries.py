"""The nine TPC-H queries as Pangea query-processor plans (paper Fig. 5).

Each query is a function ``run(scheduler) -> list[dict]`` whose output
matches the corresponding :mod:`repro.tpch.reference` oracle.

:func:`register_tpch_replicas` creates the heterogeneous replicas the
paper's evaluation uses: ``lineitem`` partitioned by ``l_orderkey`` and by
``l_partkey``; ``orders`` by ``o_orderkey`` and by ``o_custkey``; plus
``part`` by ``p_partkey`` and ``customer`` by ``c_custkey`` so that Q04,
Q12, Q13, Q14, Q17 and Q22 can run as co-partitioned, shuffle-free joins.
"""

from __future__ import annotations

import typing

from repro.query.operators import ScanNode
from repro.tpch import reference as ref
from repro.tpch.schema import ROW_BYTES

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.query.scheduler import QueryScheduler


def _round(value: float, digits: int = 2) -> float:
    return round(value, digits)


# ----------------------------------------------------------------------
# replica registration (paper Sec. 9.1.2)
# ----------------------------------------------------------------------

REPLICA_SPECS = [
    ("lineitem", "l_orderkey", lambda r: (r["l_orderkey"], r["l_linenumber"])),
    ("lineitem", "l_partkey", lambda r: (r["l_orderkey"], r["l_linenumber"])),
    ("orders", "o_orderkey", lambda r: r["o_orderkey"]),
    ("orders", "o_custkey", lambda r: r["o_orderkey"]),
    ("part", "p_partkey", lambda r: r["p_partkey"]),
    ("customer", "c_custkey", lambda r: r["c_custkey"]),
]


def register_tpch_replicas(
    cluster: "PangeaCluster",
    num_partitions: int | None = None,
    row_scale: float = 1.0,
) -> dict:
    """Create and register every heterogeneous replica the queries use.

    ``row_scale`` must match the value passed to ``load_tpch`` so replicas
    carry the same logical row sizes as their sources.
    """
    from repro.placement.partitioner import HashPartitioner, partition_set
    from repro.placement.replication import register_replica

    num_partitions = num_partitions or cluster.num_nodes * 4
    groups: dict = {}
    for table, key, object_id_fn in REPLICA_SPECS:
        source = cluster.get_set(table)
        replica_name = f"{table}_by_{key}"
        replica = cluster.create_set(
            replica_name,
            durability="write-through",
            page_size=source.page_size,
            object_bytes=max(1, int(ROW_BYTES[table] * row_scale)),
        )
        partitioner = HashPartitioner(
            (lambda k: (lambda r: r[k]))(key), num_partitions, key_name=key
        )
        partition_set(source, replica, partitioner)
        groups[table] = register_replica(source, replica, object_id_fn=object_id_fn)
    return groups


# ----------------------------------------------------------------------
# Q01 — pricing summary report
# ----------------------------------------------------------------------

def run_q01(scheduler: "QueryScheduler") -> list[dict]:
    def seed(li: dict) -> tuple:
        disc_price = li["l_extendedprice"] * (1 - li["l_discount"])
        return (
            li["l_quantity"],
            li["l_extendedprice"],
            disc_price,
            disc_price * (1 + li["l_tax"]),
            li["l_discount"],
            1,
        )

    def merge(a: tuple, b: tuple) -> tuple:
        return tuple(x + y for x, y in zip(a, b))

    def final(key: tuple, acc: tuple) -> dict:
        qty, base, disc, charge, discount, count = acc
        return {
            "l_returnflag": key[0],
            "l_linestatus": key[1],
            "sum_qty": _round(qty),
            "sum_base_price": _round(base),
            "sum_disc_price": _round(disc),
            "sum_charge": _round(charge),
            "avg_qty": _round(qty / count, 4),
            "avg_price": _round(base / count, 4),
            "avg_disc": _round(discount / count, 4),
            "count_order": count,
        }

    plan = (
        ScanNode("lineitem")
        .filter(lambda li: li["l_shipdate"] <= ref.Q01_SHIP_CUTOFF)
        .aggregate(
            key_fn=lambda li: (li["l_returnflag"], li["l_linestatus"]),
            seed_fn=seed,
            merge_fn=merge,
            final_fn=final,
        )
        .order_by(lambda r: (r["l_returnflag"], r["l_linestatus"]))
    )
    return scheduler.execute(plan)


# ----------------------------------------------------------------------
# Q02 — minimum cost supplier
# ----------------------------------------------------------------------

def run_q02(scheduler: "QueryScheduler") -> list[dict]:
    region_f = ScanNode("region").filter(lambda r: r["r_name"] == ref.Q02_REGION)
    nation_r = ScanNode("nation").join(
        region_f,
        left_key=lambda n: n["n_regionkey"],
        right_key=lambda r: r["r_regionkey"],
        merge=lambda n, r: n,
    )
    supp_r = ScanNode("supplier").join(
        nation_r,
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {**s, "n_name": n["n_name"]},
    )
    part_f = ScanNode("part").filter(
        lambda p: p["p_size"] == ref.Q02_SIZE
        and p["p_type"].endswith(ref.Q02_TYPE_SUFFIX)
    )

    def eligible_partsupp():
        return (
            ScanNode("partsupp")
            .join(
                supp_r,
                left_key=lambda ps: ps["ps_suppkey"],
                right_key=lambda s: s["s_suppkey"],
                merge=lambda ps, s: {**ps, **s},
            )
            .join(
                part_f,
                left_key=lambda ps: ps["ps_partkey"],
                right_key=lambda p: p["p_partkey"],
                merge=lambda ps, p: {**ps, "p_mfgr": p["p_mfgr"]},
            )
        )

    min_cost = eligible_partsupp().aggregate(
        key_fn=lambda r: r["ps_partkey"],
        seed_fn=lambda r: r["ps_supplycost"],
        merge_fn=min,
        final_fn=lambda key, cost: {"mc_partkey": key, "min_cost": cost},
    )
    plan = (
        eligible_partsupp()
        .join(
            min_cost,
            left_key=lambda r: r["ps_partkey"],
            right_key=lambda r: r["mc_partkey"],
            merge=lambda r, mc: {**r, "min_cost": mc["min_cost"]},
        )
        .filter(lambda r: r["ps_supplycost"] == r["min_cost"])
        .map(
            lambda r: {
                "s_acctbal": r["s_acctbal"],
                "s_name": r["s_name"],
                "n_name": r["n_name"],
                "p_partkey": r["ps_partkey"],
                "p_mfgr": r["p_mfgr"],
                "s_phone": r["s_phone"],
            }
        )
        .order_by(
            lambda r: (-r["s_acctbal"], r["n_name"], r["s_name"], r["p_partkey"])
        )
        .limit(100)
    )
    return scheduler.execute(plan)


# ----------------------------------------------------------------------
# Q04 — order priority checking (semi join, co-partitionable)
# ----------------------------------------------------------------------

def run_q04(scheduler: "QueryScheduler") -> list[dict]:
    late_lines = ScanNode("lineitem").filter(
        lambda li: li["l_commitdate"] < li["l_receiptdate"]
    )
    plan = (
        ScanNode("orders")
        .filter(
            lambda o: ref.Q04_DATE_LO <= o["o_orderdate"] < ref.Q04_DATE_HI
        )
        .join(
            late_lines,
            left_key=lambda o: o["o_orderkey"],
            right_key=lambda li: li["l_orderkey"],
            merge=lambda o, li: o,
            left_key_name="o_orderkey",
            right_key_name="l_orderkey",
            how="left_semi",
        )
        .aggregate(
            key_fn=lambda o: o["o_orderpriority"],
            seed_fn=lambda o: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, count: {
                "o_orderpriority": key,
                "order_count": count,
            },
        )
        .order_by(lambda r: r["o_orderpriority"])
    )
    return scheduler.execute(plan)


# ----------------------------------------------------------------------
# Q06 — forecasting revenue change
# ----------------------------------------------------------------------

def run_q06(scheduler: "QueryScheduler") -> list[dict]:
    plan = (
        ScanNode("lineitem")
        .filter(
            lambda li: ref.Q06_DATE_LO <= li["l_shipdate"] < ref.Q06_DATE_HI
            and ref.Q06_DISCOUNT_LO - 1e-9
            <= li["l_discount"]
            <= ref.Q06_DISCOUNT_HI + 1e-9
            and li["l_quantity"] < ref.Q06_QUANTITY
        )
        .aggregate(
            key_fn=lambda li: 0,
            seed_fn=lambda li: li["l_extendedprice"] * li["l_discount"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {"revenue": _round(total)},
        )
    )
    result = scheduler.execute(plan)
    return result if result else [{"revenue": 0.0}]


# ----------------------------------------------------------------------
# Q12 — shipping modes and order priority (co-partitionable)
# ----------------------------------------------------------------------

def run_q12(scheduler: "QueryScheduler") -> list[dict]:
    filtered = ScanNode("lineitem").filter(
        lambda li: li["l_shipmode"] in ref.Q12_MODES
        and li["l_shipdate"] < li["l_commitdate"] < li["l_receiptdate"]
        and ref.Q12_DATE_LO <= li["l_receiptdate"] < ref.Q12_DATE_HI
    )
    plan = (
        filtered.join(
            ScanNode("orders"),
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {
                "l_shipmode": li["l_shipmode"],
                "high": 1 if o["o_orderpriority"] in ("1-URGENT", "2-HIGH") else 0,
            },
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .aggregate(
            key_fn=lambda r: r["l_shipmode"],
            seed_fn=lambda r: (r["high"], 1 - r["high"]),
            merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            final_fn=lambda mode, acc: {
                "l_shipmode": mode,
                "high_line_count": acc[0],
                "low_line_count": acc[1],
            },
        )
        .order_by(lambda r: r["l_shipmode"])
    )
    return scheduler.execute(plan)


# ----------------------------------------------------------------------
# Q13 — customer distribution (left outer join, co-partitionable)
# ----------------------------------------------------------------------

def run_q13(scheduler: "QueryScheduler") -> list[dict]:
    def clean_comment(order: dict) -> bool:
        comment = order["o_comment"]
        i = comment.find(ref.Q13_WORD1)
        return not (i >= 0 and comment.find(ref.Q13_WORD2, i + len(ref.Q13_WORD1)) >= 0)

    orders_f = ScanNode("orders").filter(clean_comment)
    plan = (
        ScanNode("customer")
        .join(
            orders_f,
            left_key=lambda c: c["c_custkey"],
            right_key=lambda o: o["o_custkey"],
            merge=lambda c, o: {
                "c_custkey": c["c_custkey"],
                "has_order": 0 if o is None else 1,
            },
            left_key_name="c_custkey",
            right_key_name="o_custkey",
            how="left_outer",
        )
        .aggregate(
            key_fn=lambda r: r["c_custkey"],
            seed_fn=lambda r: r["has_order"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda custkey, count: {"c_count": count},
        )
        .aggregate(
            key_fn=lambda r: r["c_count"],
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda c_count, custdist: {
                "c_count": c_count,
                "custdist": custdist,
            },
        )
        .order_by(lambda r: (-r["custdist"], -r["c_count"]))
    )
    return scheduler.execute(plan)


# ----------------------------------------------------------------------
# Q14 — promotion effect (co-partitionable on partkey)
# ----------------------------------------------------------------------

def run_q14(scheduler: "QueryScheduler") -> list[dict]:
    filtered = ScanNode("lineitem").filter(
        lambda li: ref.Q14_DATE_LO <= li["l_shipdate"] < ref.Q14_DATE_HI
    )
    plan = filtered.join(
        ScanNode("part"),
        left_key=lambda li: li["l_partkey"],
        right_key=lambda p: p["p_partkey"],
        merge=lambda li, p: {
            "disc_price": li["l_extendedprice"] * (1 - li["l_discount"]),
            "promo": p["p_type"].startswith("PROMO"),
        },
        left_key_name="l_partkey",
        right_key_name="p_partkey",
    ).aggregate(
        key_fn=lambda r: 0,
        seed_fn=lambda r: (r["disc_price"] if r["promo"] else 0.0, r["disc_price"]),
        merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        final_fn=lambda key, acc: {
            "promo_revenue": _round(100.0 * acc[0] / acc[1] if acc[1] else 0.0, 4)
        },
    )
    result = scheduler.execute(plan)
    return result if result else [{"promo_revenue": 0.0}]


# ----------------------------------------------------------------------
# Q17 — small-quantity-order revenue (co-partitionable on partkey)
# ----------------------------------------------------------------------

def run_q17(scheduler: "QueryScheduler") -> list[dict]:
    part_f = ScanNode("part").filter(
        lambda p: p["p_brand"] == ref.Q17_BRAND
        and p["p_container"] == ref.Q17_CONTAINER
    )

    def lines_of_target_parts():
        return ScanNode("lineitem").join(
            part_f,
            left_key=lambda li: li["l_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda li, p: li,
            left_key_name="l_partkey",
            right_key_name="p_partkey",
        )

    avg_qty = lines_of_target_parts().aggregate(
        key_fn=lambda li: li["l_partkey"],
        seed_fn=lambda li: (li["l_quantity"], 1),
        merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        final_fn=lambda partkey, acc: {
            "a_partkey": partkey,
            "avg_qty": acc[0] / acc[1],
        },
    )
    plan = (
        lines_of_target_parts()
        .join(
            avg_qty,
            left_key=lambda li: li["l_partkey"],
            right_key=lambda a: a["a_partkey"],
            merge=lambda li, a: {**li, "avg_qty": a["avg_qty"]},
        )
        .filter(lambda r: r["l_quantity"] < 0.2 * r["avg_qty"])
        .aggregate(
            key_fn=lambda r: 0,
            seed_fn=lambda r: r["l_extendedprice"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {"avg_yearly": _round(total / 7.0)},
        )
    )
    result = scheduler.execute(plan)
    return result if result else [{"avg_yearly": 0.0}]


# ----------------------------------------------------------------------
# Q22 — global sales opportunity (anti join, co-partitionable)
# ----------------------------------------------------------------------

def run_q22(scheduler: "QueryScheduler") -> list[dict]:
    eligible = ScanNode("customer").filter(
        lambda c: c["c_phone"][:2] in ref.Q22_CODES
    )
    avg_plan = eligible.filter(lambda c: c["c_acctbal"] > 0.0).aggregate(
        key_fn=lambda c: 0,
        seed_fn=lambda c: (c["c_acctbal"], 1),
        merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        final_fn=lambda key, acc: {"avg_bal": acc[0] / acc[1] if acc[1] else 0.0},
    )
    scalar = scheduler.execute(avg_plan)
    avg_bal = scalar[0]["avg_bal"] if scalar else 0.0

    plan = (
        eligible.filter(lambda c: c["c_acctbal"] > avg_bal)
        .join(
            ScanNode("orders"),
            left_key=lambda c: c["c_custkey"],
            right_key=lambda o: o["o_custkey"],
            merge=lambda c, o: c,
            left_key_name="c_custkey",
            right_key_name="o_custkey",
            how="left_anti",
        )
        .aggregate(
            key_fn=lambda c: c["c_phone"][:2],
            seed_fn=lambda c: (1, c["c_acctbal"]),
            merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            final_fn=lambda code, acc: {
                "cntrycode": code,
                "numcust": acc[0],
                "totacctbal": _round(acc[1]),
            },
        )
        .order_by(lambda r: r["cntrycode"])
    )
    return scheduler.execute(plan)


QUERIES = {
    "Q01": run_q01,
    "Q02": run_q02,
    "Q04": run_q04,
    "Q06": run_q06,
    "Q12": run_q12,
    "Q13": run_q13,
    "Q14": run_q14,
    "Q17": run_q17,
    "Q22": run_q22,
}
