"""The remaining eight TPC-H queries: full 22-query coverage.

Q07 Q08 Q09 Q11 Q15 Q16 Q20 Q21 complete the suite beyond the paper's
nine and the first five extensions.  They exercise nation-pair joins,
market-share cases, composite join keys (partkey, suppkey), scalar
subqueries, count-distinct, and Q21's exists/not-exists correlation —
all expressed on the Pangea query processor.

As elsewhere, each query has a reference oracle and a plan
implementation returning identical rows.
"""

from __future__ import annotations

import typing
from collections import defaultdict
from datetime import date

from repro.query.operators import ScanNode
from repro.tpch.schema import d

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.scheduler import QueryScheduler

Q07_NATION_A = "FRANCE"
Q07_NATION_B = "GERMANY"
Q07_DATE_LO = d(1995, 1, 1)
Q07_DATE_HI = d(1997, 1, 1)
Q08_REGION = "AMERICA"
Q08_NATION = "BRAZIL"
Q08_TYPE = "ECONOMY ANODIZED STEEL"
Q08_DATE_LO = d(1995, 1, 1)
Q08_DATE_HI = d(1997, 1, 1)
Q09_COLOR = "green"
Q11_NATION = "GERMANY"
Q11_FRACTION = 0.01  # simplified from 0.0001/SF so small scales qualify
Q15_DATE_LO = d(1996, 1, 1)
Q15_DATE_HI = d(1996, 4, 1)
Q16_BRAND = "Brand#45"
Q16_TYPE_PREFIX = "MEDIUM POLISHED"
Q16_SIZES = (49, 14, 23, 45, 19, 3, 36, 9)
Q20_COLOR_PREFIX = "forest"
Q20_DATE_LO = d(1994, 1, 1)
Q20_DATE_HI = d(1995, 1, 1)
Q20_NATION = "CANADA"
Q21_NATION = "SAUDI ARABIA"


def _round(value: float, digits: int = 2) -> float:
    return round(value, digits)


def _revenue(li: dict) -> float:
    return li["l_extendedprice"] * (1 - li["l_discount"])


def _year(ordinal: int) -> int:
    return date.fromordinal(ordinal).year


# ----------------------------------------------------------------------
# reference implementations
# ----------------------------------------------------------------------

def ref_q07(tables: dict) -> list[dict]:
    nation_name = {n["n_nationkey"]: n["n_name"] for n in tables["nation"]}
    supp_nation = {
        s["s_suppkey"]: nation_name[s["s_nationkey"]] for s in tables["supplier"]
    }
    cust_nation = {
        c["c_custkey"]: nation_name[c["c_nationkey"]] for c in tables["customer"]
    }
    order_cust = {o["o_orderkey"]: o["o_custkey"] for o in tables["orders"]}
    pair = {Q07_NATION_A, Q07_NATION_B}
    groups: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if not (Q07_DATE_LO <= li["l_shipdate"] < Q07_DATE_HI):
            continue
        sn = supp_nation[li["l_suppkey"]]
        cn = cust_nation[order_cust[li["l_orderkey"]]]
        if sn in pair and cn in pair and sn != cn:
            groups[(sn, cn, _year(li["l_shipdate"]))] += _revenue(li)
    out = [
        {"supp_nation": sn, "cust_nation": cn, "l_year": year,
         "revenue": _round(total)}
        for (sn, cn, year), total in groups.items()
    ]
    out.sort(key=lambda r: (r["supp_nation"], r["cust_nation"], r["l_year"]))
    return out


def ref_q08(tables: dict) -> list[dict]:
    region_keys = {
        r["r_regionkey"] for r in tables["region"] if r["r_name"] == Q08_REGION
    }
    nation_name = {n["n_nationkey"]: n["n_name"] for n in tables["nation"]}
    nations_in_region = {
        n["n_nationkey"] for n in tables["nation"]
        if n["n_regionkey"] in region_keys
    }
    customers = {
        c["c_custkey"] for c in tables["customer"]
        if c["c_nationkey"] in nations_in_region
    }
    orders = {
        o["o_orderkey"]: o
        for o in tables["orders"]
        if Q08_DATE_LO <= o["o_orderdate"] < Q08_DATE_HI
        and o["o_custkey"] in customers
    }
    parts = {
        p["p_partkey"] for p in tables["part"] if p["p_type"] == Q08_TYPE
    }
    supp_nation = {
        s["s_suppkey"]: nation_name[s["s_nationkey"]] for s in tables["supplier"]
    }
    per_year: dict = defaultdict(lambda: [0.0, 0.0])
    for li in tables["lineitem"]:
        order = orders.get(li["l_orderkey"])
        if order is None or li["l_partkey"] not in parts:
            continue
        volume = _revenue(li)
        acc = per_year[_year(order["o_orderdate"])]
        acc[1] += volume
        if supp_nation[li["l_suppkey"]] == Q08_NATION:
            acc[0] += volume
    out = [
        {"o_year": year, "mkt_share": _round(acc[0] / acc[1], 4) if acc[1] else 0.0}
        for year, acc in per_year.items()
    ]
    out.sort(key=lambda r: r["o_year"])
    return out


def ref_q09(tables: dict) -> list[dict]:
    nation_name = {n["n_nationkey"]: n["n_name"] for n in tables["nation"]}
    supp_nation = {
        s["s_suppkey"]: nation_name[s["s_nationkey"]] for s in tables["supplier"]
    }
    parts = {
        p["p_partkey"] for p in tables["part"] if Q09_COLOR in p["p_name"]
    }
    cost = {
        (ps["ps_partkey"], ps["ps_suppkey"]): ps["ps_supplycost"]
        for ps in tables["partsupp"]
    }
    order_year = {o["o_orderkey"]: _year(o["o_orderdate"]) for o in tables["orders"]}
    groups: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if li["l_partkey"] not in parts:
            continue
        supplycost = cost[(li["l_partkey"], li["l_suppkey"])]
        profit = _revenue(li) - supplycost * li["l_quantity"]
        key = (supp_nation[li["l_suppkey"]], order_year[li["l_orderkey"]])
        groups[key] += profit
    out = [
        {"nation": nation, "o_year": year, "sum_profit": _round(total)}
        for (nation, year), total in groups.items()
    ]
    out.sort(key=lambda r: (r["nation"], -r["o_year"]))
    return out


def ref_q11(tables: dict) -> list[dict]:
    nation_keys = {
        n["n_nationkey"] for n in tables["nation"] if n["n_name"] == Q11_NATION
    }
    suppliers = {
        s["s_suppkey"] for s in tables["supplier"]
        if s["s_nationkey"] in nation_keys
    }
    value: dict = defaultdict(float)
    total = 0.0
    for ps in tables["partsupp"]:
        if ps["ps_suppkey"] in suppliers:
            v = ps["ps_supplycost"] * ps["ps_availqty"]
            value[ps["ps_partkey"]] += v
            total += v
    threshold = total * Q11_FRACTION
    out = [
        {"ps_partkey": partkey, "value": _round(v)}
        for partkey, v in value.items()
        if v > threshold
    ]
    out.sort(key=lambda r: (-r["value"], r["ps_partkey"]))
    return out


def ref_q15(tables: dict) -> list[dict]:
    revenue: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if Q15_DATE_LO <= li["l_shipdate"] < Q15_DATE_HI:
            revenue[li["l_suppkey"]] += _revenue(li)
    if not revenue:
        return []
    best = max(revenue.values())
    suppliers = {s["s_suppkey"]: s for s in tables["supplier"]}
    out = []
    for suppkey, total in revenue.items():
        if abs(total - best) < 1e-6:
            supplier = suppliers[suppkey]
            out.append(
                {
                    "s_suppkey": suppkey,
                    "s_name": supplier["s_name"],
                    "s_address": supplier["s_address"],
                    "s_phone": supplier["s_phone"],
                    "total_revenue": _round(total),
                }
            )
    out.sort(key=lambda r: r["s_suppkey"])
    return out


def ref_q16(tables: dict) -> list[dict]:
    complainers = {
        s["s_suppkey"] for s in tables["supplier"]
        if "Customer Complaints" in s["s_comment"]
    }
    parts = {
        p["p_partkey"]: p
        for p in tables["part"]
        if p["p_brand"] != Q16_BRAND
        and not p["p_type"].startswith(Q16_TYPE_PREFIX)
        and p["p_size"] in Q16_SIZES
    }
    groups: dict = defaultdict(set)
    for ps in tables["partsupp"]:
        part = parts.get(ps["ps_partkey"])
        if part is None or ps["ps_suppkey"] in complainers:
            continue
        groups[(part["p_brand"], part["p_type"], part["p_size"])].add(
            ps["ps_suppkey"]
        )
    out = [
        {"p_brand": brand, "p_type": ptype, "p_size": size,
         "supplier_cnt": len(supps)}
        for (brand, ptype, size), supps in groups.items()
    ]
    out.sort(
        key=lambda r: (-r["supplier_cnt"], r["p_brand"], r["p_type"], r["p_size"])
    )
    return out


def ref_q20(tables: dict) -> list[dict]:
    parts = {
        p["p_partkey"] for p in tables["part"]
        if p["p_name"].startswith(Q20_COLOR_PREFIX)
    }
    shipped: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if li["l_partkey"] in parts and Q20_DATE_LO <= li["l_shipdate"] < Q20_DATE_HI:
            shipped[(li["l_partkey"], li["l_suppkey"])] += li["l_quantity"]
    qualified_suppliers = set()
    for ps in tables["partsupp"]:
        key = (ps["ps_partkey"], ps["ps_suppkey"])
        if ps["ps_partkey"] in parts and ps["ps_availqty"] > 0.5 * shipped.get(key, 0.0) and shipped.get(key, 0.0) > 0:
            qualified_suppliers.add(ps["ps_suppkey"])
    nation_keys = {
        n["n_nationkey"] for n in tables["nation"] if n["n_name"] == Q20_NATION
    }
    out = [
        {"s_name": s["s_name"], "s_address": s["s_address"]}
        for s in tables["supplier"]
        if s["s_suppkey"] in qualified_suppliers
        and s["s_nationkey"] in nation_keys
    ]
    out.sort(key=lambda r: r["s_name"])
    return out


def ref_q21(tables: dict) -> list[dict]:
    nation_keys = {
        n["n_nationkey"] for n in tables["nation"] if n["n_name"] == Q21_NATION
    }
    target_suppliers = {
        s["s_suppkey"]: s["s_name"]
        for s in tables["supplier"]
        if s["s_nationkey"] in nation_keys
    }
    f_orders = {
        o["o_orderkey"] for o in tables["orders"] if o["o_orderstatus"] == "F"
    }
    suppliers_of_order: dict = defaultdict(set)
    late_suppliers_of_order: dict = defaultdict(set)
    for li in tables["lineitem"]:
        suppliers_of_order[li["l_orderkey"]].add(li["l_suppkey"])
        if li["l_receiptdate"] > li["l_commitdate"]:
            late_suppliers_of_order[li["l_orderkey"]].add(li["l_suppkey"])
    waits: dict = defaultdict(int)
    for li in tables["lineitem"]:
        suppkey = li["l_suppkey"]
        orderkey = li["l_orderkey"]
        if suppkey not in target_suppliers:
            continue
        if li["l_receiptdate"] <= li["l_commitdate"]:
            continue
        if orderkey not in f_orders:
            continue
        others = suppliers_of_order[orderkey] - {suppkey}
        if not others:
            continue  # no other supplier on the order
        if late_suppliers_of_order[orderkey] - {suppkey}:
            continue  # another supplier was also late
        waits[target_suppliers[suppkey]] += 1
    out = [{"s_name": name, "numwait": count} for name, count in waits.items()]
    out.sort(key=lambda r: (-r["numwait"], r["s_name"]))
    return out[:100]


# ----------------------------------------------------------------------
# plan implementations
# ----------------------------------------------------------------------

def _nation_names():
    return ScanNode("nation").map(
        lambda n: {"n_nationkey": n["n_nationkey"], "n_name": n["n_name"]}
    )


def run_q07(scheduler: "QueryScheduler") -> list[dict]:
    pair = {Q07_NATION_A, Q07_NATION_B}
    nations = _nation_names().filter(lambda n: n["n_name"] in pair)
    supp_n = ScanNode("supplier").join(
        nations,
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"], "supp_nation": n["n_name"]},
    )
    cust_n = ScanNode("customer").join(
        nations,
        left_key=lambda c: c["c_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda c, n: {"c_custkey": c["c_custkey"], "cust_nation": n["n_name"]},
    )
    orders_c = ScanNode("orders").join(
        cust_n,
        left_key=lambda o: o["o_custkey"],
        right_key=lambda c: c["c_custkey"],
        merge=lambda o, c: {"o_orderkey": o["o_orderkey"],
                            "cust_nation": c["cust_nation"]},
        left_key_name="o_custkey",
        right_key_name="c_custkey",
    )
    plan = (
        ScanNode("lineitem")
        .filter(lambda li: Q07_DATE_LO <= li["l_shipdate"] < Q07_DATE_HI)
        .join(
            orders_c,
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {**li, "cust_nation": o["cust_nation"]},
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .join(
            supp_n,
            left_key=lambda r: r["l_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda r, s: {**r, "supp_nation": s["supp_nation"]},
        )
        .filter(lambda r: r["supp_nation"] != r["cust_nation"])
        .aggregate(
            key_fn=lambda r: (
                r["supp_nation"], r["cust_nation"], _year(r["l_shipdate"])
            ),
            seed_fn=_revenue,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {
                "supp_nation": key[0],
                "cust_nation": key[1],
                "l_year": key[2],
                "revenue": _round(total),
            },
        )
        .order_by(lambda r: (r["supp_nation"], r["cust_nation"], r["l_year"]))
    )
    return scheduler.execute(plan)


def run_q08(scheduler: "QueryScheduler") -> list[dict]:
    region_f = ScanNode("region").filter(lambda r: r["r_name"] == Q08_REGION)
    nations_r = ScanNode("nation").join(
        region_f,
        left_key=lambda n: n["n_regionkey"],
        right_key=lambda r: r["r_regionkey"],
        merge=lambda n, r: n,
    )
    customers_r = ScanNode("customer").join(
        nations_r,
        left_key=lambda c: c["c_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda c, n: {"c_custkey": c["c_custkey"]},
    )
    orders_f = (
        ScanNode("orders")
        .filter(lambda o: Q08_DATE_LO <= o["o_orderdate"] < Q08_DATE_HI)
        .join(
            customers_r,
            left_key=lambda o: o["o_custkey"],
            right_key=lambda c: c["c_custkey"],
            merge=lambda o, c: {"o_orderkey": o["o_orderkey"],
                                "o_year": _year(o["o_orderdate"])},
            left_key_name="o_custkey",
            right_key_name="c_custkey",
        )
    )
    part_f = ScanNode("part").filter(lambda p: p["p_type"] == Q08_TYPE)
    supp_n = ScanNode("supplier").join(
        _nation_names(),
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"], "nation": n["n_name"]},
    )
    plan = (
        ScanNode("lineitem")
        .join(
            part_f,
            left_key=lambda li: li["l_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda li, p: li,
            left_key_name="l_partkey",
            right_key_name="p_partkey",
        )
        .join(
            orders_f,
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {**li, "o_year": o["o_year"]},
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .join(
            supp_n,
            left_key=lambda r: r["l_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda r, s: {
                "o_year": r["o_year"],
                "volume": _revenue(r),
                "is_target": s["nation"] == Q08_NATION,
            },
        )
        .aggregate(
            key_fn=lambda r: r["o_year"],
            seed_fn=lambda r: (r["volume"] if r["is_target"] else 0.0, r["volume"]),
            merge_fn=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            final_fn=lambda year, acc: {
                "o_year": year,
                "mkt_share": _round(acc[0] / acc[1], 4) if acc[1] else 0.0,
            },
        )
        .order_by(lambda r: r["o_year"])
    )
    return scheduler.execute(plan)


def run_q09(scheduler: "QueryScheduler") -> list[dict]:
    part_f = ScanNode("part").filter(lambda p: Q09_COLOR in p["p_name"])
    supp_n = ScanNode("supplier").join(
        _nation_names(),
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"], "nation": n["n_name"]},
    )
    order_years = ScanNode("orders").map(
        lambda o: {"o_orderkey": o["o_orderkey"], "o_year": _year(o["o_orderdate"])}
    )
    plan = (
        ScanNode("lineitem")
        .join(
            part_f,
            left_key=lambda li: li["l_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda li, p: li,
            left_key_name="l_partkey",
            right_key_name="p_partkey",
        )
        .join(
            ScanNode("partsupp"),
            left_key=lambda li: (li["l_partkey"], li["l_suppkey"]),
            right_key=lambda ps: (ps["ps_partkey"], ps["ps_suppkey"]),
            merge=lambda li, ps: {**li, "ps_supplycost": ps["ps_supplycost"]},
        )
        .join(
            order_years,
            left_key=lambda r: r["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda r, o: {**r, "o_year": o["o_year"]},
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .join(
            supp_n,
            left_key=lambda r: r["l_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda r, s: {
                "nation": s["nation"],
                "o_year": r["o_year"],
                "profit": _revenue(r) - r["ps_supplycost"] * r["l_quantity"],
            },
        )
        .aggregate(
            key_fn=lambda r: (r["nation"], r["o_year"]),
            seed_fn=lambda r: r["profit"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {
                "nation": key[0],
                "o_year": key[1],
                "sum_profit": _round(total),
            },
        )
        .order_by(lambda r: (r["nation"], -r["o_year"]))
    )
    return scheduler.execute(plan)


def _q11_values():
    nation_f = ScanNode("nation").filter(lambda n: n["n_name"] == Q11_NATION)
    supp_f = ScanNode("supplier").join(
        nation_f,
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"]},
    )
    return ScanNode("partsupp").join(
        supp_f,
        left_key=lambda ps: ps["ps_suppkey"],
        right_key=lambda s: s["s_suppkey"],
        merge=lambda ps, s: {
            "ps_partkey": ps["ps_partkey"],
            "value": ps["ps_supplycost"] * ps["ps_availqty"],
        },
    )


def run_q11(scheduler: "QueryScheduler") -> list[dict]:
    total_plan = _q11_values().aggregate(
        key_fn=lambda r: 0,
        seed_fn=lambda r: r["value"],
        merge_fn=lambda a, b: a + b,
        final_fn=lambda key, total: {"total": total},
    )
    scalar = scheduler.execute(total_plan)
    threshold = (scalar[0]["total"] if scalar else 0.0) * Q11_FRACTION
    plan = (
        _q11_values()
        .aggregate(
            key_fn=lambda r: r["ps_partkey"],
            seed_fn=lambda r: r["value"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda partkey, value: {
                "ps_partkey": partkey, "value": _round(value), "raw": value
            },
        )
        .filter(lambda r: r["raw"] > threshold)
        .map(lambda r: {"ps_partkey": r["ps_partkey"], "value": r["value"]})
        .order_by(lambda r: (-r["value"], r["ps_partkey"]))
    )
    return scheduler.execute(plan)


def _q15_revenue():
    return (
        ScanNode("lineitem")
        .filter(lambda li: Q15_DATE_LO <= li["l_shipdate"] < Q15_DATE_HI)
        .aggregate(
            key_fn=lambda li: li["l_suppkey"],
            seed_fn=_revenue,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda suppkey, total: {
                "r_suppkey": suppkey, "total_revenue": total
            },
        )
    )


def run_q15(scheduler: "QueryScheduler") -> list[dict]:
    max_plan = _q15_revenue().aggregate(
        key_fn=lambda r: 0,
        seed_fn=lambda r: r["total_revenue"],
        merge_fn=max,
        final_fn=lambda key, best: {"best": best},
    )
    scalar = scheduler.execute(max_plan)
    if not scalar:
        return []
    best = scalar[0]["best"]
    plan = (
        _q15_revenue()
        .filter(lambda r: abs(r["total_revenue"] - best) < 1e-6)
        .join(
            ScanNode("supplier"),
            left_key=lambda r: r["r_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda r, s: {
                "s_suppkey": s["s_suppkey"],
                "s_name": s["s_name"],
                "s_address": s["s_address"],
                "s_phone": s["s_phone"],
                "total_revenue": _round(r["total_revenue"]),
            },
        )
        .order_by(lambda r: r["s_suppkey"])
    )
    return scheduler.execute(plan)


def run_q16(scheduler: "QueryScheduler") -> list[dict]:
    part_f = ScanNode("part").filter(
        lambda p: p["p_brand"] != Q16_BRAND
        and not p["p_type"].startswith(Q16_TYPE_PREFIX)
        and p["p_size"] in Q16_SIZES
    )
    complainers = ScanNode("supplier").filter(
        lambda s: "Customer Complaints" in s["s_comment"]
    )
    plan = (
        ScanNode("partsupp")
        .join(
            complainers,
            left_key=lambda ps: ps["ps_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda ps, s: ps,
            how="left_anti",
        )
        .join(
            part_f,
            left_key=lambda ps: ps["ps_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda ps, p: {
                "p_brand": p["p_brand"],
                "p_type": p["p_type"],
                "p_size": p["p_size"],
                "suppkey": ps["ps_suppkey"],
            },
            left_key_name="ps_partkey",
            right_key_name="p_partkey",
        )
        # distinct (brand, type, size, suppkey), then count per group
        .aggregate(
            key_fn=lambda r: (r["p_brand"], r["p_type"], r["p_size"], r["suppkey"]),
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a,
            final_fn=lambda key, _one: {
                "p_brand": key[0], "p_type": key[1], "p_size": key[2]
            },
        )
        .aggregate(
            key_fn=lambda r: (r["p_brand"], r["p_type"], r["p_size"]),
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, count: {
                "p_brand": key[0],
                "p_type": key[1],
                "p_size": key[2],
                "supplier_cnt": count,
            },
        )
        .order_by(
            lambda r: (-r["supplier_cnt"], r["p_brand"], r["p_type"], r["p_size"])
        )
    )
    return scheduler.execute(plan)


def run_q20(scheduler: "QueryScheduler") -> list[dict]:
    part_f = ScanNode("part").filter(
        lambda p: p["p_name"].startswith(Q20_COLOR_PREFIX)
    )
    shipped = (
        ScanNode("lineitem")
        .filter(lambda li: Q20_DATE_LO <= li["l_shipdate"] < Q20_DATE_HI)
        .join(
            part_f,
            left_key=lambda li: li["l_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda li, p: li,
            left_key_name="l_partkey",
            right_key_name="p_partkey",
        )
        .aggregate(
            key_fn=lambda li: (li["l_partkey"], li["l_suppkey"]),
            seed_fn=lambda li: li["l_quantity"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, qty: {"sh_key": key, "qty": qty},
        )
    )
    qualified = (
        ScanNode("partsupp")
        .join(
            shipped,
            left_key=lambda ps: (ps["ps_partkey"], ps["ps_suppkey"]),
            right_key=lambda r: r["sh_key"],
            merge=lambda ps, r: {
                "suppkey": ps["ps_suppkey"],
                "ok": ps["ps_availqty"] > 0.5 * r["qty"],
            },
        )
        .filter(lambda r: r["ok"])
        .aggregate(
            key_fn=lambda r: r["suppkey"],
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a,
            final_fn=lambda suppkey, _one: {"q_suppkey": suppkey},
        )
    )
    nation_f = ScanNode("nation").filter(lambda n: n["n_name"] == Q20_NATION)
    plan = (
        ScanNode("supplier")
        .join(
            nation_f,
            left_key=lambda s: s["s_nationkey"],
            right_key=lambda n: n["n_nationkey"],
            merge=lambda s, n: s,
        )
        .join(
            qualified,
            left_key=lambda s: s["s_suppkey"],
            right_key=lambda r: r["q_suppkey"],
            merge=lambda s, r: s,
            how="left_semi",
        )
        .map(lambda s: {"s_name": s["s_name"], "s_address": s["s_address"]})
        .order_by(lambda r: r["s_name"])
    )
    return scheduler.execute(plan)


def run_q21(scheduler: "QueryScheduler") -> list[dict]:
    # Per-order supplier sets (all suppliers, and late suppliers).
    order_info = ScanNode("lineitem").aggregate(
        key_fn=lambda li: li["l_orderkey"],
        seed_fn=lambda li: (
            frozenset((li["l_suppkey"],)),
            frozenset((li["l_suppkey"],))
            if li["l_receiptdate"] > li["l_commitdate"]
            else frozenset(),
        ),
        merge_fn=lambda a, b: (a[0] | b[0], a[1] | b[1]),
        final_fn=lambda orderkey, acc: {
            "i_orderkey": orderkey,
            "suppliers": acc[0],
            "late": acc[1],
        },
    )
    f_orders = ScanNode("orders").filter(lambda o: o["o_orderstatus"] == "F")
    nation_f = ScanNode("nation").filter(lambda n: n["n_name"] == Q21_NATION)
    target_suppliers = ScanNode("supplier").join(
        nation_f,
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"], "s_name": s["s_name"]},
    )
    plan = (
        ScanNode("lineitem")
        .filter(lambda li: li["l_receiptdate"] > li["l_commitdate"])
        .join(
            target_suppliers,
            left_key=lambda li: li["l_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda li, s: {
                "l_orderkey": li["l_orderkey"],
                "l_suppkey": li["l_suppkey"],
                "s_name": s["s_name"],
            },
        )
        .join(
            f_orders,
            left_key=lambda r: r["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda r, o: r,
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
            how="left_semi",
        )
        .join(
            order_info,
            left_key=lambda r: r["l_orderkey"],
            right_key=lambda i: i["i_orderkey"],
            merge=lambda r, i: {
                **r,
                "others": len(i["suppliers"] - {r["l_suppkey"]}) > 0,
                "other_late": len(i["late"] - {r["l_suppkey"]}) > 0,
            },
        )
        .filter(lambda r: r["others"] and not r["other_late"])
        .aggregate(
            key_fn=lambda r: r["s_name"],
            seed_fn=lambda r: 1,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda name, count: {"s_name": name, "numwait": count},
        )
        .order_by(lambda r: (-r["numwait"], r["s_name"]))
        .limit(100)
    )
    return scheduler.execute(plan)


FULL_QUERIES = {
    "Q07": run_q07,
    "Q08": run_q08,
    "Q09": run_q09,
    "Q11": run_q11,
    "Q15": run_q15,
    "Q16": run_q16,
    "Q20": run_q20,
    "Q21": run_q21,
}

FULL_REFERENCE_QUERIES = {
    "Q07": ref_q07,
    "Q08": ref_q08,
    "Q09": ref_q09,
    "Q11": ref_q11,
    "Q15": ref_q15,
    "Q16": ref_q16,
    "Q20": ref_q20,
    "Q21": ref_q21,
}
