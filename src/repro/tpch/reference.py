"""Pure-Python reference implementations of the nine TPC-H queries.

These are the correctness oracle for the Pangea query processor (and for
the Spark-baseline runner): each function takes the raw generated tables
and returns the rows the distributed execution must match.
"""

from __future__ import annotations

from collections import defaultdict

from repro.tpch.schema import d

Q01_SHIP_CUTOFF = d(1998, 9, 2)
Q02_SIZE = 15
Q02_TYPE_SUFFIX = "BRASS"
Q02_REGION = "EUROPE"
Q04_DATE_LO = d(1993, 7, 1)
Q04_DATE_HI = d(1993, 10, 1)
Q06_DATE_LO = d(1994, 1, 1)
Q06_DATE_HI = d(1995, 1, 1)
Q06_DISCOUNT_LO = 0.05
Q06_DISCOUNT_HI = 0.07
Q06_QUANTITY = 24
Q12_MODES = ("MAIL", "SHIP")
Q12_DATE_LO = d(1994, 1, 1)
Q12_DATE_HI = d(1995, 1, 1)
Q13_WORD1 = "special"
Q13_WORD2 = "requests"
Q14_DATE_LO = d(1995, 9, 1)
Q14_DATE_HI = d(1995, 10, 1)
Q17_BRAND = "Brand#23"
Q17_CONTAINER = "MED BOX"
Q22_CODES = ("13", "31", "23", "29", "30", "18", "17")


def _round(value: float, digits: int = 2) -> float:
    return round(value, digits)


def q01(tables: dict) -> list[dict]:
    groups: dict = {}
    for li in tables["lineitem"]:
        if li["l_shipdate"] > Q01_SHIP_CUTOFF:
            continue
        key = (li["l_returnflag"], li["l_linestatus"])
        acc = groups.setdefault(
            key, {"qty": 0.0, "base": 0.0, "disc": 0.0, "charge": 0.0,
                  "discount": 0.0, "count": 0}
        )
        disc_price = li["l_extendedprice"] * (1 - li["l_discount"])
        acc["qty"] += li["l_quantity"]
        acc["base"] += li["l_extendedprice"]
        acc["disc"] += disc_price
        acc["charge"] += disc_price * (1 + li["l_tax"])
        acc["discount"] += li["l_discount"]
        acc["count"] += 1
    out = []
    for (flag, status) in sorted(groups):
        acc = groups[(flag, status)]
        out.append(
            {
                "l_returnflag": flag,
                "l_linestatus": status,
                "sum_qty": _round(acc["qty"]),
                "sum_base_price": _round(acc["base"]),
                "sum_disc_price": _round(acc["disc"]),
                "sum_charge": _round(acc["charge"]),
                "avg_qty": _round(acc["qty"] / acc["count"], 4),
                "avg_price": _round(acc["base"] / acc["count"], 4),
                "avg_disc": _round(acc["discount"] / acc["count"], 4),
                "count_order": acc["count"],
            }
        )
    return out


def q02(tables: dict) -> list[dict]:
    region_keys = {
        r["r_regionkey"] for r in tables["region"] if r["r_name"] == Q02_REGION
    }
    nations = {
        n["n_nationkey"]: n
        for n in tables["nation"]
        if n["n_regionkey"] in region_keys
    }
    suppliers = {
        s["s_suppkey"]: s
        for s in tables["supplier"]
        if s["s_nationkey"] in nations
    }
    parts = {
        p["p_partkey"]: p
        for p in tables["part"]
        if p["p_size"] == Q02_SIZE and p["p_type"].endswith(Q02_TYPE_SUFFIX)
    }
    min_cost: dict = {}
    for ps in tables["partsupp"]:
        if ps["ps_partkey"] in parts and ps["ps_suppkey"] in suppliers:
            cur = min_cost.get(ps["ps_partkey"])
            if cur is None or ps["ps_supplycost"] < cur:
                min_cost[ps["ps_partkey"]] = ps["ps_supplycost"]
    out = []
    for ps in tables["partsupp"]:
        partkey = ps["ps_partkey"]
        if partkey in parts and ps["ps_suppkey"] in suppliers:
            if ps["ps_supplycost"] == min_cost[partkey]:
                supp = suppliers[ps["ps_suppkey"]]
                out.append(
                    {
                        "s_acctbal": supp["s_acctbal"],
                        "s_name": supp["s_name"],
                        "n_name": nations[supp["s_nationkey"]]["n_name"],
                        "p_partkey": partkey,
                        "p_mfgr": parts[partkey]["p_mfgr"],
                        "s_phone": supp["s_phone"],
                    }
                )
    out.sort(
        key=lambda r: (-r["s_acctbal"], r["n_name"], r["s_name"], r["p_partkey"])
    )
    return out[:100]


def q04(tables: dict) -> list[dict]:
    late = {
        li["l_orderkey"]
        for li in tables["lineitem"]
        if li["l_commitdate"] < li["l_receiptdate"]
    }
    counts: dict = defaultdict(int)
    for order in tables["orders"]:
        if Q04_DATE_LO <= order["o_orderdate"] < Q04_DATE_HI and order["o_orderkey"] in late:
            counts[order["o_orderpriority"]] += 1
    return [
        {"o_orderpriority": priority, "order_count": counts[priority]}
        for priority in sorted(counts)
    ]


def q06(tables: dict) -> list[dict]:
    revenue = 0.0
    for li in tables["lineitem"]:
        if (
            Q06_DATE_LO <= li["l_shipdate"] < Q06_DATE_HI
            and Q06_DISCOUNT_LO - 1e-9 <= li["l_discount"] <= Q06_DISCOUNT_HI + 1e-9
            and li["l_quantity"] < Q06_QUANTITY
        ):
            revenue += li["l_extendedprice"] * li["l_discount"]
    return [{"revenue": _round(revenue)}]


def q12(tables: dict) -> list[dict]:
    orders = {o["o_orderkey"]: o for o in tables["orders"]}
    counts: dict = {}
    for li in tables["lineitem"]:
        if li["l_shipmode"] not in Q12_MODES:
            continue
        if not (li["l_shipdate"] < li["l_commitdate"] < li["l_receiptdate"]):
            continue
        if not (Q12_DATE_LO <= li["l_receiptdate"] < Q12_DATE_HI):
            continue
        order = orders[li["l_orderkey"]]
        acc = counts.setdefault(li["l_shipmode"], {"high": 0, "low": 0})
        if order["o_orderpriority"] in ("1-URGENT", "2-HIGH"):
            acc["high"] += 1
        else:
            acc["low"] += 1
    return [
        {
            "l_shipmode": mode,
            "high_line_count": counts[mode]["high"],
            "low_line_count": counts[mode]["low"],
        }
        for mode in sorted(counts)
    ]


def q13(tables: dict) -> list[dict]:
    per_customer: dict = defaultdict(int)
    for order in tables["orders"]:
        comment = order["o_comment"]
        i = comment.find(Q13_WORD1)
        if i >= 0 and comment.find(Q13_WORD2, i + len(Q13_WORD1)) >= 0:
            continue
        per_customer[order["o_custkey"]] += 1
    distribution: dict = defaultdict(int)
    for customer in tables["customer"]:
        distribution[per_customer.get(customer["c_custkey"], 0)] += 1
    out = [
        {"c_count": c_count, "custdist": custdist}
        for c_count, custdist in distribution.items()
    ]
    out.sort(key=lambda r: (-r["custdist"], -r["c_count"]))
    return out


def q14(tables: dict) -> list[dict]:
    parts = {p["p_partkey"]: p for p in tables["part"]}
    promo = 0.0
    total = 0.0
    for li in tables["lineitem"]:
        if not (Q14_DATE_LO <= li["l_shipdate"] < Q14_DATE_HI):
            continue
        disc_price = li["l_extendedprice"] * (1 - li["l_discount"])
        total += disc_price
        if parts[li["l_partkey"]]["p_type"].startswith("PROMO"):
            promo += disc_price
    value = 100.0 * promo / total if total else 0.0
    return [{"promo_revenue": _round(value, 4)}]


def q17(tables: dict) -> list[dict]:
    target_parts = {
        p["p_partkey"]
        for p in tables["part"]
        if p["p_brand"] == Q17_BRAND and p["p_container"] == Q17_CONTAINER
    }
    sums: dict = defaultdict(lambda: [0.0, 0])
    for li in tables["lineitem"]:
        if li["l_partkey"] in target_parts:
            acc = sums[li["l_partkey"]]
            acc[0] += li["l_quantity"]
            acc[1] += 1
    total = 0.0
    for li in tables["lineitem"]:
        partkey = li["l_partkey"]
        if partkey in target_parts:
            avg_qty = sums[partkey][0] / sums[partkey][1]
            if li["l_quantity"] < 0.2 * avg_qty:
                total += li["l_extendedprice"]
    return [{"avg_yearly": _round(total / 7.0)}]


def q22(tables: dict) -> list[dict]:
    def code(customer: dict) -> str:
        return customer["c_phone"][:2]

    eligible = [
        c for c in tables["customer"] if code(c) in Q22_CODES
    ]
    positive = [c["c_acctbal"] for c in eligible if c["c_acctbal"] > 0.0]
    avg_bal = sum(positive) / len(positive) if positive else 0.0
    with_orders = {o["o_custkey"] for o in tables["orders"]}
    groups: dict = defaultdict(lambda: [0, 0.0])
    for customer in eligible:
        if customer["c_acctbal"] > avg_bal and customer["c_custkey"] not in with_orders:
            acc = groups[code(customer)]
            acc[0] += 1
            acc[1] += customer["c_acctbal"]
    return [
        {"cntrycode": cc, "numcust": acc[0], "totacctbal": _round(acc[1])}
        for cc, acc in sorted(groups.items())
    ]


REFERENCE_QUERIES = {
    "Q01": q01,
    "Q02": q02,
    "Q04": q04,
    "Q06": q06,
    "Q12": q12,
    "Q13": q13,
    "Q14": q14,
    "Q17": q17,
    "Q22": q22,
}
