"""TPC-H substrate: schemas, a deterministic dbgen-like generator, the nine
benchmark queries the paper runs (Q01 Q02 Q04 Q06 Q12 Q13 Q14 Q17 Q22), and
pure-Python reference implementations used as the correctness oracle.
"""

from repro.tpch.datagen import TpchGenerator, load_tpch
from repro.tpch.extra_queries import EXTRA_QUERIES, EXTRA_REFERENCE_QUERIES
from repro.tpch.full_queries import FULL_QUERIES, FULL_REFERENCE_QUERIES
from repro.tpch.queries import QUERIES, register_tpch_replicas
from repro.tpch.reference import REFERENCE_QUERIES

__all__ = [
    "TpchGenerator",
    "load_tpch",
    "QUERIES",
    "register_tpch_replicas",
    "REFERENCE_QUERIES",
    "EXTRA_QUERIES",
    "EXTRA_REFERENCE_QUERIES",
    "FULL_QUERIES",
    "FULL_REFERENCE_QUERIES",
]
