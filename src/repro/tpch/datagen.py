"""A deterministic dbgen-like TPC-H data generator.

``TpchGenerator(scale)`` produces dict records for every table with the
value distributions the nine benchmark queries depend on (ship/commit/
receipt date relationships, PROMO part types, comment patterns for Q13,
phone country codes for Q22, ...).  Generation is seeded, so two runs at
the same scale produce identical data.
"""

from __future__ import annotations

import random

from repro.tpch import schema


class TpchGenerator:
    """Generate all eight TPC-H tables at a fractional scale factor."""

    def __init__(self, scale: float = 0.001, seed: int = 7) -> None:
        if scale <= 0:
            raise ValueError("scale factor must be positive")
        self.scale = scale
        self.seed = seed
        self.num_parts = schema.rows_for("part", scale)
        self.num_suppliers = schema.rows_for("supplier", scale)
        self.num_customers = schema.rows_for("customer", scale)
        self.num_orders = schema.rows_for("orders", scale)

    # ------------------------------------------------------------------
    # small dimension tables
    # ------------------------------------------------------------------

    def region(self) -> list[dict]:
        return [
            {"r_regionkey": i, "r_name": name, "r_comment": f"region {name.lower()}"}
            for i, name in enumerate(schema.REGIONS)
        ]

    def nation(self) -> list[dict]:
        return [
            {
                "n_nationkey": i,
                "n_name": name,
                "n_regionkey": region,
                "n_comment": f"nation {name.lower()}",
            }
            for i, (name, region) in enumerate(schema.NATIONS)
        ]

    # ------------------------------------------------------------------
    # base tables
    # ------------------------------------------------------------------

    def supplier(self) -> list[dict]:
        rng = random.Random(f"{self.seed}-supplier")
        rows = []
        for key in range(1, self.num_suppliers + 1):
            nation = rng.randrange(len(schema.NATIONS))
            rows.append(
                {
                    "s_suppkey": key,
                    "s_name": f"Supplier#{key:09d}",
                    "s_address": f"addr-{rng.randrange(10_000)}",
                    "s_nationkey": nation,
                    "s_phone": _phone(nation, rng),
                    "s_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                    "s_comment": _comment(rng, supplier=True),
                }
            )
        return rows

    def customer(self) -> list[dict]:
        rng = random.Random(f"{self.seed}-customer")
        rows = []
        for key in range(1, self.num_customers + 1):
            nation = rng.randrange(len(schema.NATIONS))
            rows.append(
                {
                    "c_custkey": key,
                    "c_name": f"Customer#{key:09d}",
                    "c_address": f"addr-{rng.randrange(100_000)}",
                    "c_nationkey": nation,
                    "c_phone": _phone(nation, rng),
                    "c_acctbal": round(rng.uniform(-999.99, 9999.99), 2),
                    "c_mktsegment": rng.choice(schema.MARKET_SEGMENTS),
                    "c_comment": _comment(rng),
                }
            )
        return rows

    def part(self) -> list[dict]:
        rng = random.Random(f"{self.seed}-part")
        rows = []
        for key in range(1, self.num_parts + 1):
            brand = f"Brand#{rng.randrange(1, 6)}{rng.randrange(1, 6)}"
            ptype = " ".join(
                (
                    rng.choice(schema.TYPE_SYLLABLE_1),
                    rng.choice(schema.TYPE_SYLLABLE_2),
                    rng.choice(schema.TYPE_SYLLABLE_3),
                )
            )
            container = " ".join(
                (
                    rng.choice(schema.CONTAINER_SYLLABLE_1),
                    rng.choice(schema.CONTAINER_SYLLABLE_2),
                )
            )
            name = " ".join(rng.sample(schema.P_NAME_WORDS, 5))
            rows.append(
                {
                    "p_partkey": key,
                    "p_name": name,
                    "p_mfgr": f"Manufacturer#{rng.randrange(1, 6)}",
                    "p_brand": brand,
                    "p_type": ptype,
                    "p_size": rng.randrange(1, 51),
                    "p_container": container,
                    "p_retailprice": round(900 + (key % 1000) * 0.1, 2),
                    "p_comment": "plated",
                }
            )
        return rows

    def suppliers_of_part(self, partkey: int) -> list[int]:
        """The four suppliers dbgen assigns to a part; lineitem draws its
        ``l_suppkey`` from these so partsupp lookups always succeed."""
        return [
            1 + (partkey + i * (self.num_suppliers // 4 + 1)) % self.num_suppliers
            for i in range(4)
        ]

    def partsupp(self) -> list[dict]:
        rng = random.Random(f"{self.seed}-partsupp")
        rows = []
        for partkey in range(1, self.num_parts + 1):
            for suppkey in self.suppliers_of_part(partkey):
                rows.append(
                    {
                        "ps_partkey": partkey,
                        "ps_suppkey": suppkey,
                        "ps_availqty": rng.randrange(1, 10_000),
                        "ps_supplycost": round(rng.uniform(1.0, 1000.0), 2),
                        "ps_comment": "standard",
                    }
                )
        return rows

    def orders(self) -> list[dict]:
        rng = random.Random(f"{self.seed}-orders")
        rows = []
        span = schema.END_DATE - schema.START_DATE - 151
        for key in range(1, self.num_orders + 1):
            orderdate = schema.START_DATE + rng.randrange(span)
            comment = _comment(rng)
            if rng.random() < 0.01:
                comment = f"blah special{' packages' if rng.random() < 0.5 else ''} requests blah"
            # dbgen never assigns orders to customers whose key is divisible
            # by three — Q13's zero spike and Q22's market depend on it.
            custkey = rng.randrange(1, self.num_customers + 1)
            while custkey % 3 == 0:
                custkey = rng.randrange(1, self.num_customers + 1)
            rows.append(
                {
                    "o_orderkey": key,
                    "o_custkey": custkey,
                    "o_orderstatus": "F" if orderdate < schema.CURRENT_DATE else "O",
                    "o_totalprice": round(rng.uniform(1000, 400_000), 2),
                    "o_orderdate": orderdate,
                    "o_orderpriority": rng.choice(schema.ORDER_PRIORITIES),
                    "o_clerk": f"Clerk#{rng.randrange(1000):09d}",
                    "o_shippriority": 0,
                    "o_comment": comment,
                }
            )
        return rows

    def lineitem(self, orders: "list[dict] | None" = None) -> list[dict]:
        rng = random.Random(f"{self.seed}-lineitem")
        orders = orders if orders is not None else self.orders()
        rows = []
        for order in orders:
            for linenumber in range(1, rng.randrange(1, 8)):
                quantity = rng.randrange(1, 51)
                partkey = rng.randrange(1, self.num_parts + 1)
                suppkey = rng.choice(self.suppliers_of_part(partkey))
                shipdate = order["o_orderdate"] + rng.randrange(1, 122)
                commitdate = order["o_orderdate"] + rng.randrange(30, 91)
                receiptdate = shipdate + rng.randrange(1, 31)
                extendedprice = round(quantity * (900 + (partkey % 1000) * 0.1), 2)
                returnflag = (
                    rng.choice("RA") if receiptdate <= schema.CURRENT_DATE else "N"
                )
                rows.append(
                    {
                        "l_orderkey": order["o_orderkey"],
                        "l_partkey": partkey,
                        "l_suppkey": suppkey,
                        "l_linenumber": linenumber,
                        "l_quantity": quantity,
                        "l_extendedprice": extendedprice,
                        "l_discount": round(rng.uniform(0.0, 0.10), 2),
                        "l_tax": round(rng.uniform(0.0, 0.08), 2),
                        "l_returnflag": returnflag,
                        "l_linestatus": "F" if shipdate <= schema.CURRENT_DATE else "O",
                        "l_shipdate": shipdate,
                        "l_commitdate": commitdate,
                        "l_receiptdate": receiptdate,
                        "l_shipinstruct": rng.choice(schema.SHIP_INSTRUCTS),
                        "l_shipmode": rng.choice(schema.SHIP_MODES),
                        "l_comment": "line",
                    }
                )
        return rows

    # ------------------------------------------------------------------
    # everything
    # ------------------------------------------------------------------

    def all_tables(self) -> dict[str, list[dict]]:
        orders = self.orders()
        return {
            "region": self.region(),
            "nation": self.nation(),
            "supplier": self.supplier(),
            "customer": self.customer(),
            "part": self.part(),
            "partsupp": self.partsupp(),
            "orders": orders,
            "lineitem": self.lineitem(orders),
        }


def _phone(nationkey: int, rng: random.Random) -> str:
    country_code = nationkey + 10
    return (
        f"{country_code}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}"
    )


_WORDS = [
    "carefully", "quickly", "furiously", "ironic", "final", "pending",
    "bold", "silent", "express", "regular", "deposits", "accounts",
    "theodolites", "packages", "instructions",
]


def _comment(rng: random.Random, supplier: bool = False) -> str:
    words = [rng.choice(_WORDS) for _ in range(4)]
    if supplier and rng.random() < 0.005:
        words.insert(2, "Customer Complaints")
    return " ".join(words)


def load_tpch(
    cluster,
    scale: float = 0.001,
    page_size: int | None = None,
    seed: int = 7,
    row_scale: float = 1.0,
) -> dict[str, list[dict]]:
    """Generate TPC-H data and load every table into the cluster.

    Returns the raw tables (useful as the reference-query input).  Each
    table becomes a randomly dispatched write-through locality set.

    ``row_scale`` inflates each row's *logical* byte size; benchmarks use
    it to run scale-100 data volumes over scaled-down row counts (set it
    to ``target_sf / scale``).
    """
    from repro.sim.devices import MB

    generator = TpchGenerator(scale=scale, seed=seed)
    tables = generator.all_tables()
    page_size = page_size or 4 * MB
    for name, rows in tables.items():
        dataset = cluster.create_set(
            name,
            durability="write-through",
            page_size=page_size,
            object_bytes=max(1, int(schema.ROW_BYTES[name] * row_scale)),
        )
        dataset.add_data(rows)
    return tables
