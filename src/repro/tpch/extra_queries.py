"""Five additional TPC-H queries beyond the paper's nine.

The paper evaluates Q01 Q02 Q04 Q06 Q12 Q13 Q14 Q17 Q22; these extensions
(Q03 Q05 Q10 Q18 Q19) exercise the query processor harder — multi-way
joins, join-key chains across three and more tables, semi-join on an
aggregate, and disjunctive multi-table predicates — and demonstrate that
the operator library generalizes past the paper's workload.

Each query has a reference implementation (the oracle) and a plan-based
implementation with the same output.
"""

from __future__ import annotations

import typing
from collections import defaultdict

from repro.query.operators import ScanNode
from repro.tpch.schema import d

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.query.scheduler import QueryScheduler

Q03_SEGMENT = "BUILDING"
Q03_DATE = d(1995, 3, 15)
Q05_REGION = "ASIA"
Q05_DATE_LO = d(1994, 1, 1)
Q05_DATE_HI = d(1995, 1, 1)
Q10_DATE_LO = d(1993, 10, 1)
Q10_DATE_HI = d(1994, 1, 1)
Q18_QUANTITY = 250
Q19_BRAND1, Q19_BRAND2, Q19_BRAND3 = "Brand#12", "Brand#23", "Brand#34"


def _round(value: float, digits: int = 2) -> float:
    return round(value, digits)


def _revenue(li: dict) -> float:
    return li["l_extendedprice"] * (1 - li["l_discount"])


# ----------------------------------------------------------------------
# reference implementations (the oracle)
# ----------------------------------------------------------------------

def ref_q03(tables: dict) -> list[dict]:
    buyers = {
        c["c_custkey"] for c in tables["customer"]
        if c["c_mktsegment"] == Q03_SEGMENT
    }
    orders = {
        o["o_orderkey"]: o
        for o in tables["orders"]
        if o["o_orderdate"] < Q03_DATE and o["o_custkey"] in buyers
    }
    revenue: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if li["l_shipdate"] > Q03_DATE and li["l_orderkey"] in orders:
            revenue[li["l_orderkey"]] += _revenue(li)
    out = [
        {
            "l_orderkey": orderkey,
            "revenue": _round(total),
            "o_orderdate": orders[orderkey]["o_orderdate"],
            "o_shippriority": orders[orderkey]["o_shippriority"],
        }
        for orderkey, total in revenue.items()
    ]
    out.sort(key=lambda r: (-r["revenue"], r["o_orderdate"], r["l_orderkey"]))
    return out[:10]


def ref_q05(tables: dict) -> list[dict]:
    region_keys = {
        r["r_regionkey"] for r in tables["region"] if r["r_name"] == Q05_REGION
    }
    nations = {
        n["n_nationkey"]: n["n_name"]
        for n in tables["nation"]
        if n["n_regionkey"] in region_keys
    }
    customers = {
        c["c_custkey"]: c["c_nationkey"]
        for c in tables["customer"]
        if c["c_nationkey"] in nations
    }
    suppliers = {
        s["s_suppkey"]: s["s_nationkey"]
        for s in tables["supplier"]
        if s["s_nationkey"] in nations
    }
    orders = {
        o["o_orderkey"]: o["o_custkey"]
        for o in tables["orders"]
        if Q05_DATE_LO <= o["o_orderdate"] < Q05_DATE_HI
        and o["o_custkey"] in customers
    }
    revenue: dict = defaultdict(float)
    for li in tables["lineitem"]:
        custkey = orders.get(li["l_orderkey"])
        if custkey is None:
            continue
        supp_nation = suppliers.get(li["l_suppkey"])
        if supp_nation is None:
            continue
        # "local supplier": customer and supplier share the nation.
        if supp_nation == customers[custkey]:
            revenue[nations[supp_nation]] += _revenue(li)
    out = [
        {"n_name": name, "revenue": _round(total)}
        for name, total in revenue.items()
    ]
    out.sort(key=lambda r: -r["revenue"])
    return out


def ref_q10(tables: dict) -> list[dict]:
    orders = {
        o["o_orderkey"]: o["o_custkey"]
        for o in tables["orders"]
        if Q10_DATE_LO <= o["o_orderdate"] < Q10_DATE_HI
    }
    revenue: dict = defaultdict(float)
    for li in tables["lineitem"]:
        if li["l_returnflag"] == "R" and li["l_orderkey"] in orders:
            revenue[orders[li["l_orderkey"]]] += _revenue(li)
    nations = {n["n_nationkey"]: n["n_name"] for n in tables["nation"]}
    customers = {c["c_custkey"]: c for c in tables["customer"]}
    out = []
    for custkey, total in revenue.items():
        customer = customers[custkey]
        out.append(
            {
                "c_custkey": custkey,
                "c_name": customer["c_name"],
                "revenue": _round(total),
                "c_acctbal": customer["c_acctbal"],
                "n_name": nations[customer["c_nationkey"]],
            }
        )
    out.sort(key=lambda r: (-r["revenue"], r["c_custkey"]))
    return out[:20]


def ref_q18(tables: dict) -> list[dict]:
    quantity: dict = defaultdict(float)
    for li in tables["lineitem"]:
        quantity[li["l_orderkey"]] += li["l_quantity"]
    big = {k for k, q in quantity.items() if q > Q18_QUANTITY}
    customers = {c["c_custkey"]: c["c_name"] for c in tables["customer"]}
    out = []
    for order in tables["orders"]:
        if order["o_orderkey"] in big:
            out.append(
                {
                    "c_name": customers[order["o_custkey"]],
                    "c_custkey": order["o_custkey"],
                    "o_orderkey": order["o_orderkey"],
                    "o_orderdate": order["o_orderdate"],
                    "o_totalprice": order["o_totalprice"],
                    "sum_qty": _round(quantity[order["o_orderkey"]]),
                }
            )
    out.sort(key=lambda r: (-r["o_totalprice"], r["o_orderdate"]))
    return out[:100]


def _q19_match(li: dict, part: dict) -> bool:
    if li["l_shipmode"] not in ("AIR", "REG AIR"):
        return False
    if li["l_shipinstruct"] != "DELIVER IN PERSON":
        return False
    brand, container, qty, size = (
        part["p_brand"], part["p_container"], li["l_quantity"], part["p_size"]
    )
    if (
        brand == Q19_BRAND1
        and container.split()[0] == "SM"
        and 1 <= qty <= 11
        and 1 <= size <= 5
    ):
        return True
    if (
        brand == Q19_BRAND2
        and container.split()[0] == "MED"
        and 10 <= qty <= 20
        and 1 <= size <= 10
    ):
        return True
    if (
        brand == Q19_BRAND3
        and container.split()[0] in ("LG", "JUMBO")
        and 20 <= qty <= 30
        and 1 <= size <= 15
    ):
        return True
    return False


def ref_q19(tables: dict) -> list[dict]:
    parts = {p["p_partkey"]: p for p in tables["part"]}
    revenue = 0.0
    for li in tables["lineitem"]:
        if _q19_match(li, parts[li["l_partkey"]]):
            revenue += _revenue(li)
    return [{"revenue": _round(revenue)}]


# ----------------------------------------------------------------------
# plan implementations
# ----------------------------------------------------------------------

def run_q03(scheduler: "QueryScheduler") -> list[dict]:
    buyers = ScanNode("customer").filter(
        lambda c: c["c_mktsegment"] == Q03_SEGMENT
    )
    open_orders = (
        ScanNode("orders")
        .filter(lambda o: o["o_orderdate"] < Q03_DATE)
        .join(
            buyers,
            left_key=lambda o: o["o_custkey"],
            right_key=lambda c: c["c_custkey"],
            merge=lambda o, c: o,
            left_key_name="o_custkey",
            right_key_name="c_custkey",
            how="left_semi",
        )
    )
    plan = (
        ScanNode("lineitem")
        .filter(lambda li: li["l_shipdate"] > Q03_DATE)
        .join(
            open_orders,
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {
                "l_orderkey": li["l_orderkey"],
                "rev": _revenue(li),
                "o_orderdate": o["o_orderdate"],
                "o_shippriority": o["o_shippriority"],
            },
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .aggregate(
            key_fn=lambda r: (r["l_orderkey"], r["o_orderdate"], r["o_shippriority"]),
            seed_fn=lambda r: r["rev"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {
                "l_orderkey": key[0],
                "revenue": _round(total),
                "o_orderdate": key[1],
                "o_shippriority": key[2],
            },
        )
        .order_by(lambda r: (-r["revenue"], r["o_orderdate"], r["l_orderkey"]))
        .limit(10)
    )
    return scheduler.execute(plan)


def run_q05(scheduler: "QueryScheduler") -> list[dict]:
    region_f = ScanNode("region").filter(lambda r: r["r_name"] == Q05_REGION)
    nation_r = ScanNode("nation").join(
        region_f,
        left_key=lambda n: n["n_regionkey"],
        right_key=lambda r: r["r_regionkey"],
        merge=lambda n, r: n,
    )
    cust_r = ScanNode("customer").join(
        nation_r,
        left_key=lambda c: c["c_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda c, n: {"c_custkey": c["c_custkey"],
                            "c_nationkey": c["c_nationkey"]},
    )
    supp_r = ScanNode("supplier").join(
        nation_r,
        left_key=lambda s: s["s_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda s, n: {"s_suppkey": s["s_suppkey"],
                            "s_nationkey": s["s_nationkey"],
                            "n_name": n["n_name"]},
    )
    orders_f = (
        ScanNode("orders")
        .filter(lambda o: Q05_DATE_LO <= o["o_orderdate"] < Q05_DATE_HI)
        .join(
            cust_r,
            left_key=lambda o: o["o_custkey"],
            right_key=lambda c: c["c_custkey"],
            merge=lambda o, c: {"o_orderkey": o["o_orderkey"],
                                "c_nationkey": c["c_nationkey"]},
            left_key_name="o_custkey",
            right_key_name="c_custkey",
        )
    )
    plan = (
        ScanNode("lineitem")
        .join(
            orders_f,
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {**li, "c_nationkey": o["c_nationkey"]},
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .join(
            supp_r,
            left_key=lambda r: r["l_suppkey"],
            right_key=lambda s: s["s_suppkey"],
            merge=lambda r, s: {**r, "s_nationkey": s["s_nationkey"],
                                "n_name": s["n_name"]},
        )
        .filter(lambda r: r["s_nationkey"] == r["c_nationkey"])
        .aggregate(
            key_fn=lambda r: r["n_name"],
            seed_fn=_revenue,
            merge_fn=lambda a, b: a + b,
            final_fn=lambda name, total: {
                "n_name": name, "revenue": _round(total)
            },
        )
        .order_by(lambda r: -r["revenue"])
    )
    return scheduler.execute(plan)


def run_q10(scheduler: "QueryScheduler") -> list[dict]:
    orders_f = ScanNode("orders").filter(
        lambda o: Q10_DATE_LO <= o["o_orderdate"] < Q10_DATE_HI
    )
    per_customer = (
        ScanNode("lineitem")
        .filter(lambda li: li["l_returnflag"] == "R")
        .join(
            orders_f,
            left_key=lambda li: li["l_orderkey"],
            right_key=lambda o: o["o_orderkey"],
            merge=lambda li, o: {"c_custkey": o["o_custkey"], "rev": _revenue(li)},
            left_key_name="l_orderkey",
            right_key_name="o_orderkey",
        )
        .aggregate(
            key_fn=lambda r: r["c_custkey"],
            seed_fn=lambda r: r["rev"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda custkey, total: {
                "c_custkey": custkey, "revenue": _round(total)
            },
        )
    )
    nation_names = ScanNode("nation").map(
        lambda n: {"n_nationkey": n["n_nationkey"], "n_name": n["n_name"]}
    )
    cust_full = ScanNode("customer").join(
        nation_names,
        left_key=lambda c: c["c_nationkey"],
        right_key=lambda n: n["n_nationkey"],
        merge=lambda c, n: {**c, "n_name": n["n_name"]},
    )
    plan = (
        per_customer.join(
            cust_full,
            left_key=lambda r: r["c_custkey"],
            right_key=lambda c: c["c_custkey"],
            merge=lambda r, c: {
                "c_custkey": r["c_custkey"],
                "c_name": c["c_name"],
                "revenue": r["revenue"],
                "c_acctbal": c["c_acctbal"],
                "n_name": c["n_name"],
            },
        )
        .order_by(lambda r: (-r["revenue"], r["c_custkey"]))
        .limit(20)
    )
    return scheduler.execute(plan)


def run_q18(scheduler: "QueryScheduler") -> list[dict]:
    big_orders = (
        ScanNode("lineitem")
        .aggregate(
            key_fn=lambda li: li["l_orderkey"],
            seed_fn=lambda li: li["l_quantity"],
            merge_fn=lambda a, b: a + b,
            final_fn=lambda orderkey, qty: {"b_orderkey": orderkey, "qty": qty},
        )
        .filter(lambda r: r["qty"] > Q18_QUANTITY)
    )
    cust_names = ScanNode("customer").map(
        lambda c: {"c_custkey": c["c_custkey"], "c_name": c["c_name"]}
    )
    plan = (
        ScanNode("orders")
        .join(
            big_orders,
            left_key=lambda o: o["o_orderkey"],
            right_key=lambda r: r["b_orderkey"],
            merge=lambda o, r: {**o, "sum_qty": _round(r["qty"])},
        )
        .join(
            cust_names,
            left_key=lambda o: o["o_custkey"],
            right_key=lambda c: c["c_custkey"],
            merge=lambda o, c: {
                "c_name": c["c_name"],
                "c_custkey": o["o_custkey"],
                "o_orderkey": o["o_orderkey"],
                "o_orderdate": o["o_orderdate"],
                "o_totalprice": o["o_totalprice"],
                "sum_qty": o["sum_qty"],
            },
        )
        .order_by(lambda r: (-r["o_totalprice"], r["o_orderdate"]))
        .limit(100)
    )
    return scheduler.execute(plan)


def run_q19(scheduler: "QueryScheduler") -> list[dict]:
    plan = (
        ScanNode("lineitem")
        .filter(
            lambda li: li["l_shipmode"] in ("AIR", "REG AIR")
            and li["l_shipinstruct"] == "DELIVER IN PERSON"
        )
        .join(
            ScanNode("part"),
            left_key=lambda li: li["l_partkey"],
            right_key=lambda p: p["p_partkey"],
            merge=lambda li, p: {"li": li, "p": p},
            left_key_name="l_partkey",
            right_key_name="p_partkey",
        )
        .filter(lambda r: _q19_match(r["li"], r["p"]))
        .aggregate(
            key_fn=lambda r: 0,
            seed_fn=lambda r: _revenue(r["li"]),
            merge_fn=lambda a, b: a + b,
            final_fn=lambda key, total: {"revenue": _round(total)},
        )
    )
    result = scheduler.execute(plan)
    return result if result else [{"revenue": 0.0}]


EXTRA_QUERIES = {
    "Q03": run_q03,
    "Q05": run_q05,
    "Q10": run_q10,
    "Q18": run_q18,
    "Q19": run_q19,
}

EXTRA_REFERENCE_QUERIES = {
    "Q03": ref_q03,
    "Q05": ref_q05,
    "Q10": ref_q10,
    "Q18": ref_q18,
    "Q19": ref_q19,
}
