"""TPC-H table schemas and shared constants.

Dates are stored as ``datetime.date.toordinal()`` integers so range
predicates and day arithmetic stay cheap and comparable.
"""

from __future__ import annotations

from datetime import date

#: Rows per table at scale factor 1.0 (the official dbgen cardinalities).
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,  # approximate: 1-7 lines per order
}

#: Approximate serialized row widths in bytes (used as object_bytes).
ROW_BYTES = {
    "region": 64,
    "nation": 72,
    "supplier": 160,
    "customer": 180,
    "part": 156,
    "partsupp": 144,
    "orders": 128,
    "lineitem": 144,
}

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: (nation name, region index) — the official 25 nations.
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
SHIP_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

#: Color words dbgen composes part names from (Q09 filters on "green",
#: Q20 on the "forest" prefix).
P_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
    "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
    "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
    "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
    "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
    "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
    "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
    "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
    "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
    "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
    "yellow",
]

START_DATE = date(1992, 1, 1).toordinal()
END_DATE = date(1998, 12, 1).toordinal()
CURRENT_DATE = date(1995, 6, 17).toordinal()


def d(year: int, month: int, day: int) -> int:
    """Shorthand: a date literal as an ordinal."""
    return date(year, month, day).toordinal()


def rows_for(table: str, scale: float) -> int:
    """Row count for a table at fractional scale factor ``scale``."""
    if table in ("region", "nation"):
        return BASE_ROWS[table]
    return max(1, int(BASE_ROWS[table] * scale))
