"""dbgen-compatible ``.tbl`` export/import.

The official TPC-H dbgen emits pipe-delimited ``<table>.tbl`` files.
These helpers let this substrate interoperate: write generated tables to
``.tbl`` files, and read ``.tbl`` files (from the real dbgen or from
here) back into record dicts with correct column types.

Dates cross the boundary in ISO ``YYYY-MM-DD`` form and are stored
internally as ordinals (see :mod:`repro.tpch.schema`).
"""

from __future__ import annotations

import os
from datetime import date

#: Column order and types per table, matching the TPC-H specification.
#: type codes: i=int, f=float, s=string, d=date(ordinal<->ISO)
TBL_COLUMNS = {
    "region": [("r_regionkey", "i"), ("r_name", "s"), ("r_comment", "s")],
    "nation": [
        ("n_nationkey", "i"), ("n_name", "s"), ("n_regionkey", "i"),
        ("n_comment", "s"),
    ],
    "supplier": [
        ("s_suppkey", "i"), ("s_name", "s"), ("s_address", "s"),
        ("s_nationkey", "i"), ("s_phone", "s"), ("s_acctbal", "f"),
        ("s_comment", "s"),
    ],
    "customer": [
        ("c_custkey", "i"), ("c_name", "s"), ("c_address", "s"),
        ("c_nationkey", "i"), ("c_phone", "s"), ("c_acctbal", "f"),
        ("c_mktsegment", "s"), ("c_comment", "s"),
    ],
    "part": [
        ("p_partkey", "i"), ("p_name", "s"), ("p_mfgr", "s"), ("p_brand", "s"),
        ("p_type", "s"), ("p_size", "i"), ("p_container", "s"),
        ("p_retailprice", "f"), ("p_comment", "s"),
    ],
    "partsupp": [
        ("ps_partkey", "i"), ("ps_suppkey", "i"), ("ps_availqty", "i"),
        ("ps_supplycost", "f"), ("ps_comment", "s"),
    ],
    "orders": [
        ("o_orderkey", "i"), ("o_custkey", "i"), ("o_orderstatus", "s"),
        ("o_totalprice", "f"), ("o_orderdate", "d"), ("o_orderpriority", "s"),
        ("o_clerk", "s"), ("o_shippriority", "i"), ("o_comment", "s"),
    ],
    "lineitem": [
        ("l_orderkey", "i"), ("l_partkey", "i"), ("l_suppkey", "i"),
        ("l_linenumber", "i"), ("l_quantity", "i"), ("l_extendedprice", "f"),
        ("l_discount", "f"), ("l_tax", "f"), ("l_returnflag", "s"),
        ("l_linestatus", "s"), ("l_shipdate", "d"), ("l_commitdate", "d"),
        ("l_receiptdate", "d"), ("l_shipinstruct", "s"), ("l_shipmode", "s"),
        ("l_comment", "s"),
    ],
}


def _encode(value, kind: str) -> str:
    if kind == "d":
        return date.fromordinal(int(value)).isoformat()
    if kind == "f":
        return f"{value:.2f}"
    return str(value)


def _decode(text: str, kind: str):
    if kind == "i":
        return int(text)
    if kind == "f":
        return float(text)
    if kind == "d":
        return date.fromisoformat(text).toordinal()
    return text


def write_tbl(tables: dict, directory: str) -> dict:
    """Write every table to ``<directory>/<name>.tbl``; returns paths."""
    os.makedirs(directory, exist_ok=True)
    paths = {}
    for name, rows in tables.items():
        columns = TBL_COLUMNS.get(name)
        if columns is None:
            raise ValueError(f"unknown TPC-H table {name!r}")
        path = os.path.join(directory, f"{name}.tbl")
        with open(path, "w") as handle:
            for row in rows:
                fields = [_encode(row[col], kind) for col, kind in columns]
                handle.write("|".join(fields) + "|\n")
        paths[name] = path
    return paths


def read_tbl(directory: str, tables: "list[str] | None" = None) -> dict:
    """Read ``.tbl`` files back into record dicts."""
    names = tables if tables is not None else sorted(TBL_COLUMNS)
    out: dict = {}
    for name in names:
        columns = TBL_COLUMNS.get(name)
        if columns is None:
            raise ValueError(f"unknown TPC-H table {name!r}")
        path = os.path.join(directory, f"{name}.tbl")
        if not os.path.exists(path):
            continue
        rows = []
        with open(path) as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                fields = line.split("|")
                if fields and fields[-1] == "":
                    fields = fields[:-1]  # dbgen's trailing delimiter
                if len(fields) != len(columns):
                    raise ValueError(
                        f"{path}: expected {len(columns)} fields, "
                        f"got {len(fields)}: {line[:80]!r}"
                    )
                rows.append(
                    {col: _decode(text, kind)
                     for (col, kind), text in zip(columns, fields)}
                )
        out[name] = rows
    return out
