"""Failure recovery from heterogeneous replicas (paper Sec. 7).

To recover a target replica after a node failure, the system picks any
other replica in the group as the source, runs the target's partitioner
over the source's surviving records to find the ones whose target copy
lived on the failed node, and re-dispatches them.  Objects that were lost
from *every* replica (colliding objects) are recovered from the group's
dedicated safety set.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.services.sequential import SequentialWriter, make_shard_iterators
from repro.sim.faults import fire_point

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet
    from repro.placement.replication import ReplicationGroup


@dataclass
class RecoveryReport:
    """What a recovery run did and how long it took (simulated)."""

    failed_node: int
    seconds: float = 0.0
    objects_recovered: int = 0
    colliding_recovered: int = 0
    bytes_transferred: int = 0
    replicas_recovered: list = field(default_factory=list)


def _lost_test(
    target: "LocalitySet",
    failed_node: int,
    lost_ids: "set | None",
    object_id_fn,
):
    """Predicate: was this record's copy in ``target`` on the failed node?"""
    partitioner = target.partitioner
    if partitioner is not None:
        node_ids = sorted(target.shards)
        num_nodes = len(node_ids)

        def by_partition(record: object) -> bool:
            return node_ids[partitioner.partition_of(record) % num_nodes] == failed_node

        return by_partition
    # Randomly dispatched replica: fall back to the lost-id set.
    assert lost_ids is not None

    def by_id(record: object) -> bool:
        return object_id_fn(record) in lost_ids

    return by_id


def recover_node(
    cluster: "PangeaCluster",
    group: "ReplicationGroup",
    failed_node: int,
    workers: int = 8,
) -> RecoveryReport:
    """Recover every replica in ``group`` after ``failed_node`` crashed.

    Returns a report whose ``seconds`` is the simulated recovery latency
    (the Fig. 6 measurement).  The failed node's shards are treated as
    unreadable; recovered records are re-dispatched over the survivors.

    Idempotent: a node already in ``group.recovered_nodes`` was healed by
    an earlier run, so calling again is a no-op (re-dispatching the same
    records twice would duplicate them on the survivors).
    """
    if group.object_id_fn is None:
        raise ValueError("the replication group has no object_id_fn registered")
    if failed_node in group.recovered_nodes:
        return RecoveryReport(failed_node=failed_node)
    node = cluster.nodes[failed_node]
    if not node.failed:
        node.fail()
    start = cluster.barrier()
    object_id_fn = group.object_id_fn
    report = RecoveryReport(failed_node=failed_node)

    for target in group.members:
        if failed_node not in target.shards:
            continue
        source = _pick_source(group, target)
        lost_ids = None
        if target.partitioner is None:
            lost_ids = _ids_lost_from(target, failed_node, object_id_fn)
        recovered = _recover_replica(
            cluster, group, source, target, failed_node, lost_ids, report,
            workers=workers,
        )
        report.replicas_recovered.append((target.name, recovered))

    report.colliding_recovered = _recover_colliding(
        cluster, group, failed_node, report, workers=workers
    )
    group.recovered_nodes.add(failed_node)
    robustness = getattr(cluster, "robustness", None)
    if robustness is not None:
        robustness.recoveries += 1
    end = cluster.barrier()
    report.seconds = end - start
    for survivor in cluster.nodes:
        tracer = survivor.tracer
        if tracer is not None and not survivor.failed:
            tracer.tracer.span(
                "recovery.recover_node", "recovery", survivor.node_id,
                start, report.seconds, failed_node=failed_node,
                objects_recovered=report.objects_recovered,
                bytes_transferred=report.bytes_transferred,
            )
            break
    return report


def _pick_source(group: "ReplicationGroup", target: "LocalitySet") -> "LocalitySet":
    for member in group.members:
        if member is not target:
            return member
    raise ValueError("a replication group needs at least two members to recover")


def _ids_lost_from(target: "LocalitySet", failed_node: int, object_id_fn) -> set:
    """Ids whose target copy was on the failed node (metadata-side scan).

    For partitioned replicas the lost key range is computable; for a
    randomly dispatched replica the system consults the replica's own
    object index, which we model from the failed shard's page images
    without charging data I/O (it is metadata the manager already holds).
    """
    lost: set = set()
    shard = target.shards[failed_node]
    for page in shard.pages:
        records = page.records
        if not records and page.on_disk:
            records = shard.file.peek_records(page.page_id)
        for record in records:
            lost.add(object_id_fn(record))
    return lost


def _recover_replica(
    cluster: "PangeaCluster",
    group: "ReplicationGroup",
    source: "LocalitySet",
    target: "LocalitySet",
    failed_node: int,
    lost_ids: "set | None",
    report: RecoveryReport,
    workers: int = 8,
) -> int:
    is_lost = _lost_test(target, failed_node, lost_ids, group.object_id_fn)
    survivors = [nid for nid in sorted(target.shards) if nid != failed_node]
    writers = {
        nid: SequentialWriter(target.shards[nid], workers=workers)
        for nid in survivors
    }
    for writer in writers.values():
        writer.attach()
    recovered = 0
    recovered_ids: set = set()
    try:
        for node_id in sorted(source.shards):
            if node_id == failed_node:
                continue
            shard = source.shards[node_id]
            fire_point(shard.node, "mid-recovery")
            moved_bytes = 0
            for iterator in make_shard_iterators(shard, workers):
                for page in iterator:
                    for record in page.records:
                        shard.node.cpu.per_object(1, workers=workers, factor=2.0)
                        if not is_lost(record):
                            continue
                        object_id = group.object_id_fn(record)
                        if object_id in recovered_ids:
                            continue
                        recovered_ids.add(object_id)
                        dest = survivors[
                            _dest_index(object_id, len(survivors))
                        ]
                        writers[dest].add_object(record, target.object_bytes)
                        recovered += 1
                        if dest != node_id:
                            moved_bytes += target.object_bytes
            if moved_bytes:
                shard.node.network.transfer(
                    moved_bytes, num_messages=max(1, moved_bytes // (4 << 20))
                )
                report.bytes_transferred += moved_bytes
    finally:
        for writer in writers.values():
            writer.flush()
            writer.close()
    report.objects_recovered += recovered
    return recovered


def _recover_colliding(
    cluster: "PangeaCluster",
    group: "ReplicationGroup",
    failed_node: int,
    report: RecoveryReport,
    workers: int = 8,
) -> int:
    """Recover objects whose every replica copy was on the failed node.

    Only colliding objects *homed* on the failed node were actually lost;
    their copies are restored into every member of the group from the
    safety set.
    """
    if group.colliding_set is None or not group.colliding_ids:
        return 0
    object_id_fn = group.object_id_fn
    lost_home_ids = {
        oid
        for oid, home in group.colliding_home.items()
        if home == failed_node
    }
    if not lost_home_ids:
        return 0
    writer_groups = []
    for member in group.members:
        survivors = [nid for nid in sorted(member.shards) if nid != failed_node]
        writers = {
            nid: SequentialWriter(member.shards[nid], workers=workers)
            for nid in survivors
        }
        for writer in writers.values():
            writer.attach()
        writer_groups.append((member, survivors, writers))
    recovered = 0
    try:
        for node_id in sorted(group.colliding_set.shards):
            if node_id == failed_node:
                continue
            shard = group.colliding_set.shards[node_id]
            for iterator in make_shard_iterators(shard, workers):
                for page in iterator:
                    for record in page.records:
                        shard.node.cpu.per_object(1, workers=workers)
                        object_id = object_id_fn(record)
                        if object_id not in lost_home_ids:
                            continue
                        for member, survivors, writers in writer_groups:
                            dest = survivors[_dest_index(object_id, len(survivors))]
                            writers[dest].add_object(record, member.object_bytes)
                        recovered += 1
    finally:
        for _member, _survivors, writers in writer_groups:
            for writer in writers.values():
                writer.flush()
                writer.close()
    report.objects_recovered += recovered * len(group.members)
    return recovered


def _dest_index(object_id: object, modulus: int) -> int:
    from repro.util import stable_hash

    return stable_hash(object_id) % max(1, modulus)
