"""Concurrent r-node failure tolerance (paper Sec. 7, extension).

The base scheme survives one node failure: only objects whose every copy
sits on a single node (colliding objects) need extra protection.  To
survive ``r`` concurrent failures, any object whose copies span fewer than
``r + 1`` nodes must be separately replicated until it does.  The paper
gives the expected ratio of such objects for random partitioning as
``1 - k(k-1)...(k-r) / k^(r+1)`` and notes the extra disk cost.
"""

from __future__ import annotations

import typing

from repro.placement.replication import ReplicationGroup
from repro.services.sequential import SequentialWriter
from repro.util import stable_hash

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet

__all__ = ["object_node_spread", "ensure_r_safety", "recover_concurrent_failures"]


def object_node_spread(group: ReplicationGroup) -> dict:
    """Map object id -> set of nodes holding at least one copy of it."""
    if group.object_id_fn is None:
        raise ValueError("the replication group has no object_id_fn registered")
    spread: dict = {}
    members = list(group.members)
    if group.colliding_set is not None:
        members.append(group.colliding_set)
    members.extend(group.extra_safety_sets)
    for member in members:
        for node_id, shard in member.shards.items():
            for page in shard.pages:
                records = page.records
                if not records and page.on_disk:
                    records = shard.file.peek_records(page.page_id)
                for record in records:
                    spread.setdefault(group.object_id_fn(record), set()).add(node_id)
    return spread


def ensure_r_safety(
    cluster: "PangeaCluster", group: ReplicationGroup, r: int
) -> "LocalitySet | None":
    """Replicate under-spread objects until every object spans r+1 nodes.

    Returns the safety set created (or extended); ``None`` when the group
    is already r-safe.  The extra copies land in a dedicated write-through
    set, placed on nodes the object does not already occupy.
    """
    if r < 1:
        raise ValueError("r must be at least 1")
    num_nodes = cluster.num_nodes
    if r + 1 > num_nodes:
        raise ValueError(
            f"cannot spread objects over {r + 1} nodes in a {num_nodes}-node cluster"
        )
    spread = object_node_spread(group)
    sample_of: dict = {}
    first = group.members[0]
    for node_id, shard in first.shards.items():
        for page in shard.pages:
            records = page.records
            if not records and page.on_disk:
                records = shard.file.peek_records(page.page_id)
            for record in records:
                sample_of.setdefault(group.object_id_fn(record), record)

    unsafe = {
        oid: nodes for oid, nodes in spread.items() if len(nodes) < r + 1
    }
    if not unsafe:
        return None

    safety_name = f"__rsafety_group{group.group_id}_r{r}"
    if cluster.manager.has_set(safety_name):
        safety = cluster.get_set(safety_name)
    else:
        safety = cluster.create_set(
            safety_name,
            durability="write-through",
            page_size=first.page_size,
            object_bytes=first.object_bytes,
        )
    node_ids = sorted(safety.shards)
    writers = {nid: SequentialWriter(safety.shards[nid]) for nid in node_ids}
    for writer in writers.values():
        writer.attach()
    added = 0
    try:
        for oid, nodes in unsafe.items():
            record = sample_of.get(oid)
            if record is None:
                continue
            candidates = [nid for nid in node_ids if nid not in nodes]
            needed = (r + 1) - len(nodes)
            for index in range(min(needed, len(candidates))):
                dest = candidates[
                    (stable_hash(oid) + index) % len(candidates)
                ]
                writers[dest].add_object(record, first.object_bytes)
                home = next(iter(nodes))
                if dest != home:
                    first.shards[home].node.network.transfer(first.object_bytes)
                added += 1
    finally:
        for writer in writers.values():
            writer.flush()
            writer.close()
    cluster.barrier()
    if safety not in group.extra_safety_sets:
        group.extra_safety_sets.append(safety)
    return safety


def recover_concurrent_failures(
    cluster: "PangeaCluster",
    group: ReplicationGroup,
    failed_nodes: "list[int]",
    workers: int = 8,
) -> dict:
    """Recover every group member after several nodes fail at once.

    Requires a prior :func:`ensure_r_safety` with ``r >= len(failed_nodes)``
    (otherwise some objects may be unrecoverable; those are reported).
    Recovered copies are re-dispatched over the survivors.
    """
    failed = set(failed_nodes)
    for node_id in failed:
        node = cluster.nodes[node_id]
        if not node.failed:
            node.fail()
    start = cluster.barrier()
    object_id_fn = group.object_id_fn
    if object_id_fn is None:
        raise ValueError("the replication group has no object_id_fn registered")

    # Collect the surviving copy of every object across all sources.
    survivors: dict = {}
    sources = list(group.members)
    if group.colliding_set is not None:
        sources.append(group.colliding_set)
    sources.extend(group.extra_safety_sets)
    for source in sources:
        for node_id, shard in source.shards.items():
            if node_id in failed:
                continue
            from repro.services.sequential import make_shard_iterators

            for iterator in make_shard_iterators(shard, workers):
                for page in iterator:
                    for record in page.records:
                        shard.node.cpu.per_object(1, workers=workers)
                        survivors.setdefault(object_id_fn(record), record)

    # Determine which objects each member lost, and restore them.
    report = {"recovered": 0, "unrecoverable": 0, "seconds": 0.0}
    for member in group.members:
        lost_ids: set = set()
        for node_id in failed:
            if node_id not in member.shards:
                continue
            shard = member.shards[node_id]
            for page in shard.pages:
                records = page.records
                if not records and page.on_disk:
                    records = shard.file.peek_records(page.page_id)
                for record in records:
                    lost_ids.add(object_id_fn(record))
        alive = [nid for nid in sorted(member.shards) if nid not in failed]
        writers = {
            nid: SequentialWriter(member.shards[nid], workers=workers)
            for nid in alive
        }
        for writer in writers.values():
            writer.attach()
        try:
            for oid in lost_ids:
                record = survivors.get(oid)
                if record is None:
                    report["unrecoverable"] += 1
                    continue
                dest = alive[stable_hash(oid) % len(alive)]
                writers[dest].add_object(record, member.object_bytes)
                report["recovered"] += 1
        finally:
            for writer in writers.values():
                writer.flush()
                writer.close()
    report["seconds"] = cluster.barrier() - start
    return report
