"""Replication groups and colliding-object management (paper Sec. 7).

Every member of a replication group holds exactly the same objects under a
different physical organization.  An object "collides" when every replica
of it happens to land on the same node — losing that node would lose the
object — so colliding objects are identified at partitioning time and kept
in a separate locality set replicated HDFS-style on a different node.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.cluster.cluster import PangeaCluster
    from repro.core.locality_set import LocalitySet


def expected_colliding_objects(num_objects: int, num_nodes: int, num_replicas: int = 2) -> float:
    """Expected colliding count for random partitionings: ``n / k^(r-1)``."""
    if num_nodes < 1 or num_replicas < 1:
        raise ValueError("need at least one node and one replica")
    return num_objects / (num_nodes ** (num_replicas - 1))


def expected_unsafe_ratio(num_nodes: int, num_failures: int) -> float:
    """Paper's ratio of objects with replicas on fewer than r+1 nodes.

    For random partitioning in a ``k``-node cluster tolerating ``r``
    concurrent failures: ``1 - k(k-1)...(k-r) / k^(r+1)``.
    """
    k, r = num_nodes, num_failures
    if r >= k:
        return 1.0
    numerator = 1.0
    for i in range(r + 1):
        numerator *= (k - i)
    return 1.0 - numerator / (k ** (r + 1))


@dataclass
class ReplicationGroup:
    """All replicas of one logical dataset, plus its colliding-object set."""

    members: "list[LocalitySet]" = field(default_factory=list)
    object_id_fn: "typing.Callable[[object], object] | None" = None
    colliding_set: "LocalitySet | None" = None
    colliding_ids: set = field(default_factory=set)
    #: object id -> the single node holding every copy of that object
    colliding_home: dict = field(default_factory=dict)
    #: extra safety sets created by ensure_r_safety (r > 1 tolerance)
    extra_safety_sets: list = field(default_factory=list)
    #: node ids whose lost shards were already re-dispatched by recover_node;
    #: makes recovery idempotent and tells readers a failed node is healed
    recovered_nodes: set = field(default_factory=set)
    group_id: int | None = None

    def member_named(self, name: str) -> "LocalitySet":
        for member in self.members:
            if member.name == name:
                return member
        raise KeyError(f"no replica named {name!r} in this group")

    @property
    def num_colliding(self) -> int:
        return len(self.colliding_ids)


def _object_nodes(dataset: "LocalitySet", object_id_fn) -> dict:
    """Map object id -> set of node ids holding a copy in this replica."""
    placement: dict = {}
    for node_id, shard in dataset.shards.items():
        for page in shard.pages:
            records = page.records
            if not records and page.on_disk:
                records, _cost = shard.file.read_page(page.page_id)
            for record in records:
                placement.setdefault(object_id_fn(record), set()).add(node_id)
    return placement


def register_replica(
    source: "LocalitySet",
    replica: "LocalitySet",
    object_id_fn: "typing.Callable[[object], object]",
    group: "ReplicationGroup | None" = None,
) -> ReplicationGroup:
    """Register ``replica`` as a physical reorganization of ``source``.

    Creates (or extends) the replication group, identifies colliding
    objects across all members, and stores them in a dedicated
    write-through locality set placed away from their home node.
    """
    cluster: "PangeaCluster" = source.cluster
    if group is None and source.replica_group_id is not None:
        group = cluster.manager.replica_group(source.replica_group_id)
    if group is None:
        group = ReplicationGroup(members=[source], object_id_fn=object_id_fn)
        group.group_id = cluster.manager.register_replica_group(group)
    group.object_id_fn = object_id_fn
    if replica not in group.members:
        group.members.append(replica)
        replica.replica_group_id = group.group_id
    _index_page_images(group)
    _refresh_colliding_set(cluster, group)
    cluster.manager.update_statistics(source)
    cluster.manager.update_statistics(replica)
    return group


def _index_page_images(group: ReplicationGroup) -> None:
    """Backfill the members' page-image indexes (read-repair support).

    Pages persisted before the set joined the group were never indexed by
    ``note_page_image``; this scan fixes that using the metadata-side
    payload view (no data I/O is charged).
    """
    object_id_fn = group.object_id_fn
    if object_id_fn is None:
        return
    for member in group.members:
        for node_id, shard in member.shards.items():
            for page in shard.pages:
                if not page.on_disk:
                    continue
                records = page.records or shard.file.peek_records(page.page_id)
                member.remember_page_ids(
                    node_id, page.page_id, [object_id_fn(r) for r in records]
                )


def _refresh_colliding_set(cluster: "PangeaCluster", group: ReplicationGroup) -> None:
    """Recompute colliding objects and (re)build their safety set."""
    object_id_fn = group.object_id_fn
    if object_id_fn is None or len(group.members) < 2:
        return
    combined: dict = {}
    samples: dict = {}
    for member in group.members:
        for object_id, nodes in _object_nodes(member, object_id_fn).items():
            combined.setdefault(object_id, set()).update(nodes)
    # Keep one record sample per colliding id, pulled from the first member.
    colliding = {oid for oid, nodes in combined.items() if len(nodes) == 1}
    group.colliding_ids = colliding
    group.colliding_home = {
        oid: next(iter(nodes))
        for oid, nodes in combined.items()
        if oid in colliding
    }
    if group.colliding_set is not None:
        cluster.drop_set(group.colliding_set.name)
        group.colliding_set = None
    if not colliding:
        return
    home_node: dict = {}
    first = group.members[0]
    for node_id, shard in first.shards.items():
        for page in shard.pages:
            records = page.records
            if not records and page.on_disk:
                records, _cost = shard.file.read_page(page.page_id)
            for record in records:
                object_id = object_id_fn(record)
                if object_id in colliding and object_id not in samples:
                    samples[object_id] = record
                    home_node[object_id] = node_id
    safety_name = f"__colliding_group{group.group_id}"
    safety = cluster.create_set(
        safety_name,
        durability="write-through",
        page_size=first.page_size,
        object_bytes=first.object_bytes,
    )
    from repro.services.sequential import SequentialWriter

    node_ids = sorted(safety.shards)
    writers = {nid: SequentialWriter(safety.shards[nid]) for nid in node_ids}
    for writer in writers.values():
        writer.attach()
    try:
        for object_id, record in samples.items():
            # HDFS-style: the safety copy lives on a *different* node.
            home = home_node[object_id]
            choices = [nid for nid in node_ids if nid != home] or node_ids
            dest = choices[stable_index(object_id, len(choices))]
            writers[dest].add_object(record, first.object_bytes)
            if dest != home:
                first.shards[home].node.network.transfer(first.object_bytes)
    finally:
        for writer in writers.values():
            writer.flush()
            writer.close()
    group.colliding_set = safety
    cluster.barrier()


def stable_index(object_id: object, modulus: int) -> int:
    from repro.util import stable_hash

    return stable_hash(object_id) % max(1, modulus)
